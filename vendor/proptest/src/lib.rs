//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, [`arbitrary::any`],
//! integer-range / string-pattern / tuple strategies, and
//! [`collection::vec`] / [`collection::btree_map`].
//!
//! Differences from the real crate (acceptable for offline CI):
//! - no shrinking: a failing case panics with the generated inputs in scope;
//! - integer `any` biases toward small magnitudes instead of the full range;
//! - string strategies support character-class patterns `[x-y]{m,n}` only.
//!
//! Case count defaults to 64 and honours `PROPTEST_CASES`.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `&str` strategies: a character-class pattern `[x-y]{m,n}` (or a
    /// literal string when the pattern syntax is absent).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pat: &str, rng: &mut StdRng) -> String {
        let bytes = pat.as_bytes();
        if bytes.first() != Some(&b'[') {
            return pat.to_string();
        }
        let close = match pat.find(']') {
            Some(i) => i,
            None => return pat.to_string(),
        };
        // Collect the class alternatives (ranges like a-z or single chars).
        let mut choices: Vec<(u8, u8)> = Vec::new();
        let class = &bytes[1..close];
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == b'-' {
                choices.push((class[i], class[i + 2]));
                i += 3;
            } else {
                choices.push((class[i], class[i]));
                i += 1;
            }
        }
        if choices.is_empty() {
            return pat.to_string();
        }
        // Parse the repetition {m,n} (or {n}); default is exactly one.
        let rest = &pat[close + 1..];
        let (lo, hi) = if let Some(stripped) = rest.strip_prefix('{') {
            let inner = stripped.trim_end_matches('}');
            match inner.split_once(',') {
                Some((a, b)) => (
                    a.parse::<usize>().unwrap_or(0),
                    b.parse::<usize>().unwrap_or(0),
                ),
                None => {
                    let n = inner.parse::<usize>().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let len = rand::Rng::gen_range(rng, lo..=hi);
        (0..len)
            .map(|_| {
                let (a, b) = choices[rand::Rng::gen_range(rng, 0..choices.len())];
                rand::Rng::gen_range(rng, a..=b) as char
            })
            .collect()
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
    }
}

/// `any::<T>()` and the [`arbitrary::Arbitrary`] trait.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generate one canonical-strategy value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    // Bias toward small magnitudes (like proptest's default
                    // integer distribution) so law arithmetic stays far from
                    // overflow; occasionally produce wider values.
                    let wide = match rng.gen_range(0..4u8) {
                        0 => rng.gen_range(-2i64..=2),
                        1 | 2 => rng.gen_range(-100i64..=100),
                        _ => rng.gen_range(-10_000i64..=10_000),
                    };
                    wide.clamp(<$t>::MIN as i64 / 2, <$t>::MAX as i64 / 2) as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64);

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    let wide = match rng.gen_range(0..4u8) {
                        0 => rng.gen_range(0i64..=2),
                        1 | 2 => rng.gen_range(0i64..=100),
                        _ => rng.gen_range(0i64..=10_000),
                    };
                    wide.clamp(0, <$t>::MAX as i64 / 2) as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32);

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut StdRng) -> char {
            rng.gen_range(b'a'..=b'z') as char
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeMap;

    /// A size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.size.sample(rng))
                .map(|_| self.elem.generate(rng))
                .collect()
        }
    }

    /// A `Vec` of values from `elem`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// A `BTreeMap` with up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.size.sample(rng))
                .map(|_| self.elem.generate(rng))
                .collect()
        }
    }

    /// A `BTreeSet` with up to `size` elements (duplicates collapse).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases per property: `PROPTEST_CASES` or 64.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// A deterministic RNG derived from the property name.
    pub fn rng_for(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// The property-test macro: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut prop_rng = $crate::test_runner::rng_for(stringify!($name));
                for _case in 0..cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng); )+
                    { $body }
                }
            }
        )+
    };
}

/// Assertion inside a property (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::rng_for;

    #[test]
    fn string_pattern_generates_within_class_and_length() {
        let mut rng = rng_for("string_pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
        let empty_ok = Strategy::generate(&"[a-z]{0,4}", &mut rng);
        assert!(empty_ok.len() <= 4);
    }

    #[test]
    fn collections_respect_size_bounds() {
        let mut rng = rng_for("collections");
        for _ in 0..100 {
            let v = Strategy::generate(&super::collection::vec(0i64..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
            let m = Strategy::generate(
                &super::collection::btree_map(0i64..50, "[a-z]{1,3}", 0..8),
                &mut rng,
            );
            assert!(m.len() < 8);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_runs(x in 0i64..100, flag in any::<bool>(), s in "[a-c]{1,2}") {
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(flag as u8 <= 1, true);
            prop_assert!(!s.is_empty() && s.len() <= 2);
        }
    }
}
