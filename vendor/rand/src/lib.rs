//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] over
//! integer ranges — on top of a small xoshiro256** generator. Deterministic
//! per seed, like the real `StdRng` (though the streams differ, which is fine:
//! all in-repo consumers only rely on *some* fixed stream per seed).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Concrete RNG types.
pub mod rngs {
    /// A seeded pseudo-random generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // splitmix64 to spread the seed over the full state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> bool {
        rng.next_u64_impl() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut StdRng) -> $t {
                rng.next_u64_impl() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics when empty.
    fn sample_one(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64_impl() as u128) << 64 | rng.next_u64_impl() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64_impl() as u128) << 64 | rng.next_u64_impl() as u128) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized;

    /// Draw uniformly from an integer range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized;

    /// Draw `true` with probability `p` (0.0..=1.0).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&x));
            let y = rng.gen_range(b'a'..=b'z');
            assert!(y.is_ascii_lowercase());
            let n = rng.gen_range(0..3usize);
            assert!(n < 3);
        }
    }

    #[test]
    fn gen_bool_and_gen_cover_both_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[rng.gen::<bool>() as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
