//! Offline stand-in for the `criterion` crate.
//!
//! A light timing harness exposing the API surface this workspace's bench
//! targets use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`]. Statistics are simple (median of timed batches,
//! no bootstrap/outlier analysis), which is plenty for trend tracking.
//!
//! Every measurement is also recorded in-process; [`criterion_main!`]
//! flushes them to `BENCH_<executable>.json` (override the directory with
//! `BENCH_JSON_DIR`, disable with `BENCH_JSON=0`) so each `cargo bench` run
//! leaves a machine-readable perf-trajectory artifact.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully-qualified benchmark id (`group/function`).
    pub id: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Total iterations timed.
    pub iterations: u64,
}

fn recorder() -> &'static Mutex<Vec<Measurement>> {
    static RECORDS: OnceLock<Mutex<Vec<Measurement>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// All measurements recorded so far in this process.
pub fn recorded_measurements() -> Vec<Measurement> {
    recorder().lock().expect("recorder lock").clone()
}

/// Serialize measurements as a JSON array (hand-rolled: no serde
/// offline). Record shape is `{id, median_ns, note}` — the same schema
/// `esm-bench`'s `BenchResults` emitter uses, so every `BENCH_*.json`
/// artifact in this workspace can be diffed by one tool.
pub fn measurements_to_json(measurements: &[Measurement]) -> String {
    let rows: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"note\": \"{} iters\"}}",
                m.id.replace('\\', "\\\\").replace('"', "\\\""),
                m.median_ns,
                m.iterations
            )
        })
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Write the recorded measurements to `BENCH_<name>.json`. Returns the
/// path written, or `None` when disabled or nothing was recorded.
pub fn flush_results_json(name: &str) -> Option<std::path::PathBuf> {
    if std::env::var("BENCH_JSON").is_ok_and(|v| v == "0") {
        return None;
    }
    let measurements = recorded_measurements();
    if measurements.is_empty() {
        return None;
    }
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    std::fs::write(&path, measurements_to_json(&measurements)).ok()?;
    Some(path)
}

/// The name of the current executable, for the JSON artifact.
pub fn executable_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        // cargo bench appends a -<hash> suffix; strip it for stable names.
        .map(|s| match s.rfind('-') {
            Some(i)
                if s[i + 1..].len() == 16 && s[i + 1..].bytes().all(|b| b.is_ascii_hexdigit()) =>
            {
                s[..i].to_string()
            }
            _ => s,
        })
        .unwrap_or_else(|| "bench".to_string())
}

/// Identifies one benchmark within a group, usually a name plus a
/// parameter (e.g. an input size).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A parameterised id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher<'a> {
    config: &'a Config,
    result: Option<(f64, u64)>,
}

impl Bencher<'_> {
    /// Time `routine`, recording the median ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size a batch so one batch is ~1/10 of the
        // measurement budget (at least one call).
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut calls: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let samples = self.config.sample_size.max(2);
        let batch =
            ((budget_ns / samples as f64 / per_call.max(1.0)).round() as u64).clamp(1, 1_000_000);

        let mut timings: Vec<f64> = Vec::with_capacity(samples);
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            timings.push(start.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }
        timings.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.result = Some((timings[timings.len() / 2], total_iters));
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(300),
        }
    }
}

/// The benchmark manager (offline stand-in).
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Builder: number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.config.sample_size = n;
        self
    }

    /// Builder: warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.config.warm_up_time = d;
        self
    }

    /// Builder: measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.config.measurement_time = d;
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Criterion {
        let id: BenchmarkId = id.into();
        run_one(&self.config, &id.id, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: &self.config,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    config: &'a Config,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        run_one(self.config, &format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Run one benchmark that closes over an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (reporting happens eagerly; this is a no-op hook).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Config, id: &str, mut f: F) {
    let mut b = Bencher {
        config,
        result: None,
    };
    f(&mut b);
    let (median_ns, iterations) = b.result.unwrap_or((f64::NAN, 0));
    println!(
        "{id:<60} time: {:>12} /iter ({iterations} iters)",
        fmt_ns(median_ns)
    );
    recorder().lock().expect("recorder lock").push(Measurement {
        id: id.to_string(),
        median_ns,
        iterations,
    });
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Define a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given groups, then flush `BENCH_*.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            if let Some(path) = $crate::flush_results_json(&$crate::executable_name()) {
                println!("wrote {}", path.display());
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("shim");
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sized", 4), &4usize, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        g.finish();
        let recs = recorded_measurements();
        assert!(recs.iter().any(|m| m.id == "shim/noop"));
        assert!(recs.iter().any(|m| m.id == "shim/sized/4"));
        assert!(recs.iter().all(|m| m.median_ns >= 0.0 && m.iterations > 0));
        let json = measurements_to_json(&recs);
        assert!(json.contains("\"id\": \"shim/noop\""));
    }
}
