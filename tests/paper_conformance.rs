//! Paper conformance suite: one test per claim in the paper, in paper
//! order, each commented with the sentence it validates. This is the
//! "table of contents" of the reproduction — if the library drifts from
//! the paper, this file fails first.

use esm::core::monadic::laws::{
    check_put_bx, check_roundtrip_put, check_roundtrip_set, check_set_bx, LawOptions,
};
use esm::core::monadic::{product::sets_commute_on, Pp2Set, ProductBx, Set2Pp, SetBx};
use esm::core::state::Monadic;
use esm::lens::combinators::fst;
use esm::lens::AsymBx;
use esm::monad::laws::{check_monad_laws, check_state_algebra};
use esm::monad::{get, set, MonadFamily, NonDetOf, State, StateOf};

type Pair = (i64, i64);
type MPair = StateOf<Pair>;

fn pair_ctx() -> Vec<Pair> {
    vec![(0, 0), (3, -7), (100, 100)]
}

// =====================================================================
// §2 Background
// =====================================================================

#[test]
fn s2_nondeterminism_via_the_list_monad() {
    // "one may describe non-deterministic computations of type A -> B in
    // terms of the List monad — i.e., as functions A -> List B".
    let f = |a: i32| NonDetOf::choose([a, a * 10]);
    let out = NonDetOf::bind(f(2), |b| NonDetOf::choose([b, b + 1]));
    assert_eq!(out, vec![2, 3, 20, 21]);
}

#[test]
fn s2_monad_operations_satisfy_the_three_laws() {
    // "The monad operations are required to satisfy the following three
    // equational laws."
    type M = StateOf<i64>;
    let f = |x: i64| -> State<i64, i64> { M::seq(set(x * 2), M::pure(x)) };
    let g = |y: i64| -> State<i64, i64> { M::bind(get(), move |s| M::pure(s + y)) };
    let ma: State<i64, i64> = M::bind(get(), |s| M::seq(set(s + 1), M::pure(s)));
    let v = check_monad_laws::<M, _, _, _, _, _>(5, ma, f, g, &vec![0i64, 9, -4]);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn s2_state_monad_definition_matches_the_paper() {
    // "return a = \s . (a, s)" and "ma >>= f = \s . let (a, s') = ma s in
    // f a s'" and the get/set definitions.
    type M = StateOf<i64>;
    let ret: State<i64, &str> = M::pure("a");
    assert_eq!(ret.run(7), ("a", 7));
    assert_eq!(get::<i64>().run(7), (7, 7));
    assert_eq!(set(9i64).run(7), ((), 9));
}

#[test]
fn s2_single_cell_theory_reduces_to_four_equations() {
    // "In the restricted setting of a single memory cell, the theory
    // reduces to the following four equations" — (GG)(GS)(SG)(SS).
    type M = StateOf<i64>;
    let v = check_state_algebra::<M, i64>(get(), set, 10, 20, &vec![0i64, 5, -5]);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn s2_lens_induces_entangled_state_monad_structures() {
    // "an asymmetric lens l gives rise to two distinct state monad
    // structures … Each accesses the same underlying state; we say the
    // two structures are entangled."
    let bx = Monadic(AsymBx::new(fst::<i64, i64>()));
    // The V-side structure (getl/setl) satisfies the state-monad laws…
    let ctx = pair_ctx();
    let bx2 = bx.clone();
    let v = check_state_algebra::<MPair, i64>(
        SetBx::<MPair, Pair, i64>::get_b(&bx),
        move |x| SetBx::<MPair, Pair, i64>::set_b(&bx2, x),
        3,
        9,
        &ctx,
    );
    assert!(v.is_empty(), "{v:?}");
    // …and is entangled with the S-side: setting V changes what S reads.
    let prog = MPair::seq(
        SetBx::<MPair, Pair, i64>::set_b(&bx, 42),
        SetBx::<MPair, Pair, i64>::get_a(&bx),
    );
    assert_eq!(prog.eval((0, 7)), (42, 7));
}

// =====================================================================
// §3 Entangled state monads
// =====================================================================

#[test]
fn s3_1_set_bx_laws() {
    // Definition of set-bx: (GG), (GS), (SG) on both sides; (SS) defines
    // "overwriteable".
    let t: ProductBx<i64, i64> = ProductBx::new();
    let v = check_set_bx::<MPair, _, _, _>(
        &t,
        &[1, 2],
        &[8, 9],
        &pair_ctx(),
        LawOptions::OVERWRITEABLE,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn s3_2_put_bx_laws() {
    // Definition of put-bx: (GG), (GP), (PG1), (PG2); (PP) = overwriteable.
    let u = Set2Pp(ProductBx::<i64, i64>::new());
    let v = check_put_bx::<MPair, _, _, _>(
        &u,
        &[1, 2],
        &[8, 9],
        &pair_ctx(),
        LawOptions::OVERWRITEABLE,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn s3_3_lemma1_set2pp_preserves_lawfulness() {
    // "If t is an (overwriteable) set-bx then set2pp(t) is an
    // (overwriteable) put-bx."
    let t = Monadic(AsymBx::new(fst::<i64, i64>()));
    let u = Set2Pp(t);
    let v = check_put_bx::<MPair, _, _, _>(
        &u,
        &[(1i64, 2i64), (3, 4)],
        &[7i64, 8],
        &pair_ctx(),
        LawOptions::OVERWRITEABLE,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn s3_3_lemma2_pp2set_preserves_lawfulness() {
    // "If u is an (overwriteable) put-bx then pp2set(u) is an
    // (overwriteable) set-bx."
    let u = Set2Pp(Monadic(AsymBx::new(fst::<i64, i64>())));
    let t = Pp2Set(u);
    let v = check_set_bx::<MPair, _, _, _>(
        &t,
        &[(1i64, 2i64), (3, 4)],
        &[7i64, 8],
        &pair_ctx(),
        LawOptions::OVERWRITEABLE,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn s3_3_lemma3_translations_are_inverses() {
    // "Translations pp2set(·) and set2pp(·) are inverses."
    let t = Monadic(AsymBx::new(fst::<i64, i64>()));
    let v = check_roundtrip_set::<MPair, _, _, _>(&t, &[(1i64, 2i64)], &[7i64], &pair_ctx());
    assert!(v.is_empty(), "{v:?}");
    let u = Set2Pp(t);
    let v = check_roundtrip_put::<MPair, _, _, _>(&u, &[(1i64, 2i64)], &[7i64], &pair_ctx());
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn s3_4_product_satisfies_commutativity_general_bx_need_not() {
    // "this structure also satisfies stronger laws than our definitions
    // require; in particular, commutativity of sets … It is consistent
    // with the set-bx laws that the A and B components be 'entangled'."
    let product: ProductBx<i64, i64> = ProductBx::new();
    assert!(sets_commute_on(&product, (0, 0), 5, 9));

    let entangled = Monadic(AsymBx::new(fst::<i64, i64>()));
    // setA (writes the whole pair) vs setB (writes the first component):
    // order observable.
    let ab = MPair::seq(
        SetBx::<MPair, Pair, i64>::set_a(&entangled, (1, 1)),
        SetBx::<MPair, Pair, i64>::set_b(&entangled, 9),
    );
    let ba = MPair::seq(
        SetBx::<MPair, Pair, i64>::set_b(&entangled, 9),
        SetBx::<MPair, Pair, i64>::set_a(&entangled, (1, 1)),
    );
    assert_ne!(ab.exec((0, 0)), ba.exec((0, 0)));
}

// =====================================================================
// §4 Instances (the lemmas are exercised in depth in the dedicated
// suites; here: one witness each, in paper order)
// =====================================================================

#[test]
fn s4_lemma4_well_behaved_lens_gives_set_bx() {
    let t = Monadic(AsymBx::new(fst::<i64, i64>()));
    let v = check_set_bx::<MPair, _, _, _>(
        &t,
        &[(1i64, 2i64), (0, 0)],
        &[5i64, 6],
        &pair_ctx(),
        LawOptions::OVERWRITEABLE, // fst is very well-behaved
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn s4_lemma5_algebraic_bx_gives_set_bx_preserving_consistency() {
    // "(Correct) ensures that setA a' and setB b' … preserve the
    // consistency of pairs (a, b) ∈ R."
    use esm::algebraic::{builders::interval_bx, AlgBxOps};
    use esm::core::state::SbxOps;
    let t = AlgBxOps::new(interval_bx(2));
    let mut s = (0i64, 0i64);
    for x in [10i64, -4, 99, 0] {
        s = t.update_a(s, x);
        assert!(t.invariant(&s));
        s = t.update_b(s, -x);
        assert!(t.invariant(&s));
    }
}

#[test]
fn s4_lemma6_symmetric_lens_gives_put_bx_on_consistent_triples() {
    use esm::core::state::PbxOps;
    use esm::symmetric::{combinators::from_asym, SymBxOps};
    let t = SymBxOps::new(from_asym(fst::<i64, String>(), (0, "c".to_string())));
    let s0 = t.initial_from_a((5, "private".to_string()));
    assert!(t.invariant(&s0));
    let (s1, b) = t.put_a(s0, (9, "private".to_string()));
    assert_eq!(b, 9);
    assert!(t.invariant(&s1));
}

#[test]
fn s4_stateful_bx_prints_only_when_state_changes() {
    // "Its set operations are side-effecting, but the side-effects only
    // occur when the state is changed."
    use esm::core::effectful::{Announce, MonadicEff};
    use esm::monad::{IoSimOf, StateTOf};
    type M = StateTOf<i64, IoSimOf>;
    let t = MonadicEff(Announce::trivial_int());
    let same = SetBx::<M, i64, i64>::set_a(&t, 3).run(3);
    assert!(same.printed().is_empty());
    let diff = SetBx::<M, i64, i64>::set_b(&t, 4).run(3);
    assert_eq!(diff.printed(), vec!["Changed B"]);
    // And it *is* a set-bx: (GG), (GS), (SG) hold (checked with traces in
    // the effects suite; sanity-check (GS) here).
    let t2 = t.clone();
    let gs = M::bind(SetBx::<M, i64, i64>::get_a(&t), move |a| {
        SetBx::<M, i64, i64>::set_a(&t2, a)
    });
    let out = gs.run(42);
    assert_eq!(out.value.1, 42);
    assert!(out.trace.is_empty());
}

// =====================================================================
// §5 Conclusions — the future-work items this library implements
// =====================================================================

#[test]
fn s5_composition_needs_restrictions() {
    // "the question of whether entangled state monads can be composed
    // seems nontrivial; some restrictions … may be necessary" — realised
    // as the consistent-subset restriction.
    use esm::core::state::{compose, IdBx, SbxOps};
    let pipeline = compose::<_, _, Pair>(AsymBx::new(fst::<Pair, String>()), IdBx::<Pair>::new());
    let consistent = (((3, 4), "x".to_string()), (3, 4));
    assert!(pipeline.is_consistent(&consistent));
    let refreshed = pipeline.update_a(consistent.clone(), pipeline.view_a(&consistent));
    assert_eq!(refreshed, consistent); // (GS) on the consistent subset

    let inconsistent = (((3, 4), "x".to_string()), (9, 9));
    assert!(!pipeline.is_consistent(&inconsistent));
    let repaired = pipeline.update_a(inconsistent.clone(), pipeline.view_a(&inconsistent));
    assert_ne!(repaired, inconsistent); // (GS) fails off it
}

#[test]
fn s5_richer_complements_live_in_the_hidden_state() {
    // "We expect to be able to accommodate bx with richer complements or
    // witness structures in the same way." — the history bx.
    use esm::core::state::{SbxOps, WithHistory};
    let t = WithHistory(AsymBx::new(fst::<i64, i64>()));
    let s = WithHistory::<()>::initial((0, 0));
    let s = t.update_b(s, 5);
    assert_eq!((s.0).0, 5);
    assert_eq!(s.1.len(), 1); // the witness
}

#[test]
fn s5_effects_generalise() {
    // "reconcile effects such as I/O, nondeterminism, exceptions, or
    // probabilistic choice with bidirectionality" — all four exist and
    // are lawful; witnesses:
    use esm::core::choice::{FuzzyInterval, NdOps, ProbOps, WeightedInterval};
    use esm::core::fallible::{Guarded, TryOps};
    use esm::core::state::IdBx;

    // nondeterminism
    assert_eq!(FuzzyInterval { slack: 1 }.update_a((0, 0), 5).len(), 3);
    // probability
    let d = WeightedInterval { slack: 1 }.update_a((0, 0), 5);
    assert!((d.probability(|s| s.1 == 5) - 0.5).abs() < 1e-9);
    // exceptions
    let g = Guarded::new(IdBx::<i64>::new(), |a: &i64| *a >= 0, |_b: &i64| true);
    assert!(g.try_update_a(0, -1).is_err());
    assert_eq!(g.try_update_a(0, 1), Ok(1));
}
