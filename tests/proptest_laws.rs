//! Property-based tests (proptest): the paper's laws under adversarial
//! random inputs, complementing the seeded `lawcheck` suites.

use proptest::prelude::*;

use esm::core::state::{IdBx, ProductOps, PutToSet, SbxOps, SetToPut};
use esm::lens::combinators::{fst, pair, snd};
use esm::lens::tree::{child, fork, Tree};
use esm::monad::{get, set, IoSim, IoSimOf, MonadFamily, State, StateOf};
use esm::store::{Delta, Row, Schema, Table, Value, ValueType};

// ---------------------------------------------------------------------
// Monad laws for the state monad under arbitrary (generated) data.
// ---------------------------------------------------------------------

fn obs(ma: &State<i64, i64>, states: &[i64]) -> Vec<(i64, i64)> {
    states.iter().map(|s| ma.run(*s)).collect()
}

proptest! {
    #[test]
    fn state_monad_left_unit(a in -1000i64..1000, k in -10i64..10, s0 in proptest::collection::vec(-100i64..100, 1..8)) {
        type M = StateOf<i64>;
        // f x = set (x * k) >> return x
        let f = move |x: i64| -> State<i64, i64> { M::seq(set(x.wrapping_mul(k)), M::pure(x)) };
        let lhs = M::bind(M::pure(a), f);
        let rhs = f(a);
        prop_assert_eq!(obs(&lhs, &s0), obs(&rhs, &s0));
    }

    #[test]
    fn state_monad_right_unit(k in -10i64..10, s0 in proptest::collection::vec(-100i64..100, 1..8)) {
        type M = StateOf<i64>;
        let ma: State<i64, i64> = M::bind(get(), move |s| M::seq(set(s.wrapping_add(k)), M::pure(s)));
        let lhs = M::bind(ma.clone(), M::pure);
        prop_assert_eq!(obs(&lhs, &s0), obs(&ma, &s0));
    }

    #[test]
    fn state_cell_laws(s0 in -1000i64..1000, x in -1000i64..1000, y in -1000i64..1000) {
        type M = StateOf<i64>;
        // (GS)
        let gs = M::bind(get::<i64>(), set);
        prop_assert_eq!(gs.run(s0), ((), s0));
        // (SG)
        let sg = M::seq(set(x), get::<i64>());
        prop_assert_eq!(sg.run(s0), (x, x));
        // (SS)
        let ss = M::seq(set(x), set(y));
        prop_assert_eq!(ss.run(s0), ((), y));
    }

    #[test]
    fn iosim_traces_are_monoidal(msgs in proptest::collection::vec("[a-z]{1,6}", 0..6)) {
        // Sequencing prints concatenates traces in order.
        let mut prog: IoSim<()> = IoSimOf::pure(());
        for m in &msgs {
            prog = IoSimOf::seq(prog, esm::monad::print(m.clone()));
        }
        prop_assert_eq!(prog.printed(), msgs.iter().map(String::as_str).collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------
// Set-bx laws under proptest-generated states and values.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn product_bx_laws(s in (any::<i32>(), any::<i32>()), a in any::<i32>(), a2 in any::<i32>(), b in any::<i32>()) {
        let t: ProductOps<i32, i32> = ProductOps::new();
        // (GS)
        prop_assert_eq!(t.update_a(s, t.view_a(&s)), s);
        prop_assert_eq!(t.update_b(s, t.view_b(&s)), s);
        // (SG)
        prop_assert_eq!(t.view_a(&t.update_a(s, a)), a);
        prop_assert_eq!(t.view_b(&t.update_b(s, b)), b);
        // (SS)
        prop_assert_eq!(t.update_a(t.update_a(s, a), a2), t.update_a(s, a2));
        // §3.4 commutation for the product.
        prop_assert_eq!(
            t.update_b(t.update_a(s, a), b),
            t.update_a(t.update_b(s, b), a)
        );
    }

    #[test]
    fn translation_roundtrip_pointwise(s in any::<i64>(), a in any::<i64>(), b in any::<i64>()) {
        // Lemma 3 at the ops level, on the identity bx, for arbitrary data.
        let t = IdBx::<i64>::new();
        let rt = PutToSet(SetToPut(t));
        prop_assert_eq!(rt.view_a(&s), t.view_a(&s));
        prop_assert_eq!(rt.update_a(s, a), t.update_a(s, a));
        prop_assert_eq!(rt.update_b(s, b), t.update_b(s, b));
    }
}

// ---------------------------------------------------------------------
// Lens laws under proptest.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn fst_lens_laws(s in (any::<i32>(), any::<i32>()), v in any::<i32>(), v2 in any::<i32>()) {
        let l = fst::<i32, i32>();
        prop_assert_eq!(l.put(s, l.get(&s)), s);
        prop_assert_eq!(l.get(&l.put(s, v)), v);
        prop_assert_eq!(l.put(l.put(s, v), v2), l.put(s, v2));
    }

    #[test]
    fn composed_lens_laws(s in ((any::<i32>(), any::<i32>()), any::<i32>()), v in any::<i32>()) {
        let l = fst::<(i32, i32), i32>().then(snd::<i32, i32>());
        prop_assert_eq!(l.put(s, l.get(&s)), s);
        prop_assert_eq!(l.get(&l.put(s, v)), v);
    }

    #[test]
    fn pair_lens_laws(s in ((any::<i32>(), any::<i32>()), (any::<i32>(), any::<i32>())), v in (any::<i32>(), any::<i32>())) {
        let l = pair(fst::<i32, i32>(), snd::<i32, i32>());
        prop_assert_eq!(l.put(s, l.get(&s)), s);
        prop_assert_eq!(l.get(&l.put(s, v)), v);
    }
}

// ---------------------------------------------------------------------
// Tree lens laws under generated trees.
// ---------------------------------------------------------------------

fn arb_flat_tree(edges: &'static [&'static str]) -> impl Strategy<Value = Tree> {
    proptest::collection::vec("[a-z]{1,4}", edges.len()..=edges.len()).prop_map(move |vals| {
        Tree::node(
            edges
                .iter()
                .zip(vals)
                .map(|(e, v)| (e.to_string(), Tree::value(v)))
                .collect::<Vec<_>>(),
        )
    })
}

proptest! {
    #[test]
    fn child_lens_laws_on_domain(s in arb_flat_tree(&["age", "name"]), v in "[a-z]{1,4}") {
        let l = child("age");
        let view = Tree::value(v);
        prop_assert_eq!(l.put(s.clone(), l.get(&s)), s.clone());
        prop_assert_eq!(l.get(&l.put(s, view.clone())), view);
    }

    #[test]
    fn fork_lens_laws_on_domain(s in arb_flat_tree(&["ax", "bx", "ay"]), v in "[a-z]{1,4}") {
        let l = fork(|n| n.starts_with('a'));
        // A domain-respecting view: only 'a'-edges.
        let view = Tree::node([("az".to_string(), Tree::value(v))]);
        prop_assert_eq!(l.put(s.clone(), l.get(&s)), s.clone());
        prop_assert_eq!(l.get(&l.put(s, view.clone())), view);
    }
}

// ---------------------------------------------------------------------
// Store invariants under generated rows.
// ---------------------------------------------------------------------

fn people_schema() -> Schema {
    Schema::build(&[("id", ValueType::Int), ("name", ValueType::Str)], &["id"]).expect("valid")
}

fn arb_people(max: usize) -> impl Strategy<Value = Table> {
    proptest::collection::btree_map(0i64..50, "[a-z]{1,5}", 0..max).prop_map(|m| {
        let rows: Vec<Row> = m
            .into_iter()
            .map(|(id, name)| vec![Value::Int(id), Value::Str(name)])
            .collect();
        Table::from_rows(people_schema(), rows).expect("distinct keys by construction")
    })
}

proptest! {
    #[test]
    fn delta_roundtrip(old in arb_people(10), new in arb_people(10)) {
        let d = Delta::between(&old, &new).expect("same schema");
        prop_assert_eq!(d.apply(&old).expect("applies"), new.clone());
        prop_assert_eq!(d.invert().apply(&new).expect("applies"), old);
    }

    #[test]
    fn union_is_commutative_when_keys_agree(t in arb_people(8)) {
        // t ∪ t = t; t ∪ ∅ = t.
        let empty = Table::new(people_schema());
        prop_assert_eq!(t.union(&t).expect("same schema"), t.clone());
        prop_assert_eq!(t.union(&empty).expect("same schema"), t);
    }

    #[test]
    fn difference_then_union_restores(t in arb_people(8), u in arb_people(8)) {
        // (t \ u) ∪ (t ∩ u) = t
        let diff = t.difference(&u).expect("same schema");
        let inter = t.intersect(&u).expect("same schema");
        prop_assert_eq!(diff.union(&inter).expect("no key clashes"), t);
    }

    #[test]
    fn project_idempotent(t in arb_people(8)) {
        let cols = vec!["id".to_string(), "name".to_string()];
        let once = t.project(&cols).expect("cols exist");
        prop_assert_eq!(once.project(&cols).expect("cols exist"), once);
    }
}
