//! Integration: Lemma 4 across the whole stack — asymmetric lenses
//! (hand-written, combinator-built, tree, and relational) embedded as
//! entangled state monads and run through the full monadic law suite.

use esm::lawcheck::gen::{int_range, string, Gen};
use esm::lawcheck::monadic_suite::full_set_bx_suite;
use esm::lawcheck::setbx::{check_roundtrip_ops, check_set_ops};
use esm::lens::combinators::{fst, pair, snd};
use esm::lens::tree::{child, fork};
use esm::lens::{AsymBx, Tree};
use esm::relational::testgen::{gen_adults_view, gen_people};
use esm::relational::{project_lens, select_lens};
use esm::store::{Operand, Predicate, Table, Value};

#[test]
fn fst_lens_bx_passes_the_full_monadic_suite() {
    let gen_s = int_range(-100..100).zip(&string(0..6));
    let gen_b = int_range(-100..100);
    full_set_bx_suite(
        "Lemma 4: fst lens",
        AsymBx::new(fst::<i64, String>()),
        &gen_s,
        &gen_s, // side A carries the whole source
        &gen_b,
        8,
        6,
        101,
        true, // fst is very well-behaved => overwriteable
    )
    .assert_ok();
}

#[test]
fn combinator_built_lens_bx_passes_the_suite() {
    // pair(fst, snd): view = (left.0, right.1).
    let lens = pair(fst::<i64, i64>(), snd::<i64, i64>());
    let gen_pair = int_range(-50..50).zip(&int_range(-50..50));
    let gen_s = gen_pair.clone().zip(&gen_pair);
    let gen_b = int_range(-50..50).zip(&int_range(-50..50));
    full_set_bx_suite(
        "Lemma 4: pair(fst, snd)",
        AsymBx::new(lens),
        &gen_s,
        &gen_s,
        &gen_b,
        8,
        6,
        102,
        true,
    )
    .assert_ok();
}

fn gen_tree_with(edges: &'static [&'static str]) -> Gen<Tree> {
    let leaf_val = string(1..3);
    leaf_val
        .vec_of(edges.len()..edges.len() + 1)
        .map(move |vals| {
            Tree::node(
                edges
                    .iter()
                    .zip(vals)
                    .map(|(e, v)| (e.to_string(), Tree::value(v)))
                    .collect::<Vec<_>>(),
            )
        })
}

#[test]
fn tree_lens_bx_passes_the_suite_on_its_domain() {
    // child("age") over trees that always carry the edge.
    let gen_s = gen_tree_with(&["age", "name"]);
    let gen_b = string(1..3).map(Tree::value);
    full_set_bx_suite(
        "Lemma 4: tree child lens",
        AsymBx::new(child("age")),
        &gen_s,
        &gen_s,
        &gen_b,
        6,
        4,
        103,
        true,
    )
    .assert_ok();
}

#[test]
fn tree_fork_bx_passes_the_suite_on_its_domain() {
    let gen_s = gen_tree_with(&["alpha", "beta", "zeta"]);
    // Views must only contain 'a'-prefixed edges.
    let gen_b = gen_tree_with(&["alpha"]);
    full_set_bx_suite(
        "Lemma 4: tree fork lens",
        AsymBx::new(fork(|n| n.starts_with('a'))),
        &gen_s,
        &gen_s,
        &gen_b,
        6,
        4,
        104,
        true,
    )
    .assert_ok();
}

#[test]
fn relational_select_bx_passes_ops_suite_on_generated_tables() {
    let adults = Predicate::ge(Operand::col("age"), Operand::val(18));
    let bx = AsymBx::new(select_lens(adults));
    let gen_s = Gen::from_fn(|rng| gen_people(rand::Rng::gen(rng), 30));
    let gen_b = Gen::from_fn(|rng| gen_adults_view(rand::Rng::gen(rng), 10, 18));
    check_set_ops(
        "select bx (ops)",
        &bx,
        &gen_s,
        &gen_s,
        &gen_b,
        25,
        105,
        true,
    )
    .assert_ok();
    check_roundtrip_ops(&bx, &gen_s, &gen_s, &gen_b, 25, 106).assert_ok();
}

#[test]
fn relational_project_bx_passes_base_laws_on_generated_tables() {
    let bx = AsymBx::new(project_lens(&["id", "name"], &[("age", Value::Int(33))]));
    let gen_s = Gen::from_fn(|rng| gen_people(rand::Rng::gen(rng), 25));
    let gen_b = Gen::from_fn(|rng| {
        gen_people(rand::Rng::gen(rng), 10)
            .project(&["id".to_string(), "name".to_string()])
            .expect("cols exist")
    });
    // Base laws only: project is well-behaved but NOT very well-behaved
    // across delete/recreate (documented).
    check_set_ops(
        "project bx (ops)",
        &bx,
        &gen_s,
        &gen_s,
        &gen_b,
        25,
        107,
        false,
    )
    .assert_ok();
}

#[test]
fn relational_select_bx_passes_monadic_suite_small() {
    // The monadic suite clones tables per observation, so keep it small;
    // it checks the adapter, not the throughput.
    let adults = Predicate::ge(Operand::col("age"), Operand::val(18));
    let bx = AsymBx::new(select_lens(adults));
    let tables: Vec<Table> = (0..4).map(|i| gen_people(i, 8)).collect();
    let views: Vec<Table> = (0..3).map(|i| gen_adults_view(i + 50, 4, 18)).collect();
    let gen_s = Gen::one_of(tables);
    let gen_b = Gen::one_of(views);
    full_set_bx_suite(
        "Lemma 4: select lens (monadic)",
        bx,
        &gen_s,
        &gen_s,
        &gen_b,
        3,
        2,
        108,
        true,
    )
    .assert_ok();
}

#[test]
fn broken_lens_bx_is_caught_by_the_suite() {
    // A "lens" whose put ignores the view: (SG)B must fail.
    let broken: esm::lens::Lens<i64, i64> = esm::lens::Lens::new(|s: &i64| *s, |s, _v| s);
    let bx = AsymBx::new(broken);
    let g = int_range(-10..10);
    let r = check_set_ops("broken lens bx", &bx, &g, &g, &g, 50, 109, false);
    assert!(!r.is_ok());
    assert!(r.failed_laws().contains(&"(SG)B"));
}
