//! Integration: the session layer across instance families — interactive
//! workflows, undo/redo, transactional rejection, audit traces — i.e. the
//! APIs an application developer actually touches, driven end-to-end.

use esm::algebraic::builders::interval_bx;
use esm::algebraic::AlgBxOps;
use esm::core::effectful::{Announce, EffSession};
use esm::core::fallible::{Guarded, TrySession};
use esm::core::state::{BxSession, UndoSession};
use esm::lens::AsymBx;
use esm::modelsync::scenarios::library_model;
use esm::modelsync::{class_rdb_bx, ClassModel, RdbSchema};
use esm::relational::{RelationalSession, ViewDef};
use esm::store::{row, Operand, Predicate, Schema, Table, Value, ValueType};

fn inventory_table() -> Table {
    Table::from_rows(
        Schema::build(
            &[
                ("sku", ValueType::Int),
                ("name", ValueType::Str),
                ("stock", ValueType::Int),
            ],
            &["sku"],
        )
        .expect("valid"),
        vec![row![1, "widget", 10], row![2, "gadget", 0]],
    )
    .expect("valid")
}

#[test]
fn undo_session_over_a_relational_view() {
    let lens = ViewDef::base()
        .select(Predicate::gt(Operand::col("stock"), Operand::val(0)))
        .compile(&inventory_table())
        .expect("compiles");
    let mut sess = UndoSession::new(inventory_table(), AsymBx::new(lens));

    let view: Table = sess.b();
    assert_eq!(view.len(), 1);

    // Edit, then regret, then redo.
    let mut edited = view.clone();
    edited.upsert(row![3, "sprocket", 5]).expect("fits");
    sess.set_b(edited);
    assert_eq!(sess.state().len(), 3);
    assert!(sess.undo());
    assert_eq!(sess.state(), &inventory_table());
    assert!(sess.redo());
    assert_eq!(sess.state().len(), 3);
}

#[test]
fn undo_session_interleaves_both_sides() {
    let mut sess = UndoSession::new((0i64, 0i64), AlgBxOps::new(interval_bx(1)));
    sess.set_a(10); // drags b to 9
    sess.set_b(-10); // drags a to -9
    assert_eq!(sess.a(), -9);
    assert_eq!(sess.undo_depth(), 2);
    sess.undo();
    assert_eq!(sess.b(), 9);
    sess.undo();
    assert_eq!(sess.state(), &(0, 0));
}

#[test]
fn audit_trail_across_a_modelling_session() {
    // Announce over the Lemma-6-derived modelsync bx (through pp2set at
    // the ops level): every effective model/schema change is logged.
    use esm::core::state::PutToSet;
    let bx = class_rdb_bx();
    let state0 = bx.initial_from_a(library_model());
    let audited = Announce::new(PutToSet(bx), "model changed", "schema changed");
    let mut sess = EffSession::new(state0, audited);

    // A no-op write: silent (Hippocratic).
    let m: ClassModel = sess.a();
    sess.set_a(m);
    assert!(sess.printed().is_empty());

    // A real schema edit: logged.
    let mut schema: RdbSchema = sess.b();
    schema.remove("Member");
    sess.set_b(schema);
    assert_eq!(sess.printed(), vec!["schema changed"]);
    let model: ClassModel = sess.a();
    assert!(model.class("Member").is_none());
}

#[test]
fn transactional_rejection_guards_a_database_view() {
    // A stock view that rejects negative quantities, transactionally.
    let lens = ViewDef::base()
        .compile(&inventory_table())
        .expect("compiles");
    let guarded = Guarded::new(
        AsymBx::new(lens),
        |_base: &Table| true,
        |view: &Table| {
            view.rows()
                .all(|r| r[2].as_int().is_some_and(|stock| stock >= 0))
        },
    );
    let mut sess = TrySession::new(inventory_table(), guarded);

    // Valid edit: applies.
    let mut ok_view: Table = sess.b();
    ok_view.upsert(row![1, "widget", 7]).expect("fits");
    assert!(sess.try_set_b(ok_view).is_ok());

    // Invalid edit: rejected, state untouched.
    let mut bad_view: Table = sess.b();
    bad_view.upsert(row![2, "gadget", -5]).expect("fits");
    let err = sess.try_set_b(bad_view);
    assert!(err.is_err());
    let stock_of_widget = sess.state().get_by_key(&row![1]).expect("exists")[2].clone();
    assert_eq!(stock_of_widget, Value::Int(7)); // previous valid edit kept
    let stock_of_gadget = sess.state().get_by_key(&row![2]).expect("exists")[2].clone();
    assert_eq!(stock_of_gadget, Value::Int(0)); // bad edit rolled back
}

#[test]
fn relational_session_and_plain_session_agree() {
    // The multi-view RelationalSession and a single BxSession over the
    // same compiled lens produce identical bases after identical edits.
    let def = ViewDef::base().select(Predicate::gt(Operand::col("stock"), Operand::val(0)));
    let lens = def.compile(&inventory_table()).expect("compiles");

    let mut server = RelationalSession::new(inventory_table());
    server.define_view("in_stock", &def).expect("defined");
    let mut plain = BxSession::new(inventory_table(), AsymBx::new(lens));

    let mut edit = server.read_view("in_stock").expect("defined");
    edit.upsert(row![9, "cog", 3]).expect("fits");

    server
        .write_view("in_stock", edit.clone())
        .expect("applies");
    plain.set_b(edit);

    assert_eq!(server.base(), &plain.a());
}

#[test]
fn csv_roundtrip_through_a_bidirectional_edit() {
    // Export a view as CSV, "edit" the text, re-import, write back.
    let lens = ViewDef::base()
        .project(&["sku", "name"], &[("stock", Value::Int(1))])
        .compile(&inventory_table())
        .expect("compiles");
    let base = inventory_table();
    let view = lens.get(&base);
    let csv = esm::store::to_csv(&view);
    assert!(csv.starts_with("sku,name"));

    // The "external tool" renames the gadget.
    let edited_csv = csv.replace("gadget", "gizmo");
    let edited = esm::store::from_csv(view.schema().clone(), &edited_csv).expect("parses");
    let base2 = lens.put(base, edited);
    assert!(base2.contains(&row![2, "gizmo", 0])); // hidden stock preserved
}
