//! Integration: the §2 seven-equation theory of two memory cells vs the
//! §3 definition of a set-bx.
//!
//! The precise relationship this test suite pins down:
//!
//! * a set-bx = two cells, each satisfying its own four laws ((SS)
//!   optional), **without** the three cross-cell commutation equations;
//! * the §3.4 product bx satisfies all seven — it is an honest two-cell
//!   state monad;
//! * entangled instances (lens-derived, algebraic) keep the per-cell laws
//!   and break exactly the commutation half.

use esm::algebraic::builders::interval_bx;
use esm::algebraic::AlgBxOps;
use esm::core::monadic::{ProductBx, SetBx};
use esm::core::state::Monadic;
use esm::lens::combinators::fst;
use esm::lens::AsymBx;
use esm::monad::algebra::{check_cell, check_commutation, check_two_cell_theory, Cell};
use esm::monad::StateOf;

type PairState = (i64, i64);
type MP = StateOf<PairState>;

/// Package a monadic set-bx's two sides as two cells.
fn cells_of<T>(t: T) -> (Cell<MP, i64>, Cell<MP, i64>)
where
    T: SetBx<MP, i64, i64> + Clone + 'static,
{
    let t2 = t.clone();
    let ca = Cell::new(t.get_a(), move |x| t2.set_a(x));
    let t3 = t.clone();
    let cb = Cell::new(t.get_b(), move |y| t3.set_b(y));
    (ca, cb)
}

#[test]
fn product_bx_satisfies_all_seven_equations() {
    let (ca, cb) = cells_of(ProductBx::<i64, i64>::new());
    let ctx: Vec<PairState> = vec![(0, 0), (5, -3), (100, 42)];
    let v = check_two_cell_theory(&ca, &cb, (1, 2), (10, 20), &ctx);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn lens_bx_cells_are_lawful_but_do_not_commute() {
    // fst-lens bx over pair state: side A = whole pair, side B = first
    // component. Use an i64-pair state with both sides i64-valued by
    // composing with the identity on pairs... simplest faithful case:
    // interval algebraic bx (below) and a projected lens bx here.
    let t = Monadic(AsymBx::new(fst::<i64, i64>()));
    let t2 = t.clone();
    let cell_a = Cell::<MP, PairState>::new(t.get_a(), move |x| t2.set_a(x));
    let t3 = t.clone();
    let cell_b = Cell::<MP, i64>::new(t.get_b(), move |y| t3.set_b(y));
    let ctx: Vec<PairState> = vec![(0, 0), (7, -2)];

    // Each cell alone: all four laws.
    assert!(check_cell(&cell_a, (1, 1), (2, 5), &ctx).is_empty());
    assert!(check_cell(&cell_b, 3, 9, &ctx).is_empty());

    // Across cells: (SS') must fail — writing A then B is not writing B
    // then A, because B's write punches through into A's view.
    let v = check_commutation(&cell_a, &cell_b, (1, 1), 99, &ctx);
    assert!(!v.is_empty());
    assert!(v.iter().any(|x| x.law.contains("(SS')")), "{v:?}");
}

#[test]
fn algebraic_bx_cells_break_commutation_where_repair_happens() {
    // The equality bx is *overwriteable* (all four laws hold per cell,
    // including (SS)) yet maximally entangled: each write copies across.
    let t = Monadic(AlgBxOps::new(esm::algebraic::builders::equality_bx::<i64>()));
    let (ca, cb) = cells_of(t);
    // Consistent contexts only (the Lemma 5 state space: a == b).
    let ctx: Vec<PairState> = vec![(0, 0), (5, 5), (-3, -3)];

    assert!(check_cell(&ca, 1, 2, &ctx).is_empty());
    assert!(check_cell(&cb, 1, 2, &ctx).is_empty());

    // Distinct writes to the two sides: order matters (last write wins on
    // both components).
    let v = check_commutation(&ca, &cb, 10, -10, &ctx);
    assert!(v.iter().any(|x| x.law.contains("(SS')")), "{v:?}");

    // Writes that agree DO commute — entanglement is a property of
    // specific updates, not a global ban.
    let v2 = check_commutation(&ca, &cb, 5, 5, &vec![(5i64, 5i64)]);
    assert!(!v2.iter().any(|x| x.law.contains("(SS')")), "{v2:?}");
}

#[test]
fn get_get_commutation_always_holds_for_set_bx() {
    // (GG') is a consequence of the per-cell (GG) plus purity of views at
    // the ops level: reads never disturb the state, so read order is
    // unobservable even for entangled instances.
    let t = Monadic(AlgBxOps::new(interval_bx(2)));
    let (ca, cb) = cells_of(t);
    let ctx: Vec<PairState> = vec![(0, 1), (4, 2)];
    let v = check_commutation(&ca, &cb, 0, 0, &ctx);
    assert!(!v.iter().any(|x| x.law.contains("(GG')")), "{v:?}");
}
