//! Integration: the §3.3 equivalence (Lemmas 1–3) across instance
//! families, and the §4 effectful bx through its monadic carrier.

use esm::core::effectful::{Announce, MonadicEff};
use esm::core::monadic::laws::{check_set_bx, LawOptions};
use esm::core::monadic::Set2Pp;
use esm::core::state::{IdBx, Monadic, PutToSet, SbxOps, SetToPut, WithHistory};
use esm::lawcheck::gen::{int_range, string};
use esm::lawcheck::putbx::check_put_ops;
use esm::lawcheck::setbx::{check_roundtrip_ops, check_set_ops};
use esm::lens::combinators::fst;
use esm::lens::AsymBx;
use esm::monad::{IoSimOf, StateTOf};

// ---------------------------------------------------------------------
// Lemmas 1–3 across instances.
// ---------------------------------------------------------------------

#[test]
fn lemma1_translated_lens_bx_is_a_lawful_put_bx() {
    let t = SetToPut(AsymBx::new(fst::<i64, String>()));
    let gen_s = int_range(-50..50).zip(&string(0..5));
    let gen_b = int_range(-50..50);
    check_put_ops(
        "set2pp(lens bx)",
        &t,
        &gen_s,
        &gen_s,
        &gen_b,
        300,
        401,
        true,
    )
    .assert_ok();
}

#[test]
fn lemma3_roundtrip_is_identity_for_lens_bx() {
    let t = AsymBx::new(fst::<i64, String>());
    let gen_s = int_range(-50..50).zip(&string(0..5));
    let gen_b = int_range(-50..50);
    check_roundtrip_ops(&t, &gen_s, &gen_s, &gen_b, 300, 402).assert_ok();
}

#[test]
fn lemma2_translated_put_bx_is_a_lawful_set_bx() {
    // Start from a genuine put-bx (Lemma 6 style), translate to set-bx.
    use esm::symmetric::combinators::from_asym;
    use esm::symmetric::SymBxOps;
    let sym = SymBxOps::new(from_asym(fst::<i64, String>(), (0, "c".to_string())));
    let t = PutToSet(sym.clone());
    let gen_src = int_range(-50..50).zip(&string(0..5));
    let sym2 = sym.clone();
    let gen_s = gen_src.clone().map(move |a| sym2.initial_from_a(a));
    let gen_b = int_range(-50..50);
    check_set_ops(
        "pp2set(sym bx)",
        &t,
        &gen_s,
        &gen_src,
        &gen_b,
        300,
        403,
        true,
    )
    .assert_ok();
}

#[test]
fn double_translation_composes_across_layers() {
    // ops-level pp2set(set2pp(t)) embedded monadically must still pass the
    // monadic set-bx laws — the translations commute with the adapter.
    let t = PutToSet(SetToPut(IdBx::<i64>::new()));
    let m = Monadic(t);
    let ctx: Vec<i64> = int_range(-20..20).samples(404, 8);
    let samples: Vec<i64> = int_range(-20..20).samples(405, 5);
    let v = check_set_bx::<esm::monad::StateOf<i64>, i64, i64, _>(
        &m,
        &samples,
        &samples,
        &ctx,
        LawOptions::OVERWRITEABLE,
    );
    assert!(v.is_empty(), "{v:?}");
}

// ---------------------------------------------------------------------
// §4 effectful bx through the monadic carrier StateT<S, IoSim>.
// ---------------------------------------------------------------------

type Eff = StateTOf<i64, IoSimOf>;

#[test]
fn effectful_bx_satisfies_gg_gs_sg_with_trace_observation() {
    // The paper claims (GG), (GS), (SG) for the §4 example. Observation
    // includes the I/O trace, so these are strictly stronger checks than
    // the pure versions.
    let t = MonadicEff(Announce::trivial_int());
    let ctx = (vec![-3i64, 0, 7], ());
    let samples = [-2i64, 0, 9];
    let v = check_set_bx::<Eff, i64, i64, _>(&t, &samples, &samples, &ctx, LawOptions::BASE);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn effectful_bx_fails_ss_exactly() {
    let t = MonadicEff(Announce::trivial_int());
    let ctx = (vec![0i64], ());
    let samples = [1i64, 2];
    let v =
        check_set_bx::<Eff, i64, i64, _>(&t, &samples, &samples, &ctx, LawOptions::OVERWRITEABLE);
    assert!(!v.is_empty());
    assert!(v.iter().all(|viol| viol.law.starts_with("(SS)")), "{v:?}");
}

#[test]
fn effectful_wrapper_over_lens_bx_keeps_base_laws() {
    // §4: "we should be able to add similar stateful behaviour to any
    // (symmetric) lens or algebraic bx" — here: over the fst-lens bx.
    let t = MonadicEff(Announce::new(
        AsymBx::new(fst::<i64, String>()),
        "src!",
        "view!",
    ));
    let ctx = (vec![(0i64, "x".to_string()), (5, "y".to_string())], ());
    let samples_a = [(1i64, "x".to_string()), (5, "y".to_string())];
    let samples_b = [3i64, 5];
    let v = check_set_bx::<StateTOf<(i64, String), IoSimOf>, _, _, _>(
        &t,
        &samples_a,
        &samples_b,
        &ctx,
        LawOptions::BASE,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn effectful_translation_works_too() {
    // Lemma 1 with effects: set2pp of the effectful bx returns the fresh
    // other side *and* carries the trace.
    let t = MonadicEff(Announce::trivial_int());
    let u = Set2Pp(t);
    let prog = esm::core::monadic::PutBx::<Eff, i64, i64>::put_ba(&u, 9);
    let out = prog.run(0);
    assert_eq!(out.value, (9, 9));
    assert_eq!(out.printed(), vec!["Changed A"]);
    // Hippocratic put: no print.
    let quiet = esm::core::monadic::PutBx::<Eff, i64, i64>::put_ba(&u, 0).run(0);
    assert!(quiet.printed().is_empty());
}

// ---------------------------------------------------------------------
// §5 witness structures: the history bx across layers.
// ---------------------------------------------------------------------

#[test]
fn history_wrapped_lens_bx_keeps_base_laws_but_not_ss() {
    let t = WithHistory(AsymBx::new(fst::<i64, String>()));
    let gen_src = int_range(-20..20).zip(&string(0..4));
    let gen_s = gen_src.clone().map(|s| (s, Vec::new()));
    let gen_b = int_range(-20..20);
    check_set_ops(
        "history(lens) base",
        &t,
        &gen_s,
        &gen_src,
        &gen_b,
        200,
        406,
        false,
    )
    .assert_ok();
    let r = check_set_ops(
        "history(lens) ss",
        &t,
        &gen_s,
        &gen_src,
        &gen_b,
        200,
        407,
        true,
    );
    assert!(!r.is_ok());
    assert!(r.failed_laws().iter().all(|l| l.starts_with("(SS)")));
}

#[test]
fn history_records_only_effective_edits_across_instances() {
    use esm::core::state::Edit;
    let t = WithHistory(AsymBx::new(fst::<i64, String>()));
    let s0 = ((1i64, "k".to_string()), Vec::new());
    let s1 = t.update_b(s0, 1); // B view already 1: no-op
    assert!(s1.1.is_empty());
    let s2 = t.update_b(s1, 42);
    assert_eq!(s2.1, vec![Edit::SetB(42)]);
    assert_eq!((s2.0).0, 42);
}
