//! Integration: Lemma 6 — symmetric lenses embedded as put-bx, including
//! the model-synchronisation substrate, through the full law suites.

use esm::lawcheck::gen::{int_range, string};
use esm::lawcheck::monadic_suite::full_put_bx_suite;
use esm::lawcheck::putbx::check_put_ops;
use esm::lens::combinators::fst;
use esm::modelsync::scenarios::{library_model, synthetic_model};
use esm::modelsync::{class_rdb_bx, class_rdb_lens};
use esm::symmetric::combinators::{compose, from_asym, identity, iso, tensor};
use esm::symmetric::consistency::is_consistent;
use esm::symmetric::SymBxOps;

#[test]
fn from_asym_bx_passes_the_put_ops_suite() {
    let t = SymBxOps::new(from_asym(fst::<i64, String>(), (0, "c".to_string())));
    // States: consistent triples built by settling generated sources.
    let gen_src = int_range(-50..50).zip(&string(0..5));
    let t_for_gen = SymBxOps::new(from_asym(fst::<i64, String>(), (0, "c".to_string())));
    let gen_s = gen_src.clone().map(move |a| t_for_gen.initial_from_a(a));
    let gen_b = int_range(-50..50);
    check_put_ops(
        "from_asym put-bx",
        &t,
        &gen_s,
        &gen_src,
        &gen_b,
        300,
        301,
        true,
    )
    .assert_ok();
}

#[test]
fn from_asym_bx_passes_the_full_monadic_put_suite() {
    let t = SymBxOps::new(from_asym(fst::<i64, String>(), (0, "c".to_string())));
    let gen_src = int_range(-50..50).zip(&string(0..5));
    let t2 = t.clone();
    let gen_s = gen_src.clone().map(move |a| t2.initial_from_a(a));
    let gen_b = int_range(-50..50);
    full_put_bx_suite(
        "from_asym (monadic)",
        t,
        &gen_s,
        &gen_src,
        &gen_b,
        6,
        4,
        302,
        true,
    )
    .assert_ok();
}

#[test]
fn composed_symmetric_lens_passes_the_put_ops_suite() {
    // (i64, String) <-> i64 <-> String.
    let make = || {
        compose(
            from_asym(fst::<i64, String>(), (0, "c".to_string())),
            iso(
                |v: i64| v.to_string(),
                |s: String| s.parse::<i64>().expect("roundtrip"),
            ),
        )
    };
    let t = SymBxOps::new(make());
    let gen_src = int_range(-50..50).zip(&string(0..5));
    let t2 = SymBxOps::new(make());
    let gen_s = gen_src.clone().map(move |a| t2.initial_from_a(a));
    let gen_b = int_range(-50..50).map(|v| v.to_string());
    check_put_ops(
        "composed sym put-bx",
        &t,
        &gen_s,
        &gen_src,
        &gen_b,
        200,
        303,
        true,
    )
    .assert_ok();
}

#[test]
fn tensor_symmetric_lens_passes_the_put_ops_suite() {
    let make = || tensor(identity::<i64>(), iso(|a: i64| -a, |b: i64| -b));
    let t = SymBxOps::new(make());
    let gen_pair = int_range(-50..50).zip(&int_range(-50..50));
    let t2 = SymBxOps::new(make());
    let gen_s = gen_pair.clone().map(move |a| t2.initial_from_a(a));
    check_put_ops(
        "tensor put-bx",
        &t,
        &gen_s,
        &gen_pair,
        &gen_pair,
        200,
        304,
        true,
    )
    .assert_ok();
}

#[test]
fn modelsync_bx_passes_the_put_ops_suite() {
    let t = class_rdb_bx();
    // Generated models of varying size, settled into consistent triples.
    let gen_model = int_range(0..5)
        .zip(&int_range(0..4))
        .map(|(n, k)| synthetic_model(n as usize, k as usize));
    let t2 = class_rdb_bx();
    let gen_s = gen_model.clone().map(move |m| t2.initial_from_a(m));
    // Schema values: derived from other generated models (so they're
    // always well-formed schemas reachable by the transformation).
    let t3 = class_rdb_bx();
    let gen_schema = int_range(5..9)
        .zip(&int_range(1..3))
        .map(move |(n, k)| t3.initial_from_a(synthetic_model(n as usize, k as usize)).1);
    check_put_ops(
        "modelsync put-bx",
        &t,
        &gen_s,
        &gen_model,
        &gen_schema,
        60,
        305,
        false,
    )
    .assert_ok();
}

#[test]
fn modelsync_consistency_invariant_is_preserved_by_long_edit_sequences() {
    use esm::core::state::PbxOps;
    let t = class_rdb_bx();
    let mut state = t.initial_from_a(library_model());
    let models: Vec<_> = (0..20)
        .map(|i| synthetic_model(i % 7, (i % 3) + 1))
        .collect();
    for (i, m) in models.into_iter().enumerate() {
        if i % 2 == 0 {
            let (next, _) = t.put_a(state, m);
            state = next;
        } else {
            let schema = state.1.clone();
            let (next, _) = t.put_b(state, schema);
            state = next;
        }
        assert!(t.invariant(&state), "invariant broken at step {i}");
    }
}

#[test]
fn modelsync_settles_any_generated_pairing() {
    let l = class_rdb_lens();
    for i in 0..10 {
        let m = synthetic_model(i, 3);
        let (a, b, c) = l.settle_from_a(m, l.missing());
        assert!(is_consistent(&l, &a, &b, &c), "unsettled at {i}");
    }
}

#[test]
fn broken_symmetric_lens_is_caught() {
    // A putr that forgets to update the complement: (PutRL) fails, and
    // via Lemma 6, (PG1) fails at the bx level.
    let broken = esm::symmetric::SymLens::<i64, i64, i64>::new(
        |a, _c| (a * 2, 0),    // complement always reset
        |b, c| (b / 2 + c, c), // disagrees when c != 0
        0,
    );
    let t = SymBxOps::new(broken);
    let gen_s = int_range(1..50).map(|a| (a, a * 2, 1i64)); // c = 1: inconsistent
    let g = int_range(1..50);
    let r = check_put_ops("broken sym", &t, &gen_s, &g, &g, 50, 306, false);
    assert!(!r.is_ok());
}
