//! Integration: the database scenario end to end — multiple bidirectional
//! views over one database, concurrent-style edit interleavings, deltas,
//! and the join lens across two tables.

use esm::core::state::BxSession;
use esm::lens::AsymBx;
use esm::relational::join::validate_join_sources;
use esm::relational::testgen::{gen_orders_products, gen_people};
use esm::relational::{join_dl_lens, select_lens, ViewDef};
use esm::store::{
    row, Database, Delta, Operand, Predicate, Query, Schema, Table, Value, ValueType,
};

fn employees() -> Table {
    Table::from_rows(
        Schema::build(
            &[
                ("eid", ValueType::Int),
                ("name", ValueType::Str),
                ("dept", ValueType::Str),
                ("salary", ValueType::Int),
            ],
            &["eid"],
        )
        .expect("valid schema"),
        vec![
            row![1, "ada", "research", 90_000],
            row![2, "alan", "ops", 80_000],
            row![3, "grace", "research", 95_000],
        ],
    )
    .expect("valid rows")
}

#[test]
fn two_views_of_one_table_stay_consistent() {
    // Two independent view definitions over the same base.
    let research = ViewDef::base()
        .select(Predicate::eq(
            Operand::col("dept"),
            Operand::val("research"),
        ))
        .compile(&employees())
        .expect("compiles");
    let ops = ViewDef::base()
        .select(Predicate::eq(Operand::col("dept"), Operand::val("ops")))
        .compile(&employees())
        .expect("compiles");

    let mut base = employees();

    // Edit through view 1.
    let mut v1 = research.get(&base);
    v1.upsert(row![1, "ada lovelace", "research", 91_000])
        .expect("fits");
    base = research.put(base, v1);

    // Edit through view 2 — sees the base already updated by view 1.
    let mut v2 = ops.get(&base);
    v2.upsert(row![4, "barbara", "ops", 70_000]).expect("fits");
    base = ops.put(base, v2);

    assert!(base.contains(&row![1, "ada lovelace", "research", 91_000]));
    assert!(base.contains(&row![4, "barbara", "ops", 70_000]));
    assert!(base.contains(&row![3, "grace", "research", 95_000]));
    assert_eq!(base.len(), 4);

    // Both views now reflect both edits consistently.
    assert_eq!(research.get(&base).len(), 2);
    assert_eq!(ops.get(&base).len(), 2);
}

#[test]
fn view_edits_report_minimal_deltas() {
    let lens = ViewDef::base()
        .select(Predicate::gt(Operand::col("salary"), Operand::val(85_000)))
        .compile(&employees())
        .expect("compiles");
    let base = employees();
    let mut view = lens.get(&base);
    assert_eq!(view.len(), 2);

    view.upsert(row![3, "grace", "research", 99_000])
        .expect("fits");
    let base2 = lens.put(base.clone(), view);
    let delta = Delta::between(&base, &base2).expect("same schema");
    // Exactly one row changed: one delete + one insert.
    assert_eq!(delta.deleted, vec![row![3, "grace", "research", 95_000]]);
    assert_eq!(delta.inserted, vec![row![3, "grace", "research", 99_000]]);
}

#[test]
fn join_view_spans_two_tables_bidirectionally() {
    let (orders, products) = gen_orders_products(11, 50, 8);
    validate_join_sources(&orders, &products).expect("generated sources are valid");

    let lens = join_dl_lens();
    let mut session = BxSession::new((orders, products), AsymBx::new(lens));

    let view: Table = session.b();
    assert_eq!(view.len(), 50);

    // Delete the first five orders through the view; rename a product.
    let keep: Vec<_> = view.rows().skip(5).cloned().collect();
    let mut edited = Table::new(view.schema().clone());
    for mut r in keep {
        // Column layout: oid, pid, qty, pname.
        if r[1] == Value::Int(0) {
            r[3] = Value::str("renamed-product");
        }
        edited.insert(r).expect("fits");
    }
    session.set_b(edited.clone());

    let (orders2, products2) = session.a();
    assert_eq!(orders2.len(), 45); // delete-left: orders shrank
    assert_eq!(products2.len(), 8); // products kept
    if edited.rows().any(|r| r[1] == Value::Int(0)) {
        assert!(products2.contains(&row![0, "renamed-product"]));
    }

    // The refreshed view equals the edited one (PutGet at scale).
    let reread: Table = session.b();
    assert_eq!(reread, edited);
}

#[test]
fn query_engine_and_lens_agree_on_select() {
    // The forward query engine and the bidirectional lens compute the
    // same view.
    let people = gen_people(21, 200);
    let pred = Predicate::ge(Operand::col("age"), Operand::val(50));
    let via_lens = select_lens(pred.clone()).get(&people);

    let mut db = Database::new();
    db.create_table("people", people).expect("fresh name");
    let via_query = Query::scan("people")
        .select(pred)
        .eval(&db)
        .expect("valid query");

    assert_eq!(via_lens, via_query);
}

#[test]
fn large_view_roundtrip_preserves_everything_hidden() {
    // GetPut at scale: push the unmodified view back through a 3-stage
    // pipeline over 1000 rows and verify the base is untouched.
    let people = gen_people(31, 1000);
    let lens = ViewDef::base()
        .select(Predicate::ge(Operand::col("age"), Operand::val(18)))
        .project(&["id", "name"], &[("age", Value::Int(40))])
        .rename(&[("name", "label")])
        .compile(&people)
        .expect("compiles");
    let view = lens.get(&people);
    let back = lens.put(people.clone(), view);
    assert_eq!(back, people);
}
