//! Integration: composition (§5) and the structural combinators — checking
//! that every construction preserves the bx laws, across instance
//! families, on the appropriate state spaces.

use esm::core::state::{
    compose, updates_commute, Dual, IdBx, Iso, MapA, MapB, PairBx, SbxOps, StateBx,
};
use esm::lawcheck::gen::{int_range, string, Gen};
use esm::lawcheck::setbx::{check_roundtrip_ops, check_set_ops};
use esm::lens::combinators::fst;
use esm::lens::AsymBx;

fn celsius_stage() -> StateBx<i64, i64, i64> {
    StateBx::new(|s: &i64| *s, |s| s * 2 + 32, |_, c| c, |_, f| (f - 32) / 2)
}

/// Consistent states for `compose(AsymBx(fst), celsius_stage)`: the middle
/// interface (celsius) must agree.
fn gen_pipeline_state() -> Gen<((i64, String), i64)> {
    int_range(-50..50).zip(&string(0..4)).map(|rec| {
        let c = rec.0;
        (rec, c)
    })
}

#[test]
fn composed_pipeline_passes_set_bx_laws_on_consistent_states() {
    let pipeline = compose::<_, _, i64>(AsymBx::new(fst::<i64, String>()), celsius_stage());
    let gen_s = gen_pipeline_state();
    let gen_a = int_range(-50..50).zip(&string(0..4));
    let gen_f = int_range(-50..50).map(|c| c * 2 + 32); // image of the conversion
    check_set_ops(
        "composed pipeline",
        &pipeline,
        &gen_s,
        &gen_a,
        &gen_f,
        300,
        501,
        true,
    )
    .assert_ok();
}

#[test]
fn composed_pipeline_fails_gs_off_the_consistent_subset() {
    // The §5 restriction, detected mechanically: generate *inconsistent*
    // states and watch (GS) fail (updates repair the state).
    let pipeline = compose::<_, _, i64>(AsymBx::new(fst::<i64, String>()), celsius_stage());
    let gen_bad = int_range(-50..50)
        .zip(&string(0..4))
        .zip(&int_range(200..300)) // middle state far away from the record
        .map(|(rec, junk)| (rec, junk));
    let gen_a = int_range(-50..50).zip(&string(0..4));
    let gen_f = int_range(-50..50).map(|c| c * 2 + 32);
    let r = check_set_ops(
        "composed off-domain",
        &pipeline,
        &gen_bad,
        &gen_a,
        &gen_f,
        100,
        502,
        false,
    );
    assert!(!r.is_ok());
    assert!(r.failed_laws().iter().any(|l| l.starts_with("(GS)")));
}

#[test]
fn composition_is_associative_on_consistent_states() {
    // (t1 ; t2) ; t3 behaves like t1 ; (t2 ; t3) pointwise, modulo state
    // re-association.
    let t1 = || AsymBx::new(fst::<i64, String>());
    let t2 = celsius_stage;
    let t3 = || {
        StateBx::new(
            |s: &i64| *s,
            |s| s + 1000, // a second exact conversion
            |_, a| a,
            |_, b| b - 1000,
        )
    };
    let left = compose::<_, _, i64>(compose::<_, _, i64>(t1(), t2()), t3());
    let right = compose::<_, _, i64>(t1(), compose::<_, _, i64>(t2(), t3()));

    for c in [-5i64, 0, 20] {
        let rec = (c, "x".to_string());
        let f = c * 2 + 32;
        let sl = ((rec.clone(), f), f);
        let sr = (rec.clone(), (f, f));
        // Same views.
        assert_eq!(left.view_a(&sl), right.view_a(&sr));
        assert_eq!(left.view_b(&sl), right.view_b(&sr));
        // Same result after an A-update, modulo re-association.
        let sl2 = left.update_a(sl, (c + 1, "y".to_string()));
        let sr2 = right.update_a(sr, (c + 1, "y".to_string()));
        assert_eq!((sl2.0).0, sr2.0);
        assert_eq!((sl2.0).1, (sr2.1).0);
        assert_eq!(sl2.1, (sr2.1).1);
    }
}

#[test]
fn dual_preserves_the_laws() {
    let t = Dual(AsymBx::new(fst::<i64, String>()));
    let gen_s = int_range(-50..50).zip(&string(0..4));
    let gen_a = int_range(-50..50);
    check_set_ops("dual(lens bx)", &t, &gen_s, &gen_a, &gen_s, 300, 503, true).assert_ok();
    check_roundtrip_ops(&t, &gen_s, &gen_a, &gen_s, 100, 504).assert_ok();
}

#[test]
fn pair_bx_preserves_the_laws() {
    let t = PairBx(AsymBx::new(fst::<i64, String>()), IdBx::<i64>::new());
    let gen_rec = int_range(-50..50).zip(&string(0..4));
    let gen_s = gen_rec.clone().zip(&int_range(-50..50));
    let gen_a = gen_rec.zip(&int_range(-50..50));
    let gen_b = int_range(-50..50).zip(&int_range(-50..50));
    check_set_ops("pair bx", &t, &gen_s, &gen_a, &gen_b, 300, 505, true).assert_ok();
}

#[test]
fn map_a_and_map_b_preserve_laws_for_real_isos() {
    let base = AsymBx::new(fst::<i64, String>());
    let t = MapB::new(
        base,
        Iso::new(|x: i64| x.to_string(), |s: String| s.parse().expect("int")),
    );
    let gen_s = int_range(-50..50).zip(&string(0..4));
    let gen_b = int_range(-50..50).map(|x| x.to_string());
    check_set_ops("mapB(lens bx)", &t, &gen_s, &gen_s, &gen_b, 300, 506, true).assert_ok();

    let t2 = MapA::new(IdBx::<i64>::new(), Iso::new(|x: i64| -x, |y: i64| -y));
    let g = int_range(-50..50);
    check_set_ops("mapA(id bx)", &t2, &g, &g, &g, 300, 507, true).assert_ok();
}

#[test]
fn map_a_with_a_non_bijection_breaks_laws() {
    // The documented side condition: the iso must be a bijection. Halving
    // loses a bit.
    let t = MapA::new(IdBx::<i64>::new(), Iso::new(|x: i64| x / 2, |y: i64| y * 2));
    let g = int_range(-49..49).map(|x| x * 2 + 1); // odd states break it
    let r = check_set_ops("mapA(bad iso)", &t, &g, &g, &g, 50, 508, false);
    assert!(!r.is_ok());
}

#[test]
fn pipeline_commutation_reflects_entanglement() {
    // In the composed pipeline, A-writes and B-writes both reach the
    // shared middle state: generically they do not commute.
    let pipeline = compose::<_, _, i64>(AsymBx::new(fst::<i64, String>()), celsius_stage());
    let s = ((10i64, "x".to_string()), 10i64);
    assert!(!updates_commute(
        &pipeline,
        s.clone(),
        (20, "x".to_string()),
        92
    ));
    // Writes that agree on the middle value do commute.
    assert!(updates_commute(&pipeline, s, (30, "x".to_string()), 92));
}
