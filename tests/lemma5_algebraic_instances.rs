//! Integration: Lemma 5 — algebraic bx embedded as entangled state monads.
//! Exercises the paper's claim chain: lawful algebraic bx → lawful set-bx;
//! undoable → overwriteable; and the failure directions.

use esm::algebraic::builders::{equality_bx, from_lens, interval_bx, universal_bx};
use esm::algebraic::laws::{check_algebraic_bx, check_undoable};
use esm::algebraic::AlgBxOps;
use esm::lawcheck::gen::{int_range, string, Gen};
use esm::lawcheck::monadic_suite::full_set_bx_suite;
use esm::lawcheck::setbx::check_set_ops;
use esm::lens::combinators::fst;

/// Generator of *consistent* interval-bx states: pairs within `slack`.
fn gen_interval_state(slack: i64) -> Gen<(i64, i64)> {
    int_range(-100..100)
        .zip(&int_range(-slack..slack + 1))
        .map(|(a, d)| (a, a + d))
}

#[test]
fn interval_bx_is_a_lawful_set_bx_but_not_overwriteable() {
    let slack = 3;
    let t = AlgBxOps::new(interval_bx(slack));
    let gen_s = gen_interval_state(slack);
    let gen_v = int_range(-100..100);

    // Base laws hold (Lemma 5 for correct+hippocratic bx).
    check_set_ops(
        "interval set-bx",
        &t,
        &gen_s,
        &gen_v,
        &gen_v,
        300,
        201,
        false,
    )
    .assert_ok();

    // The bx is not undoable, so the derived set-bx must fail (SS)
    // somewhere — and only (SS).
    let r = check_set_ops("interval (SS)", &t, &gen_s, &gen_v, &gen_v, 300, 202, true);
    assert!(!r.is_ok());
    assert!(
        r.failed_laws().iter().all(|l| l.starts_with("(SS)")),
        "{:?}",
        r.failed_laws()
    );

    // Cross-check with the algebraic-level laws: same verdicts.
    let samples: Vec<i64> = int_range(-100..100).samples(203, 30);
    assert!(check_algebraic_bx(&interval_bx(slack), &samples, &samples).is_empty());
    assert!(!check_undoable(&interval_bx(slack), &samples, &samples).is_empty());
}

#[test]
fn equality_bx_is_overwriteable_and_passes_the_monadic_suite() {
    let t = AlgBxOps::new(equality_bx::<i64>());
    let gen_s = int_range(-50..50).map(|x| (x, x)); // consistent pairs
    let gen_v = int_range(-50..50);
    full_set_bx_suite(
        "equality bx (monadic)",
        t,
        &gen_s,
        &gen_v,
        &gen_v,
        8,
        5,
        204,
        true,
    )
    .assert_ok();
}

#[test]
fn universal_bx_is_the_unentangled_product() {
    // §3.4: with the universally-true consistency relation, the Lemma 5
    // construction *is* the product bx — sets commute.
    let t = AlgBxOps::new(universal_bx::<i64, i64>());
    let gen_s = int_range(-50..50).zip(&int_range(-50..50));
    let gen_v = int_range(-50..50);
    check_set_ops(
        "universal set-bx",
        &t,
        &gen_s,
        &gen_v,
        &gen_v,
        300,
        205,
        true,
    )
    .assert_ok();

    let states: Vec<(i64, i64)> = gen_s.samples(206, 20);
    let vals: Vec<i64> = gen_v.samples(207, 10);
    assert_eq!(
        esm::core::state::find_entanglement_witness(&t, &states, &vals, &vals),
        None
    );
}

#[test]
fn interval_bx_is_genuinely_entangled() {
    let slack = 1;
    let t = AlgBxOps::new(interval_bx(slack));
    let states: Vec<(i64, i64)> = gen_interval_state(slack).samples(208, 20);
    let vals: Vec<i64> = int_range(-100..100).samples(209, 10);
    // Far-apart writes to the two sides cannot commute: each drags the
    // other side along.
    assert!(esm::core::state::find_entanglement_witness(&t, &states, &vals, &vals).is_some());
}

#[test]
fn lens_derived_algebraic_bx_matches_the_lens_bx() {
    // from_lens(fst) through Lemma 5 behaves like fst through Lemma 4 on
    // the B side (the A sides differ by construction: Lemma 5 stores the
    // consistent pair).
    use esm::core::state::SbxOps;
    let alg = AlgBxOps::new(from_lens(fst::<i64, String>()));
    let asym = esm::lens::AsymBx::new(fst::<i64, String>());

    let gen_a = int_range(-50..50).zip(&string(0..5));
    for (i, a) in gen_a.samples(210, 50).into_iter().enumerate() {
        let b = i as i64;
        let s_alg = (a.clone(), a.0); // consistent pair
        let s_asym = a.clone();
        // Updating B through both constructions yields the same source.
        let alg_next = alg.update_b(s_alg, b);
        let asym_next = asym.update_b(s_asym, b);
        assert_eq!(alg_next.0, asym_next);
        assert_eq!(alg_next.1, b);
    }
}

#[test]
fn lens_derived_algebraic_bx_passes_full_suite() {
    let t = AlgBxOps::new(from_lens(fst::<i64, String>()));
    let gen_pair = int_range(-50..50).zip(&string(0..5));
    let gen_s = gen_pair.clone().map(|a| {
        let b = a.0;
        (a, b)
    });
    let gen_a = gen_pair;
    let gen_b = int_range(-50..50);
    full_set_bx_suite(
        "from_lens(fst) (monadic)",
        t,
        &gen_s,
        &gen_a,
        &gen_b,
        6,
        4,
        211,
        true,
    )
    .assert_ok();
}
