//! Database/view synchronisation: the paper's motivating "database
//! tables" scenario, end to end.
//!
//! An HR database exposes a *view* of its research staff (a select +
//! project + rename pipeline). The view is handed to a client, the client
//! edits it like an ordinary table, and the edits flow back into the base
//! table — bidirectionally, with the hidden columns preserved. The whole
//! pipeline is one entangled state monad whose hidden state is the base
//! table.
//!
//! Run with: `cargo run --example db_view_sync`

use esm::core::state::BxSession;
use esm::lens::AsymBx;
use esm::relational::ViewDef;
use esm::store::{row, Delta, Operand, Predicate, Schema, Table, Value, ValueType};

fn main() {
    // The base table: employees with private salary data.
    let employees = Table::from_rows(
        Schema::build(
            &[
                ("eid", ValueType::Int),
                ("name", ValueType::Str),
                ("dept", ValueType::Str),
                ("salary", ValueType::Int),
            ],
            &["eid"],
        )
        .expect("schema is well-formed"),
        vec![
            row![1, "ada", "research", 90_000],
            row![2, "alan", "ops", 80_000],
            row![3, "grace", "research", 95_000],
            row![4, "edsger", "research", 70_000],
        ],
    )
    .expect("rows fit the schema");

    println!("base table:\n{employees}\n");

    // The view definition: research staff, id+name only, `name` renamed.
    let view_def = ViewDef::base()
        .select(Predicate::eq(
            Operand::col("dept"),
            Operand::val("research"),
        ))
        .project(
            &["eid", "name"],
            &[
                ("dept", Value::str("research")),
                ("salary", Value::Int(60_000)),
            ],
        )
        .rename(&[("name", "researcher")]);
    let lens = view_def
        .compile(&employees)
        .expect("view definition is valid");

    // Lemma 4: the lens is an entangled state monad. Open a session.
    let mut db = BxSession::new(employees, AsymBx::new(lens));
    let view: Table = db.b();
    println!("client view (research staff):\n{view}\n");

    // The client edits the view: renames grace, hires barbara, lets
    // edsger go.
    let edited = Table::from_rows(
        view.schema().clone(),
        vec![row![1, "ada"], row![3, "grace hopper"], row![5, "barbara"]],
    )
    .expect("edited view is well-formed");

    let before = db.a();
    db.set_b(edited);
    let after: Table = db.a();

    println!("base table after view edit:\n{after}\n");
    let delta = Delta::between(&before, &after).expect("same schema");
    println!("what actually changed:\n{delta}");

    // The bidirectional guarantees, demonstrated:
    // 1. grace's salary survived the rename (hidden column preserved).
    assert!(after.contains(&row![3, "grace hopper", "research", 95_000]));
    // 2. barbara was created with the view definition's defaults.
    assert!(after.contains(&row![5, "barbara", "research", 60_000]));
    // 3. edsger is gone; alan (invisible to the view) is untouched.
    assert!(after.get_by_key(&row![4]).is_none());
    assert!(after.contains(&row![2, "alan", "ops", 80_000]));
    // 4. Hippocratic: putting the unedited view back changes nothing.
    let unedited: Table = db.b();
    db.set_b(unedited);
    let same: Table = db.a();
    assert_eq!(after, same);
    println!("all bidirectional guarantees verified ✓");
}
