//! Key-range sharding: one entangled engine, many commit pipelines.
//!
//! The paper's equivalence of state- and predicate-transformer readings
//! licenses treating a *partitioned* store as one monolithic state: the
//! sharded engine serves the same `EntangledView` handles as the
//! unsharded one, while under the hood every table is cut across shards
//! by key range, single-shard transactions commit with no coordination,
//! and cross-shard transactions run two-phase commit over the per-shard
//! write-ahead logs.
//!
//! Run with: `cargo run --example sharded_engine`

use esm::engine::{ShardRouter, ShardedEngineServer};
use esm::relational::ViewDef;
use esm::store::{row, Database, Operand, Predicate, Row, Schema, Table, ValueType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bank of 4000 accounts, keyed by id.
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("owner", ValueType::Str),
            ("balance", ValueType::Int),
        ],
        &["id"],
    )?;
    let rows: Vec<Row> = (0..4000)
        .map(|i| row![i, format!("acct{i}"), 100])
        .collect();
    let mut db = Database::new();
    db.create_table("accounts", Table::from_rows(schema, rows)?)?;

    // Four shards, each owning a quarter of the key space.
    let engine = ShardedEngineServer::with_router(db, ShardRouter::uniform_int(4, 0, 4000)?)?;
    println!("shards: {}", engine.shard_count());

    // A single-shard transaction: no coordination, one WAL.
    let receipt = engine.transact_keys(&[row![42]], 4, |db| {
        let t = db.table_mut("accounts")?;
        t.upsert(row![42, "acct42", 150])?;
        Ok(())
    })?;
    println!(
        "single-shard commit: stamp {}, shards {:?}",
        receipt.stamp, receipt.shards
    );

    // A cross-shard transfer: two-phase commit over both shards' WALs.
    let receipt = engine.transact_keys(&[row![10], row![3990]], 4, |db| {
        let t = db.table_mut("accounts")?;
        let from = t.get_by_key(&row![10]).unwrap()[2].as_int().unwrap();
        let to = t.get_by_key(&row![3990]).unwrap()[2].as_int().unwrap();
        t.upsert(row![10, "acct10", from - 25])?;
        t.upsert(row![3990, "acct3990", to + 25])?;
        Ok(())
    })?;
    println!(
        "cross-shard transfer: gtx {:?} across shards {:?}",
        receipt.gtx, receipt.shards
    );

    // Routing-oblivious entangled views: the window spans shards, the
    // client never sees them.
    let rich = engine.define_view(
        "rich",
        "accounts",
        &ViewDef::base().select(Predicate::ge(Operand::col("balance"), Operand::val(120))),
    )?;
    println!("rich accounts: {}", rich.get()?.len());
    rich.edit(|v| {
        v.upsert(row![7, "acct7", 500])?; // shard 0
        v.upsert(row![3500, "acct3500", 500])?; // shard 3
        Ok(())
    })?;

    // Online rebalance: split the hot first shard at the median key of
    // its range (`Table::key_at` picks split points by position), then
    // check nothing moved observably.
    let before = engine.snapshot();
    let accounts = engine.table("accounts")?;
    let split_at = accounts
        .key_at(accounts.len() / 8) // median of the first quarter
        .expect("the table is nonempty");
    let new_index = engine.split_shard(split_at.clone())?;
    println!(
        "split shard 0 at key {split_at:?} → new shard at index {new_index} ({} shards now)",
        engine.shard_count()
    );
    assert_eq!(engine.snapshot(), before, "a split changes no data");

    // The recovery law holds shard by shard: every WAL replays to its
    // live piece, and their union is the engine's snapshot.
    assert_eq!(engine.recovered_database()?, engine.snapshot());

    let m = engine.metrics();
    println!(
        "commits: {} ({} single-shard, {} cross-shard; {} prepares, {} splits)",
        m.commits,
        m.shard.single_shard_commits,
        m.shard.cross_shard_commits,
        m.shard.prepares,
        m.shard.splits,
    );
    Ok(())
}
