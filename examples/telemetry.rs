//! End-to-end telemetry: a 16-connection swarm hammers a sharded
//! engine through the network front end, then one more connection
//! fetches the server's phase-latency histograms over the wire with
//! the `STATS` verb — commit phases (snapshot, validate, WAL append,
//! fsync, lock hold), 2PC phases, view maintenance phases, and the
//! net layer's own frame-decode/queue-wait/handler/response-write
//! breakdown, all in one Prometheus-style exposition plus the slow-op
//! log.
//!
//! Run with: `cargo run --release --example telemetry`

use std::thread;

use esm::engine::{Engine, ShardRouter, ShardedEngineServer};
use esm::net::{NetServer, NetServerConfig, RemoteEngine};
use esm::obs::render_prometheus;
use esm::relational::ViewDef;
use esm::store::{row, Database, Operand, Predicate, Schema, Table, ValueType};

const CLIENTS: usize = 16;
const OPS_PER_CLIENT: i64 = 12;
const KEYS: i64 = 400;

fn main() {
    // A 4-shard engine behind a loopback socket.
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("owner", ValueType::Str),
            ("qty", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows = (0..KEYS)
        .map(|i| row![i, format!("o{}", i % CLIENTS as i64), 1i64])
        .collect::<Vec<_>>();
    let mut db = Database::new();
    db.create_table("stock", Table::from_rows(schema, rows).expect("valid rows"))
        .expect("fresh table");
    let engine =
        ShardedEngineServer::with_router(db, ShardRouter::uniform_int(4, 0, KEYS).expect("router"))
            .expect("sharded engine");
    // Capture anything slower than 1 ms in the slow-op ring.
    engine.telemetry_registry().set_slow_threshold_ns(1_000_000);

    let server = NetServer::bind(
        engine.as_engine(),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("serving a 4-shard engine on {addr}; {CLIENTS} clients incoming\n");

    // A view so the swarm's reads exercise the maintenance phases too.
    let admin = RemoteEngine::connect(addr).expect("connect");
    admin
        .define_view(
            "low",
            "stock",
            &ViewDef::base().select(Predicate::lt(Operand::col("qty"), Operand::val(5))),
        )
        .expect("view compiles");

    // The swarm: each connection alternates cross-key transactions
    // (some spanning shards → 2PC) with view reads.
    thread::scope(|scope| {
        for client in 0..CLIENTS {
            scope.spawn(move || {
                let remote = RemoteEngine::connect(addr).expect("connect");
                for i in 0..OPS_PER_CLIENT {
                    let a = (client as i64 * 37 + i * 11) % KEYS;
                    let b = (a + KEYS / 2) % KEYS; // other half → other shards
                    remote
                        .transact(64, &move |db: &mut Database| {
                            let t = db.table_mut("stock")?;
                            t.upsert(row![a, format!("o{client}"), i])?;
                            t.upsert(row![b, format!("o{client}"), i + 1])?;
                            Ok(())
                        })
                        .expect("commits");
                    remote.read_view("low").expect("readable");
                }
            });
        }
    });

    // One more round trip: the full phase breakdown over the wire.
    // Engine phases come from the engine's registry; the server folds
    // its own net-layer phases in before the snapshot crosses the
    // socket.
    let snapshot = admin.telemetry().expect("stats over the wire");
    println!("{}", render_prometheus("esm", &snapshot));

    if snapshot.slow_ops.is_empty() {
        println!("# no operation crossed the 1ms slow-op threshold");
    } else {
        println!("# slow-op log ({} captured):", snapshot.slow_ops.len());
        for op in &snapshot.slow_ops {
            let phases = op
                .phases
                .iter()
                .map(|(p, ns)| format!("{}={}us", p.name(), ns / 1_000))
                .collect::<Vec<_>>()
                .join(" ");
            println!("#   {} total={}us {}", op.op, op.total_ns / 1_000, phases);
        }
    }

    let stats = server.stats();
    println!(
        "\nserver lifetime: {} connections, {} requests, {} B in / {} B out",
        stats.accepted, stats.requests, stats.bytes_read, stats.bytes_written
    );
    server.shutdown();
}
