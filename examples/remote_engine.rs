//! Entangled views over a wire, end to end: a [`NetServer`] fronting a
//! sharded engine on a loopback socket, remote clients on their own
//! connections defining and editing views through the same `Engine`
//! trait the in-process code uses — host-location-oblivious handles.
//!
//! Run with: `cargo run --release --example remote_engine`

use std::thread;

use esm::engine::{Engine, Session, ShardRouter, ShardedEngineServer};
use esm::net::{NetServer, NetServerConfig, RemoteEngine};
use esm::relational::ViewDef;
use esm::store::{row, Database, Operand, Predicate, Schema, Table, ValueType};

fn main() {
    // The hidden shared state: an orders table, partitioned over four
    // key-range shards.
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("customer", ValueType::Str),
            ("total", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let orders = Table::from_rows(
        schema,
        (0..40i64)
            .map(|i| row![i, format!("c{}", i % 7), i * 10])
            .collect::<Vec<_>>(),
    )
    .expect("valid rows");
    let mut db = Database::new();
    db.create_table("orders", orders).expect("fresh table");
    let engine =
        ShardedEngineServer::with_router(db, ShardRouter::uniform_int(4, 0, 40).expect("router"))
            .expect("sharded engine");

    // The network front end: one poller + a worker pool multiplexing
    // every connection onto the engine's shard pipelines.
    let server = NetServer::bind(
        engine.as_engine(),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("serving a 4-shard engine on {addr}");

    // Client one (its own connection + session): define a view over the
    // big-ticket orders and edit it. The code below would be identical
    // against an in-process EngineServer — EntangledView and Session
    // only ever see the Engine trait.
    let session = Session::new(RemoteEngine::connect(addr).expect("connect").as_engine());
    let big = session
        .define_view(
            "big",
            "orders",
            &ViewDef::base().select(Predicate::ge(Operand::col("total"), Operand::val(300))),
        )
        .expect("view compiles");
    println!(
        "big orders seen remotely: {}",
        big.get().expect("read").len()
    );

    let delta = session
        .edit("big", |v| {
            v.upsert(row![100, "c-new", 990])?;
            Ok(())
        })
        .expect("edit commits");
    println!("edit committed, base delta: +{} rows", delta.inserted.len());

    // A remote multi-key transaction: routed per key by the server (a
    // cross-shard write runs two-phase commit inside the engine).
    let receipt = session
        .transact(|db| {
            let t = db.table_mut("orders")?;
            t.upsert(row![2, "c2", 1000])?;
            t.upsert(row![38, "c3", 1200])?;
            Ok(())
        })
        .expect("transaction commits");
    println!(
        "cross-key transaction committed at stamp {} (shards {:?})",
        receipt.stamp, receipt.shards
    );

    // Sixteen more clients hammer the counter concurrently, each on its
    // own socket.
    let workers: Vec<_> = (0..16)
        .map(|i| {
            thread::spawn(move || {
                let remote = RemoteEngine::connect(addr).expect("connect");
                let view = remote.view("big").expect("registered");
                for j in 0..4 {
                    // Sixteen writers race one window: give the
                    // optimistic loop a contention-sized retry budget.
                    view.edit_with_attempts(4096, |v| {
                        v.upsert(row![200 + i * 10 + j, "swarm", 500 + j])?;
                        Ok(())
                    })
                    .expect("edit commits");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker finishes");
    }

    let remote = RemoteEngine::connect(addr).expect("connect");
    let window = remote.read_view("big").expect("read");
    let m = remote.metrics().expect("metrics over the wire");
    println!(
        "final big-order window: {} rows; engine commits={} cross_shard={} pruned={}",
        window.len(),
        m.commits,
        m.shard.cross_shard_commits,
        m.view.shards_pruned
    );
    let stats = server.stats();
    println!(
        "server: {} connections accepted, {} requests served",
        stats.accepted, stats.requests
    );
    // 10 seed rows with total >= 300, the session's insert, the
    // transaction's new qualifying row, and the swarm's 64.
    assert_eq!(window.len(), 10 + 1 + 1 + 16 * 4);
    server.shutdown();
    println!("server drained and shut down");
}
