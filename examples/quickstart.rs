//! Quickstart: build a bidirectional transformation three ways, watch the
//! two views stay consistent, and check the paper's laws at runtime.
//!
//! Run with: `cargo run --example quickstart`

use esm::core::state::{BxSession, StateBx};
use esm::lawcheck::gen::int_range;
use esm::lawcheck::setbx::{check_roundtrip_ops, check_set_ops};
use esm::lens::combinators::fst;
use esm::lens::AsymBx;

fn main() {
    // ------------------------------------------------------------------
    // 1. A bx from scratch: hidden state = (quantity, unit price);
    //    view A = quantity, view B = total price. Setting either view
    //    updates the shared state — the two views are *entangled*.
    // ------------------------------------------------------------------
    let inventory: StateBx<(u32, u32), u32, u32> = StateBx::new(
        |s: &(u32, u32)| s.0,          // view_a: quantity
        |s| s.0 * s.1,                 // view_b: total price
        |s, qty| (qty, s.1),           // update_a
        |s, total| (total / s.1, s.1), // update_b: rescale quantity
    );

    let mut session = BxSession::new((4, 25), inventory);
    println!("quantity = {}, total = {}", session.a(), session.b());

    session.set_a(10);
    println!("after setA 10:  total = {}", session.b());

    let qty = session.put_b(500); // the paper's putBA: write B, read A
    println!("after putB 500: quantity = {qty}");
    println!("session log: {:?}\n", session.log());

    // ------------------------------------------------------------------
    // 2. The same idea from an asymmetric lens (Lemma 4): side A is a
    //    whole record, side B the focused field.
    // ------------------------------------------------------------------
    let bx = AsymBx::new(fst::<i64, String>());
    let mut person = BxSession::new((36, "ada".to_string()), bx);
    println!("source = {:?}, view = {}", person.a(), person.b());
    person.set_b(37);
    println!("after setB 37: source = {:?}\n", person.a());

    // ------------------------------------------------------------------
    // 3. Laws are checked, not assumed: run the (GS)/(SG)/(SS) suite and
    //    the Lemma 3 roundtrip on 500 random states.
    // ------------------------------------------------------------------
    let gen_price_qty = int_range(1..500).map(|q| (q as u32, 20u32));
    let gen_qty = int_range(1..500).map(|q| q as u32);
    let gen_total = int_range(1..500).map(|t| t as u32 * 20);

    let inventory2: StateBx<(u32, u32), u32, u32> = StateBx::new(
        |s: &(u32, u32)| s.0,
        |s| s.0 * s.1,
        |s, qty| (qty, s.1),
        |s, total| (total / s.1, s.1),
    );
    let report = check_set_ops(
        "inventory set-bx",
        &inventory2,
        &gen_price_qty,
        &gen_qty,
        &gen_total,
        500,
        42,
        true, // overwriteable: also check (SS)
    );
    println!("{report}");

    let roundtrip = check_roundtrip_ops(&inventory2, &gen_price_qty, &gen_qty, &gen_total, 500, 43);
    println!("{roundtrip}");

    assert!(report.is_ok() && roundtrip.is_ok());
    println!("all laws hold — this is a lawful entangled state monad");
}
