//! Composition of entangled state monads (§5, the paper's open problem):
//! a three-stage pipeline `records ⇔ celsius ⇔ fahrenheit`, with the
//! consistency invariant the composition construction requires.
//!
//! Run with: `cargo run --example composed_pipeline`

use esm::core::state::{compose, SbxOps, StateBx};
use esm::lens::combinators::fst;
use esm::lens::AsymBx;

fn main() {
    // Stage 1 (Lemma 4): a sensor record (celsius, label) viewed through
    // its temperature. Hidden state: the record.
    let record_stage = AsymBx::new(fst::<i64, String>());

    // Stage 2: celsius ⇔ "fauxenheit" (an exactly-invertible f = 2c + 32),
    // as a plain state-based bx over a celsius-valued state.
    let convert_stage: StateBx<i64, i64, i64> =
        StateBx::new(|s: &i64| *s, |s| s * 2 + 32, |_, c| c, |_, f| (f - 32) / 2);

    // Compose: A = full record, B = fahrenheit. Hidden state: the pair of
    // stage states, kept consistent on the shared celsius interface.
    let pipeline = compose::<_, _, i64>(record_stage, convert_stage);

    // Build a consistent initial state: record says 20C, stage 2 agrees.
    let mut state = ((20i64, "lab".to_string()), 20i64);
    assert!(pipeline.is_consistent(&state));

    println!("record = {:?}", pipeline.view_a(&state));
    println!("fahrenheit = {}", pipeline.view_b(&state));

    // Push a fahrenheit reading backwards through both stages.
    state = pipeline.update_b(state, 92);
    println!("\nafter setB 92F:");
    println!("  record = {:?}", pipeline.view_a(&state));
    println!("  consistent? {}", pipeline.is_consistent(&state));
    assert_eq!(pipeline.view_a(&state).0, 30); // 92F -> 30C
    assert_eq!(state.1, 30);

    // Push a record edit forwards.
    state = pipeline.update_a(state, (25, "lab".to_string()));
    println!("\nafter setA (25, lab):");
    println!("  fahrenheit = {}", pipeline.view_b(&state));
    assert_eq!(pipeline.view_b(&state), 82);

    // The §5 caveat, live: on a *consistent* state, re-writing the current
    // A view is a no-op (the (GS) law)...
    let refreshed = pipeline.update_a(state.clone(), pipeline.view_a(&state));
    assert_eq!(refreshed, state);

    // ...but from an artificially inconsistent state, the same operation
    // *repairs* the pipeline instead of doing nothing — which is exactly
    // why composition needs the restriction the paper predicts.
    let broken = ((25i64, "lab".to_string()), 999i64);
    assert!(!pipeline.is_consistent(&broken));
    let repaired = pipeline.update_a(broken.clone(), pipeline.view_a(&broken));
    assert_ne!(repaired, broken);
    assert!(pipeline.is_consistent(&repaired));
    println!("\ncomposition laws hold on the consistent subset ✓");
    println!("(and updates repair inconsistent states, as §5 anticipates)");
}
