//! A miniature bidirectional "database server": one base table, several
//! named editable views, change deltas per write, and undo — the
//! engineering story built on top of the entangled state monads.
//!
//! Run with: `cargo run --example bidirectional_db_server`

use esm::core::state::UndoSession;
use esm::lens::AsymBx;
use esm::relational::{RelationalSession, ViewDef};
use esm::store::{row, Operand, Predicate, Schema, Table, Value, ValueType};

fn main() {
    let base = Table::from_rows(
        Schema::build(
            &[
                ("sku", ValueType::Int),
                ("name", ValueType::Str),
                ("warehouse", ValueType::Str),
                ("stock", ValueType::Int),
                ("price_cents", ValueType::Int),
            ],
            &["sku"],
        )
        .expect("valid schema"),
        vec![
            row![1001, "widget", "east", 40, 250],
            row![1002, "gadget", "east", 0, 1000],
            row![1003, "sprocket", "west", 12, 75],
            row![1004, "gizmo", "west", 7, 450],
        ],
    )
    .expect("valid rows");

    // --- The "server": three named bidirectional views -----------------
    let mut server = RelationalSession::new(base);
    server
        .define_view(
            "east_stock",
            &ViewDef::base()
                .select(Predicate::eq(
                    Operand::col("warehouse"),
                    Operand::val("east"),
                ))
                .project(
                    &["sku", "name", "stock"],
                    &[
                        ("warehouse", Value::str("east")),
                        ("price_cents", Value::Int(500)),
                    ],
                ),
        )
        .expect("view compiles");
    server
        .define_view(
            "catalogue",
            &ViewDef::base()
                .project(
                    &["sku", "name", "price_cents"],
                    &[("warehouse", Value::str("east")), ("stock", Value::Int(0))],
                )
                .rename(&[("price_cents", "price")]),
        )
        .expect("view compiles");
    server
        .define_view(
            "out_of_stock",
            &ViewDef::base().select(Predicate::eq(Operand::col("stock"), Operand::val(0))),
        )
        .expect("view compiles");

    println!("views: {:?}\n", server.view_names());
    println!(
        "east_stock:\n{}\n",
        server.read_view("east_stock").expect("defined")
    );

    // --- Client 1 edits the east stock ---------------------------------
    let delta = server
        .edit_view("east_stock", |v| {
            v.upsert(row![1001, "widget", 35])?; // 5 sold
            v.upsert(row![1005, "doohickey", 60])?; // new SKU, defaults apply
            Ok(())
        })
        .expect("edit applies");
    println!("east_stock edit applied; base delta:\n{delta}");

    // --- Client 2 reads the catalogue and fixes a price ----------------
    let delta = server
        .edit_view("catalogue", |v| {
            v.upsert(row![1002, "gadget", 950])?; // price drop
            Ok(())
        })
        .expect("edit applies");
    println!("catalogue edit applied; base delta:\n{delta}");

    // Cross-view consistency: client 1's new SKU is already priced in
    // client 2's catalogue (with the view default), and the gadget is
    // still listed out of stock.
    let catalogue = server.read_view("catalogue").expect("defined");
    assert!(catalogue.contains(&row![1005, "doohickey", 500]));
    let oos = server.read_view("out_of_stock").expect("defined");
    assert_eq!(oos.len(), 1);
    println!("final base:\n{}\n", server.base());

    // --- Undo on top of any bx ------------------------------------------
    // The same machinery, wrapped in an undoable session over the
    // east_stock view treated as a single bx.
    let lens = ViewDef::base()
        .select(Predicate::eq(
            Operand::col("warehouse"),
            Operand::val("east"),
        ))
        .compile(server.base())
        .expect("compiles");
    let mut undoable = UndoSession::new(server.base().clone(), AsymBx::new(lens));
    let east: Table = undoable.b();
    let mut east2 = east.clone();
    east2
        .upsert(row![1001, "widget", "east", 0, 250])
        .expect("fits");
    undoable.set_b(east2);
    assert_eq!(
        undoable.state().get_by_key(&row![1001]).expect("exists")[3],
        Value::Int(0)
    );
    undoable.undo();
    assert_eq!(
        undoable.state().get_by_key(&row![1001]).expect("exists")[3],
        Value::Int(35)
    );
    println!("undo restored widget stock ✓");
}
