//! The paper's §4 "stateful bx", extended into an audit scenario: a bx
//! whose updates emit I/O events exactly when they change the state —
//! something no lens can express, but an entangled state monad can.
//!
//! Run with: `cargo run --example effectful_audit`

use esm::core::effectful::{Announce, EffSession, MonadicEff};
use esm::core::monadic::SetBx;
use esm::core::state::StateBx;
use esm::monad::{IoSimOf, MonadFamily, StateTOf};

fn main() {
    // ------------------------------------------------------------------
    // 1. The paper's example, verbatim: the trivial bx on an Integer
    //    state; sets print "Changed A"/"Changed B" iff the state changes.
    // ------------------------------------------------------------------
    let mut sess = EffSession::new(0i64, Announce::trivial_int());
    sess.set_a(0); // no-op: silent (the (GS) law with effects)
    sess.set_a(5); // prints
    sess.set_b(5); // no-op: silent
    sess.set_b(7); // prints
    println!("trace after four sets: {:?}", sess.printed());
    assert_eq!(sess.printed(), vec!["Changed A", "Changed B"]);

    // ------------------------------------------------------------------
    // 2. The same computation through the paper's carrier monad
    //    M A = Integer -> IO (A, Integer), i.e. StateT<i64, IoSim>.
    // ------------------------------------------------------------------
    type M = StateTOf<i64, IoSimOf>;
    let t = MonadicEff(Announce::trivial_int());
    let prog = M::seq(t.set_a(5), M::seq(t.set_a(5), t.get_b()));
    let out = prog.run(0);
    println!(
        "monadic run: value = {}, final state = {}, trace = {:?}",
        out.value.0,
        out.value.1,
        out.printed()
    );
    // Two identical sets print once: (SS) fails observably, exactly as
    // the paper notes (the example is a set-bx but not overwriteable).
    assert_eq!(out.printed(), vec!["Changed A"]);

    // ------------------------------------------------------------------
    // 3. "We should be able to add similar stateful behaviour to any
    //    (symmetric) lens or algebraic bx" (§4) — wrap a real bx.
    // ------------------------------------------------------------------
    let account: StateBx<(i64, i64), i64, i64> = StateBx::new(
        |s: &(i64, i64)| s.0 + s.1,    // A: total balance
        |s| s.1,                       // B: savings only
        |s, total| (total - s.1, s.1), // set total: adjust checking
        |s, savings| (s.0, savings),   // set savings directly
    );
    let audited = Announce::new(account, "balance changed", "savings changed");
    let mut bank = EffSession::new((100i64, 50i64), audited);

    println!("\nbalance = {}, savings = {}", bank.a(), bank.b());
    bank.set_b(50); // unchanged: no audit line
    bank.set_b(80); // audit line
    bank.set_a(200); // audit line
    println!("audit log: {:?}", bank.printed());
    assert_eq!(bank.printed(), vec!["savings changed", "balance changed"]);
    assert_eq!(bank.a(), 200);
    println!("effectful bx behaves per §4 ✓");
}
