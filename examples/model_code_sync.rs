//! Model-driven engineering: keep a UML-ish class model and a relational
//! schema consistent, in both directions, with each side's private data
//! surviving round-trips — a symmetric lens (Lemma 6) in action.
//!
//! Run with: `cargo run --example model_code_sync`

use esm::modelsync::scenarios::library_model;
use esm::modelsync::{class_rdb_bx, AttrType, Attribute, Class, SqlColumn};
use esm_core::state::PbxOps;

fn main() {
    let bx = class_rdb_bx();

    // Bootstrap: the modeller starts with a class model; the schema and
    // the complement (hidden state) are derived.
    let model = library_model();
    println!("initial class model:\n{model}");
    let mut state = bx.initial_from_a(model);
    println!("derived schema:\n{}", state.1);

    // The DBA tunes the database: a custom engine and a narrower column.
    // These facts are *schema-private* — the class model cannot express
    // them — so they live in the complement.
    let mut schema = state.1.clone();
    let mut book = schema.table("Book").expect("Book exists").clone();
    book.engine = "rocksdb".to_string();
    if let Some(col) = book.columns.iter_mut().find(|c| c.name == "title") {
        *col = SqlColumn::varchar("title", 120);
    }
    schema.upsert(book);
    let (next, refreshed_model) = bx.put_b(state, schema);
    state = next;
    println!("after DBA tuning, model is unchanged structurally:");
    println!("{refreshed_model}");

    // The modeller evolves the model: a new Loan class, and Member gains
    // an attribute.
    let mut model2 = state.0.clone();
    model2.upsert(Class::new(
        "Loan",
        vec![
            Attribute::new("id", AttrType::Int),
            Attribute::new("due", AttrType::Str),
        ],
    ));
    let mut member = model2.class("Member").expect("Member exists").clone();
    member
        .attributes
        .push(Attribute::new("email", AttrType::Str));
    model2.upsert(member);

    let (next, refreshed_schema) = bx.put_a(state, model2);
    state = next;
    println!("schema after model evolution:\n{refreshed_schema}");

    // The bidirectional guarantees, demonstrated:
    // 1. The DBA's engine choice survived the model edit.
    assert_eq!(
        refreshed_schema.table("Book").expect("Book").engine,
        "rocksdb"
    );
    // 2. ... and so did the tuned width.
    assert_eq!(
        refreshed_schema
            .table("Book")
            .expect("Book")
            .column("title")
            .expect("title")
            .width,
        Some(120)
    );
    // 3. The new table exists with defaults.
    assert_eq!(
        refreshed_schema.table("Loan").expect("Loan").engine,
        "innodb"
    );
    // 4. The abstract class (model-private) is still in the model.
    assert!(state.0.class("Media").expect("Media").is_abstract);
    // 5. The hidden state is a consistent triple (the paper's T).
    assert!(bx.invariant(&state));
    println!("all symmetric-lens guarantees verified ✓");
}
