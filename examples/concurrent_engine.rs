//! The engine subsystem end to end: one shared base table, four entangled
//! views, six writer threads committing interleaved transactions, then
//! recovery from the write-ahead log.
//!
//! Run with: `cargo run --release --example concurrent_engine`

use std::thread;

use esm::engine::EngineServer;
use esm::relational::ViewDef;
use esm::store::{row, Database, Operand, Predicate, Schema, Table, Value, ValueType};

fn main() {
    // The hidden shared state: an accounts table.
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("region", ValueType::Str),
            ("owner", ValueType::Str),
            ("balance", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let accounts = Table::from_rows(
        schema,
        vec![
            row![0, "hq", "treasury", 0],
            row![1, "emea", "ada", 100],
            row![2, "apac", "alan", 200],
        ],
    )
    .expect("valid rows");
    let mut db = Database::new();
    db.create_table("accounts", accounts).expect("fresh table");

    // The engine: lock-striped, shared by handle-clone, WAL-backed.
    let engine = EngineServer::new(db);

    // Entangled views: three regional selections plus a directory
    // projection that hides balances. Select predicates auto-index the
    // `region` column, so view reads seek instead of scanning.
    for region in ["emea", "apac", "amer"] {
        engine
            .define_view(
                region,
                "accounts",
                &ViewDef::base()
                    .select(Predicate::eq(Operand::col("region"), Operand::val(region))),
            )
            .expect("view compiles");
    }
    engine
        .define_view(
            "directory",
            "accounts",
            &ViewDef::base().project(
                &["id", "owner"],
                &[("region", Value::str("hq")), ("balance", Value::Int(0))],
            ),
        )
        .expect("view compiles");

    // Six clients: two per region, each committing 10 transactional edits
    // through its own entangled view of the shared table.
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let region = ["emea", "apac", "amer"][t % 3];
            let view = engine.view(region).expect("registered");
            thread::spawn(move || {
                for i in 0..10i64 {
                    let id = 100 + (t as i64) * 10 + i;
                    let owner = format!("client-{t}");
                    let delta = view
                        .edit(|v| {
                            v.upsert(row![id, region, owner.as_str(), 10 * i])?;
                            Ok(())
                        })
                        .expect("edit commits");
                    assert_eq!(delta.inserted.len(), 1);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no client panicked");
    }

    // Every write is visible through every entangled view.
    let table = engine.table("accounts").expect("exists");
    println!("base table now holds {} rows", table.len());
    let directory = engine.read_view("directory").expect("readable");
    println!(
        "directory view holds {} rows (balances hidden)",
        directory.len()
    );

    // The bx contract end to end: a projection edit preserves hidden data.
    let dir = engine.view("directory").expect("registered");
    dir.edit(|v| {
        v.upsert(row![1, "ada lovelace"])?;
        Ok(())
    })
    .expect("edit commits");
    let ada = engine
        .table("accounts")
        .expect("exists")
        .get_by_key(&row![1])
        .cloned();
    println!("after directory rename: {ada:?} (balance survived)");

    // Recovery: replay the WAL over the baseline and compare to live.
    let wal = engine.wal();
    println!("wal holds {} committed deltas", wal.len());
    let recovered = engine.recovered_database().expect("replays");
    assert_eq!(recovered, engine.snapshot());
    println!("recovery check: WAL replay == live state ✓");

    let m = engine.metrics();
    println!(
        "metrics: {} commits, {} conflicts, {} retries, {} view reads, {} rows written",
        m.commits, m.conflicts, m.retries, m.view_reads, m.rows_written
    );
}
