//! Prometheus-style text exposition for [`TelemetrySnapshot`]s.
//!
//! The renderer emits the classic `# TYPE` / `# HELP` framed families:
//! one `histogram` family per populated [`Phase`] (cumulative `_bucket`
//! lines with `le` labels from the log-bucket upper bounds, plus
//! `_sum`/`_count`), gauge-style quantile convenience lines, and the
//! slow-op log as comments at the tail (Prometheus has no string
//! sample type; scrapers that want slow ops use the structured
//! snapshot instead).

use crate::histogram::bucket_bounds;
use crate::telemetry::TelemetrySnapshot;

/// Render a snapshot as Prometheus-style exposition text under the
/// metric prefix `prefix` (e.g. `esm`).
pub fn render_prometheus(prefix: &str, snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for (phase, hist) in &snap.phases {
        let family = format!("{prefix}_{}_ns", phase.name());
        out.push_str(&format!(
            "# HELP {family} latency of the {} phase in nanoseconds\n",
            phase.name()
        ));
        out.push_str(&format!("# TYPE {family} histogram\n"));
        let mut cumulative = 0u64;
        for &(i, n) in &hist.bins {
            cumulative += n;
            let (_, hi) = bucket_bounds(i as usize);
            out.push_str(&format!("{family}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{family}_bucket{{le=\"+Inf\"}} {}\n", hist.count));
        out.push_str(&format!("{family}_sum {}\n", hist.sum));
        out.push_str(&format!("{family}_count {}\n", hist.count));
        for (q, v) in [
            ("0.5", hist.p50()),
            ("0.95", hist.p95()),
            ("0.99", hist.p99()),
        ] {
            out.push_str(&format!("{family}_quantile{{q=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{family}_max {}\n", hist.max));
    }
    for (name, value) in &snap.gauges {
        let family = format!("{prefix}_{name}");
        out.push_str(&format!("# TYPE {family} gauge\n"));
        out.push_str(&format!("{family} {value}\n"));
    }
    out.push_str(&format!(
        "# slow ops (threshold {} ns, {} captured)\n",
        snap.slow_threshold_ns,
        snap.slow_ops.len()
    ));
    for op in &snap.slow_ops {
        let breakdown: Vec<String> = op
            .phases
            .iter()
            .map(|(p, ns)| format!("{}={ns}", p.name()))
            .collect();
        out.push_str(&format!(
            "# slow: {} total={}ns {}\n",
            op.op,
            op.total_ns,
            breakdown.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Phase, Telemetry};

    #[test]
    fn exposition_has_families_buckets_and_slow_ops() {
        let tel = Telemetry::new();
        tel.record(Phase::CommitFsync, 100);
        tel.record(Phase::CommitFsync, 200_000);
        tel.set_slow_threshold_ns(1);
        tel.record_slow("transact", 250_000, &[(Phase::CommitFsync, 200_000)]);
        let text = render_prometheus("esm", &tel.snapshot());
        assert!(text.contains("# TYPE esm_commit_fsync_ns histogram"));
        assert!(text.contains("esm_commit_fsync_ns_count 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("esm_commit_fsync_ns_quantile{q=\"0.99\"}"));
        assert!(text.contains("# slow: transact total=250000ns commit_fsync=200000"));
        // Cumulative bucket counts never regress.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.contains("_bucket{le=\"") && !l.contains("+Inf"))
        {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last);
            last = n;
        }
    }

    #[test]
    fn gauges_render_as_gauge_families() {
        let mut snap = Telemetry::new().snapshot();
        snap.set_gauge("repl_lag_records", 7);
        let text = render_prometheus("esm", &snap);
        assert!(text.contains("# TYPE esm_repl_lag_records gauge"));
        assert!(text.contains("esm_repl_lag_records 7"));
    }

    #[test]
    fn empty_snapshot_renders_only_the_slow_header() {
        let text = render_prometheus("esm", &Telemetry::new().snapshot());
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("# slow ops"));
    }
}
