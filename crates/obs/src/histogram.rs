//! [`Histogram`]: a lock-free log-bucketed latency histogram.
//!
//! ## Bucket geometry and the error bound
//!
//! Values are nanoseconds (`u64`). Buckets are **log-linear**: each
//! power-of-two octave `[2^e, 2^(e+1))` is cut into [`SUB_BUCKETS`]
//! equal sub-buckets, and values below [`SUB_BUCKETS`] get one exact
//! bucket each. A bucket starting at `lo ≥ 2^e` is `2^(e-2)` wide, and
//! `2^(e-2) ≤ lo/4`, so **any value reported from its bucket's bounds
//! is within 25% relative error** — and values `0..4` are exact. That
//! bound is what [`HistogramSnapshot::quantile`] inherits: it returns
//! the upper bound of the bucket holding the rank-th sample (capped at
//! the observed max), so for a true quantile value `v` the estimate
//! `q` satisfies `v ≤ q ≤ v + v/4`. The property suite asserts exactly
//! this law against a sorted-oracle quantile.
//!
//! ## Concurrency
//!
//! Bins are relaxed [`AtomicU64`]s: recorders never lock, never wait,
//! and never tear — concurrent recording totals equal the sequential
//! oracle (also proptested). Snapshots are taken bin by bin and are
//! therefore not a single atomic cut across bins, which is fine for
//! monotone counters: a snapshot is some interleaving of concurrent
//! records, never an invented one.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket bits per octave: 2 bits → 4 sub-buckets → ≤25% relative
/// error per bucket.
pub const SUB_BITS: u32 = 2;
/// Sub-buckets per power-of-two octave (`1 << SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bins: one exact bin per value below [`SUB_BUCKETS`], then
/// [`SUB_BUCKETS`] bins per octave for exponents `SUB_BITS..=63`.
pub const NUM_BINS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// The bin index a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // e >= SUB_BITS
    let sub = ((v >> (e - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
    SUB_BUCKETS + (e - SUB_BITS) as usize * SUB_BUCKETS + sub
}

/// The inclusive `[lo, hi]` value range of bin `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        return (index as u64, index as u64);
    }
    let rel = index - SUB_BUCKETS;
    let e = SUB_BITS + (rel / SUB_BUCKETS) as u32;
    let sub = (rel % SUB_BUCKETS) as u64;
    let width = 1u64 << (e - SUB_BITS);
    let lo = (1u64 << e) + sub * width;
    (lo, lo + (width - 1))
}

/// A lock-free log-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, byte counts, …). Recording is wait-free: one relaxed
/// `fetch_add` per counter. See the module docs for the bucket
/// geometry and the ≤25% quantile error bound.
#[derive(Debug)]
pub struct Histogram {
    bins: [AtomicU64; NUM_BINS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.bins[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A mergeable point-in-time copy (sparse: only populated bins).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut bins = Vec::new();
        for (i, bin) in self.bins.iter().enumerate() {
            let n = bin.load(Ordering::Relaxed);
            if n > 0 {
                bins.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            bins,
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: mergeable (bin-wise
/// addition — associative and commutative), wire-serializable, and the
/// carrier of the quantile estimators.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping, like any u64 counter).
    pub sum: u64,
    /// Largest sample observed.
    pub max: u64,
    /// Populated bins only, sorted by bin index: `(index, count)`.
    pub bins: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// No samples?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold `other` into `self` bin-wise. Addition per bin, so merging
    /// is associative and commutative (proptested) — per-thread or
    /// per-process histograms aggregate without coordination.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged = std::collections::BTreeMap::new();
        for &(i, n) in self.bins.iter().chain(other.bins.iter()) {
            *merged.entry(i).or_insert(0u64) += n;
        }
        self.bins = merged.into_iter().collect();
    }

    /// Quantile estimate for `q ∈ [0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q·count)`-th smallest sample, capped at
    /// the observed max. For the true rank-th sample `v` the estimate
    /// `e` satisfies `v ≤ e ≤ v + v/4` (exact below
    /// [`SUB_BUCKETS`]) — the bucket-geometry error bound. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.bins {
            seen += n;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i as usize);
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_bounds(i), (v, v));
        }
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        for v in [
            0,
            1,
            3,
            4,
            5,
            7,
            8,
            100,
            1_000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
            // The error bound: bucket width ≤ lo/4 for lo ≥ 4.
            if lo >= SUB_BUCKETS as u64 {
                assert!(hi - lo <= lo / 4, "bucket too wide at {lo}");
            }
        }
    }

    #[test]
    fn bucket_indices_are_monotone_and_in_range() {
        let mut last = 0;
        let mut v = 0u64;
        loop {
            let i = bucket_index(v);
            assert!(i < NUM_BINS, "index {i} out of range at {v}");
            assert!(i >= last, "index regressed at {v}");
            last = i;
            if v > u64::MAX / 2 {
                break;
            }
            v = v * 2 + 1;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BINS - 1);
    }

    #[test]
    fn quantiles_respect_the_error_bound() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = (0..1000).map(|i| i * 37 + 5).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[rank - 1];
            let est = snap.quantile(q);
            assert!(est >= truth, "q={q}: {est} < true {truth}");
            assert!(est <= truth + truth / 4, "q={q}: {est} > 1.25 × {truth}");
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [0u64, 1, 7, 90, 1_000_000] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 7, 500, 90] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn empty_snapshot_is_calm() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0);
    }
}
