//! # esm-obs — zero-dependency observability primitives
//!
//! The telemetry layer the engines thread through their hot paths,
//! with nothing below it but `std`:
//!
//! * [`Histogram`] — a lock-free log-bucketed latency histogram
//!   (relaxed atomic bins, wait-free recording) whose
//!   [`HistogramSnapshot`]s merge associatively and estimate
//!   p50/p95/p99/max within a proven ≤25% relative error bound.
//! * [`Telemetry`] — a registry of one histogram per [`Phase`] (the
//!   closed set of instrumented commit/2PC/view/net stages) plus a
//!   bounded slow-op ring with per-phase breakdowns.
//! * [`Timer`]/[`Span`] — the recorder API: RAII scope timing or an
//!   explicit stopwatch feeding slow-op breakdowns.
//! * [`trace`] — **causal commit tracing**: per-request span trees
//!   ([`TraceId`] → [`SpanRecord`]s in a [`TraceSink`], carried by a
//!   thread-local context, filed into bounded [`TraceBuffer`] rings).
//!   Head sampling at a configurable 1-in-N rate plus tail capture of
//!   any trace crossing the slow-op threshold — so a slow-op entry's
//!   flat phase breakdown gains a full causally indented tree
//!   ([`render_trace`]). Untraced requests pay one thread-local read.
//! * [`render_prometheus`] — text exposition of a
//!   [`TelemetrySnapshot`] for scrapers and humans.
//!
//! The layering is recorder → registry → exposition: call sites hold
//! an `Arc<Telemetry>` and record nanoseconds (histograms) or open
//! [`trace::span`]s (traces); readers take [`TelemetrySnapshot`]s and
//! [`TraceReport`]s (cheap, non-draining, mergeable) and render or
//! ship them — the esm-net `STATS` and `TRACE` verbs serialize exactly
//! these types over the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expo;
mod histogram;
mod telemetry;
pub mod trace;

pub use expo::render_prometheus;
pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BINS};
pub use telemetry::{
    Phase, SlowOp, Span, Telemetry, TelemetryConfig, TelemetrySnapshot, Timer,
    DEFAULT_SLOW_THRESHOLD_NS, SLOW_OP_CAPACITY,
};
pub use trace::{
    render_trace, ActiveTrace, SpanGuard, SpanRecord, TraceBuffer, TraceId, TraceRecord,
    TraceReport, TraceRoot, TraceSink, TraceStore, DEFAULT_TRACE_SAMPLE_EVERY,
    TRACE_BUFFER_CAPACITY,
};
