//! # esm-obs — zero-dependency observability primitives
//!
//! The telemetry layer the engines thread through their hot paths,
//! with nothing below it but `std`:
//!
//! * [`Histogram`] — a lock-free log-bucketed latency histogram
//!   (relaxed atomic bins, wait-free recording) whose
//!   [`HistogramSnapshot`]s merge associatively and estimate
//!   p50/p95/p99/max within a proven ≤25% relative error bound.
//! * [`Telemetry`] — a registry of one histogram per [`Phase`] (the
//!   closed set of instrumented commit/2PC/view/net stages) plus a
//!   bounded slow-op ring with per-phase breakdowns.
//! * [`Timer`]/[`Span`] — the recorder API: RAII scope timing or an
//!   explicit stopwatch feeding slow-op breakdowns.
//! * [`render_prometheus`] — text exposition of a
//!   [`TelemetrySnapshot`] for scrapers and humans.
//!
//! The layering is recorder → registry → exposition: call sites hold
//! an `Arc<Telemetry>` and record nanoseconds; readers take
//! [`TelemetrySnapshot`]s (cheap, non-draining, mergeable) and render
//! or ship them — the esm-net `STATS` verb serializes exactly this
//! type over the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expo;
mod histogram;
mod telemetry;

pub use expo::render_prometheus;
pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BINS};
pub use telemetry::{
    Phase, SlowOp, Span, Telemetry, TelemetrySnapshot, Timer, DEFAULT_SLOW_THRESHOLD_NS,
    SLOW_OP_CAPACITY,
};
