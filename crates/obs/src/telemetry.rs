//! [`Telemetry`]: the per-engine phase-latency registry.
//!
//! One `Telemetry` owns a [`Histogram`] per [`Phase`] — the fixed set
//! of hot-path stages the engines and the network front end time — and
//! a bounded **slow-op ring**: operations whose total latency crossed a
//! configurable threshold, recorded with their per-phase breakdown so a
//! tail-latency spike names the phase that caused it. Recording is a
//! relaxed atomic add ([`Histogram::record`]); only slow-op capture
//! takes a (rare) lock.
//!
//! The recorder API is two shapes:
//!
//! * [`Telemetry::timer`] — an RAII guard recording its elapsed time
//!   into one phase on drop (early-exit friendly);
//! * [`Span`] — a bare stopwatch for call sites that want the elapsed
//!   nanoseconds for themselves (to feed a slow-op breakdown) and then
//!   record explicitly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::trace::{TraceId, TraceReport, TraceRoot, TraceStore};
use crate::{DEFAULT_TRACE_SAMPLE_EVERY, TRACE_BUFFER_CAPACITY};

/// One instrumented hot-path stage. The set is closed on purpose: a
/// fixed enum indexes a fixed histogram array (no hashing, no locking
/// on the record path) and gives the wire codec a strict name set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Commit: acquiring the snapshot (stripe/shard read locks + clone).
    CommitSnapshot,
    /// Commit: the first-committer-wins WAL overlap scan.
    CommitValidate,
    /// Commit: one framed record append into the durable segment
    /// (buffered write, fsync excluded).
    CommitWalAppend,
    /// Commit: the fsync making appended records durable.
    CommitFsync,
    /// Commit: stripe/shard write-lock hold time (validate through
    /// install).
    CommitLockHold,
    /// 2PC: one participant's prepare append.
    TwopcPrepare,
    /// 2PC: one participant's resolve append + apply.
    TwopcResolve,
    /// 2PC: one participant's fsync (both phases).
    TwopcParticipantFsync,
    /// View maintenance: collecting the committed deltas since the
    /// window cursor.
    ViewDrain,
    /// View maintenance: propagating and folding drained deltas into
    /// the window.
    ViewDeltaFold,
    /// View maintenance: a whole-base lens `get` (first read, topology
    /// change, or escape hatch).
    ViewRebuild,
    /// Net: decoding one CRC frame out of a connection's input buffer.
    NetFrameDecode,
    /// Net: a complete request frame waiting for a pool worker.
    NetQueueWait,
    /// Net: executing the request against the engine.
    NetHandler,
    /// Net: writing buffered response bytes back to the socket.
    NetResponseWrite,
    /// Subscriptions: draining a view's committed deltas past one
    /// subscriber cursor (the O(delta) fan-out collect).
    SubDrain,
    /// Subscriptions: encoding + writing one `PUSH` frame into a
    /// subscriber connection's bounded output buffer.
    NetPushWrite,
    /// Replication: one shipping pass's fetch side — manifest +
    /// mirroring newly appended segment/checkpoint bytes from the
    /// primary's WAL source.
    ReplShip,
    /// Replication: decoding newly complete records and applying their
    /// settled transactions to the replica's serving engine.
    ReplApply,
}

impl Phase {
    /// Every phase, in declaration (and wire) order.
    pub const ALL: [Phase; 19] = [
        Phase::CommitSnapshot,
        Phase::CommitValidate,
        Phase::CommitWalAppend,
        Phase::CommitFsync,
        Phase::CommitLockHold,
        Phase::TwopcPrepare,
        Phase::TwopcResolve,
        Phase::TwopcParticipantFsync,
        Phase::ViewDrain,
        Phase::ViewDeltaFold,
        Phase::ViewRebuild,
        Phase::NetFrameDecode,
        Phase::NetQueueWait,
        Phase::NetHandler,
        Phase::NetResponseWrite,
        Phase::SubDrain,
        Phase::NetPushWrite,
        Phase::ReplShip,
        Phase::ReplApply,
    ];

    /// The phase's stable wire/exposition name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::CommitSnapshot => "commit_snapshot_acquire",
            Phase::CommitValidate => "commit_fcw_validate",
            Phase::CommitWalAppend => "commit_wal_append",
            Phase::CommitFsync => "commit_fsync",
            Phase::CommitLockHold => "commit_lock_hold",
            Phase::TwopcPrepare => "twopc_prepare",
            Phase::TwopcResolve => "twopc_resolve",
            Phase::TwopcParticipantFsync => "twopc_participant_fsync",
            Phase::ViewDrain => "view_drain",
            Phase::ViewDeltaFold => "view_delta_fold",
            Phase::ViewRebuild => "view_rebuild",
            Phase::NetFrameDecode => "net_frame_decode",
            Phase::NetQueueWait => "net_queue_wait",
            Phase::NetHandler => "net_handler_execute",
            Phase::NetResponseWrite => "net_response_write",
            Phase::SubDrain => "sub_drain",
            Phase::NetPushWrite => "net_push_write",
            Phase::ReplShip => "repl_ship",
            Phase::ReplApply => "repl_apply",
        }
    }

    /// Parse a wire name back to its phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        Phase::ALL
            .iter()
            .position(|&p| p == self)
            .expect("every phase is in ALL")
    }

    /// Is this a phase the network front end records (as opposed to an
    /// engine-side commit/2PC/view phase)?
    pub fn is_net(self) -> bool {
        matches!(
            self,
            Phase::NetFrameDecode
                | Phase::NetQueueWait
                | Phase::NetHandler
                | Phase::NetResponseWrite
                | Phase::SubDrain
                | Phase::NetPushWrite
        )
    }
}

/// Default slow-op threshold: 10ms.
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 10_000_000;
/// Default slow-op ring capacity.
pub const SLOW_OP_CAPACITY: usize = 64;

/// Runtime tuning for a [`Telemetry`] registry. The defaults reproduce
/// the historical zero-config behavior exactly; embedders (and the
/// engine/net config knobs that carry this struct) override per
/// deployment instead of recompiling constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Ops at or above this total latency enter the slow-op ring and
    /// the slow-trace ring (`u64::MAX` disables capture).
    pub slow_threshold_ns: u64,
    /// Slow-op ring capacity (oldest entries fall off).
    pub slow_capacity: usize,
    /// Capacity of each trace ring (recent and slow).
    pub trace_capacity: usize,
    /// Head-sampling rate for traces: 1-in-N rooted requests trace
    /// (1 = every request, 0 = tracing off).
    pub trace_sample_every: u32,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            slow_threshold_ns: DEFAULT_SLOW_THRESHOLD_NS,
            slow_capacity: SLOW_OP_CAPACITY,
            trace_capacity: TRACE_BUFFER_CAPACITY,
            trace_sample_every: DEFAULT_TRACE_SAMPLE_EVERY,
        }
    }
}

impl TelemetryConfig {
    /// Set the slow-op (and slow-trace) threshold in nanoseconds.
    pub fn slow_threshold_ns(mut self, ns: u64) -> TelemetryConfig {
        self.slow_threshold_ns = ns;
        self
    }

    /// Set the slow-op ring capacity.
    pub fn slow_capacity(mut self, cap: usize) -> TelemetryConfig {
        self.slow_capacity = cap.max(1);
        self
    }

    /// Set the trace ring capacity.
    pub fn trace_capacity(mut self, cap: usize) -> TelemetryConfig {
        self.trace_capacity = cap.max(1);
        self
    }

    /// Set the trace head-sampling rate (1 = all, 0 = off).
    pub fn trace_sample_every(mut self, every: u32) -> TelemetryConfig {
        self.trace_sample_every = every;
        self
    }
}

/// One operation that crossed the slow threshold, with its locally
/// measured phase breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOp {
    /// What ran (e.g. `transact`, `read_view:hot`, `net:commit`).
    pub op: String,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
    /// Per-phase nanoseconds the op measured about itself (phases it
    /// did not touch are absent; the phases need not sum to the total).
    pub phases: Vec<(Phase, u64)>,
}

/// The phase-latency registry an engine (or network server) owns: one
/// lock-free [`Histogram`] per [`Phase`] plus the bounded slow-op ring.
/// Share it as an `Arc`; recording never blocks.
#[derive(Debug)]
pub struct Telemetry {
    phases: [Histogram; Phase::ALL.len()],
    slow_threshold_ns: AtomicU64,
    slow_capacity: usize,
    slow: Mutex<VecDeque<SlowOp>>,
    traces: Arc<TraceStore>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::with_config(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// A fresh registry with the default [`TelemetryConfig`].
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// A registry with explicit tuning (thresholds and ring/trace
    /// capacities; see [`TelemetryConfig`]). The `ESM_TRACE_SAMPLE_EVERY`
    /// environment variable, when set to an integer, overrides the
    /// configured head-sampling rate at construction (`1` = trace every
    /// request, `0` = off) — how CI runs the bench gates fully traced
    /// without a code change. Registries constructed before the
    /// variable changes are unaffected (it is read once, here).
    pub fn with_config(config: TelemetryConfig) -> Telemetry {
        let sample_every = std::env::var("ESM_TRACE_SAMPLE_EVERY")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(config.trace_sample_every);
        Telemetry {
            phases: std::array::from_fn(|_| Histogram::new()),
            slow_threshold_ns: AtomicU64::new(config.slow_threshold_ns),
            slow_capacity: config.slow_capacity.max(1),
            slow: Mutex::new(VecDeque::with_capacity(config.slow_capacity.max(1))),
            traces: Arc::new(TraceStore::new(
                config.trace_capacity,
                sample_every,
                config.slow_threshold_ns,
            )),
        }
    }

    /// The histogram behind one phase.
    pub fn phase(&self, phase: Phase) -> &Histogram {
        &self.phases[phase.index()]
    }

    /// Record one sample (nanoseconds) into a phase.
    pub fn record(&self, phase: Phase, ns: u64) {
        self.phase(phase).record(ns);
    }

    /// An RAII timer recording its elapsed time into `phase` on drop.
    pub fn timer(&self, phase: Phase) -> Timer<'_> {
        Timer {
            telemetry: self,
            phase,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Time `f`, record its duration into `phase`, return its result.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let span = Span::start();
        let out = f();
        self.record(phase, span.elapsed_ns());
        out
    }

    /// The current slow-op threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Set the slow-op threshold (nanoseconds). Ops at or above it are
    /// captured in the ring (and finished traces tail-captured);
    /// `u64::MAX` disables capture.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
        self.traces.set_slow_ns(ns);
    }

    /// Offer one finished operation to the slow-op ring: recorded iff
    /// `total_ns` reaches the threshold. The ring is bounded (see
    /// [`TelemetryConfig::slow_capacity`]) — the oldest entry falls off.
    pub fn record_slow(&self, op: impl Into<String>, total_ns: u64, phases: &[(Phase, u64)]) {
        if total_ns < self.slow_threshold_ns() {
            return;
        }
        let Ok(mut ring) = self.slow.lock() else {
            return;
        };
        if ring.len() == self.slow_capacity {
            ring.pop_front();
        }
        ring.push_back(SlowOp {
            op: op.into(),
            total_ns,
            phases: phases.to_vec(),
        });
    }

    // ------------------------------------------------------------------
    // Tracing.
    // ------------------------------------------------------------------

    /// The trace store (sampling state + rings) behind this registry.
    pub fn trace_store(&self) -> &Arc<TraceStore> {
        &self.traces
    }

    /// Set the trace head-sampling rate (1 = every rooted request,
    /// 0 = tracing off).
    pub fn set_trace_sample_every(&self, every: u32) {
        self.traces.set_sample_every(every);
    }

    /// Head-sample a new trace root named `name`: `Some` when the
    /// sampling counter elects this request **and** no trace is already
    /// active on the current thread (nested session ops join the outer
    /// trace instead of rooting their own). Mints a fresh [`TraceId`].
    pub fn start_trace(&self, name: &str) -> Option<TraceRoot> {
        if crate::trace::current().is_some() || !self.traces.should_sample() {
            return None;
        }
        Some(TraceRoot::open(
            Arc::clone(&self.traces),
            TraceId::mint(),
            name,
            Instant::now(),
            true,
        ))
    }

    /// Root a trace unconditionally under a caller-provided id — the
    /// server side of a wire-propagated context (the client already made
    /// the sampling decision by attaching one). `origin` may be in the
    /// past so spans measured before the root existed fit inside it.
    pub fn start_trace_with_id(
        &self,
        id: TraceId,
        name: impl Into<String>,
        origin: Instant,
    ) -> TraceRoot {
        TraceRoot::open(Arc::clone(&self.traces), id, name, origin, true)
    }

    /// A copy of both trace rings (recent head-sampled + slow
    /// tail-captured), oldest first.
    pub fn traces_report(&self) -> TraceReport {
        self.traces.report()
    }

    /// A copy of the slow-op ring, oldest first (non-draining — reads
    /// are idempotent, which the wire surface relies on).
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.slow
            .lock()
            .map(|ring| ring.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Drain the slow-op ring, returning everything captured so far.
    pub fn drain_slow_ops(&self) -> Vec<SlowOp> {
        self.slow
            .lock()
            .map(|mut ring| ring.drain(..).collect())
            .unwrap_or_default()
    }

    /// A point-in-time copy of everything: per-phase histogram
    /// snapshots (populated phases only, in [`Phase::ALL`] order), the
    /// slow threshold, and the slow-op ring.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut phases = Vec::new();
        for p in Phase::ALL {
            let snap = self.phase(p).snapshot();
            if !snap.is_empty() {
                phases.push((p, snap));
            }
        }
        TelemetrySnapshot {
            phases,
            slow_threshold_ns: self.slow_threshold_ns(),
            slow_ops: self.slow_ops(),
            gauges: Vec::new(),
        }
    }
}

/// Everything a [`Telemetry`] knows, frozen: what `Engine::telemetry()`
/// returns and what the `STATS` wire verb ships. Mergeable like the
/// histograms it carries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Populated phases only, in [`Phase::ALL`] order.
    pub phases: Vec<(Phase, HistogramSnapshot)>,
    /// The slow-op threshold at snapshot time (nanoseconds).
    pub slow_threshold_ns: u64,
    /// The slow-op ring at snapshot time, oldest first.
    pub slow_ops: Vec<SlowOp>,
    /// Named point-in-time values (replication lag, queue depths, …)
    /// that are levels rather than durations, so they don't fit the
    /// phase histograms. Empty for plain engines; replicas and fleet
    /// components inject theirs before exporting. Kept sorted by name.
    pub gauges: Vec<(String, u64)>,
}

impl TelemetrySnapshot {
    /// The snapshot of one phase, if it recorded anything.
    pub fn phase(&self, phase: Phase) -> Option<&HistogramSnapshot> {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, h)| h)
    }

    /// Samples recorded into `phase` (0 when absent).
    pub fn count(&self, phase: Phase) -> u64 {
        self.phase(phase).map_or(0, |h| h.count)
    }

    /// Fold `other` into `self`: histograms merge bin-wise, slow-op
    /// lists concatenate, the larger threshold wins (a merged view
    /// should not claim a stricter capture policy than either source
    /// enforced).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (p, theirs) in &other.phases {
            match self.phases.iter_mut().find(|(q, _)| q == p) {
                Some((_, ours)) => ours.merge(theirs),
                None => self.phases.push((*p, theirs.clone())),
            }
        }
        self.phases.sort_by_key(|(p, _)| p.index());
        self.slow_threshold_ns = self.slow_threshold_ns.max(other.slow_threshold_ns);
        self.slow_ops.extend(other.slow_ops.iter().cloned());
        for (name, value) in &other.gauges {
            self.set_gauge(name, *value);
        }
    }

    /// Insert or replace the gauge called `name`, keeping the list
    /// sorted. Last write wins: a merged view reports the most recently
    /// folded-in level, not a sum of levels.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.gauges[i].1 = value,
            Err(i) => self.gauges.insert(i, (name.to_string(), value)),
        }
    }

    /// The value of the gauge called `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// An RAII phase timer: records elapsed nanoseconds on drop. Obtain
/// via [`Telemetry::timer`].
#[derive(Debug)]
pub struct Timer<'a> {
    telemetry: &'a Telemetry,
    phase: Phase,
    start: Instant,
    armed: bool,
}

impl Timer<'_> {
    /// Record now and return the elapsed nanoseconds (instead of
    /// recording at scope end).
    pub fn stop(mut self) -> u64 {
        let ns = elapsed_ns(self.start);
        self.telemetry.record(self.phase, ns);
        self.armed = false;
        ns
    }

    /// Forget the measurement (nothing is recorded).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.telemetry.record(self.phase, elapsed_ns(self.start));
        }
    }
}

/// A bare stopwatch for call sites that need the elapsed nanoseconds
/// themselves (slow-op breakdowns) and record explicitly.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    start: Instant,
}

impl Span {
    /// Start the stopwatch.
    pub fn start() -> Span {
        Span {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`Span::start`].
    pub fn elapsed_ns(&self) -> u64 {
        elapsed_ns(self.start)
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }

    #[test]
    fn timer_and_span_record_into_the_right_phase() {
        let tel = Telemetry::new();
        {
            let _t = tel.timer(Phase::CommitFsync);
        }
        let span = Span::start();
        tel.record(Phase::CommitWalAppend, span.elapsed_ns());
        tel.time(Phase::CommitWalAppend, || ());
        let snap = tel.snapshot();
        assert_eq!(snap.count(Phase::CommitFsync), 1);
        assert_eq!(snap.count(Phase::CommitWalAppend), 2);
        assert_eq!(snap.count(Phase::CommitLockHold), 0);
    }

    #[test]
    fn timer_stop_and_cancel() {
        let tel = Telemetry::new();
        let ns = tel.timer(Phase::NetHandler).stop();
        tel.timer(Phase::NetHandler).cancel();
        assert_eq!(tel.snapshot().count(Phase::NetHandler), 1);
        assert!(ns < 1_000_000_000, "a stop() measurement is sane");
    }

    #[test]
    fn slow_ops_respect_threshold_and_capacity() {
        let tel = Telemetry::new();
        tel.set_slow_threshold_ns(1_000);
        tel.record_slow("fast", 999, &[]);
        assert!(tel.slow_ops().is_empty());
        for i in 0..(SLOW_OP_CAPACITY + 5) {
            tel.record_slow(
                format!("slow{i}"),
                1_000 + i as u64,
                &[(Phase::CommitFsync, 900)],
            );
        }
        let ops = tel.slow_ops();
        assert_eq!(ops.len(), SLOW_OP_CAPACITY);
        assert_eq!(ops[0].op, "slow5", "the oldest entries fell off");
        // Reads are idempotent; drain empties.
        assert_eq!(tel.slow_ops().len(), SLOW_OP_CAPACITY);
        assert_eq!(tel.drain_slow_ops().len(), SLOW_OP_CAPACITY);
        assert!(tel.slow_ops().is_empty());
    }

    #[test]
    fn snapshots_merge_phasewise() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        a.record(Phase::CommitFsync, 10);
        b.record(Phase::CommitFsync, 20);
        b.record(Phase::ViewDrain, 5);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(Phase::CommitFsync), 2);
        assert_eq!(merged.count(Phase::ViewDrain), 1);
        // Phase order stays canonical after the merge.
        let idxs: Vec<usize> = merged
            .phases
            .iter()
            .map(|(p, _)| Phase::ALL.iter().position(|q| q == p).unwrap())
            .collect();
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        assert_eq!(idxs, sorted);
    }
}
