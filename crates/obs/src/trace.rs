//! Causal commit tracing: per-request span trees from session to fsync.
//!
//! Where [`crate::Telemetry`]'s histograms aggregate *fleet-wide* phase
//! latency, a **trace** follows *one* request: every instrumented stage
//! it passed through becomes a [`SpanRecord`] parented under the stage
//! that caused it, so a slow commit reads as a causally indented tree —
//! "this commit stalled 5ms in the fsync its group-commit leader ran",
//! not a statistical inference over two histograms.
//!
//! The pieces:
//!
//! * [`TraceId`] — a 64-bit correlation key minted once per request (by
//!   `Session`, or by whoever roots the trace) and propagated across
//!   the wire, so client- and server-side trees share one identity.
//! * [`TraceSink`] — the per-trace collector: allocates span ids and
//!   buffers finished [`SpanRecord`]s until the root finishes.
//! * A **thread-local context stack** — instrumented call sites ask
//!   [`span`] for a child of whatever trace is active on the current
//!   thread; untraced requests pay one thread-local read and allocate
//!   nothing. Cross-thread fan-out (the 2PC coordinator's parallel
//!   participant fsyncs) captures [`current`] and opens children on the
//!   worker threads explicitly via [`ActiveTrace::child`].
//! * [`TraceBuffer`] — a bounded ring of finished [`TraceRecord`]s: an
//!   atomic cursor claims a slot, a per-slot mutex guards only that
//!   slot, so concurrent finishers never serialize behind one lock.
//! * **Sampling** — head sampling at a configurable 1-in-N rate roots
//!   traces cheaply under load, *plus* tail capture: any finished trace
//!   whose total crosses the slow-op threshold is copied into a
//!   separate slow ring, so the slow-op entries' flat phase breakdowns
//!   gain a full causal tree.
//!
//! [`render_trace`] prints the tree with durations for humans; the wire
//! layer ships [`TraceReport`]s with the same sparse discipline as the
//! telemetry snapshot.

use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default capacity of each trace ring (recent and slow).
pub const TRACE_BUFFER_CAPACITY: usize = 32;
/// Default head-sampling rate: one in this many rooted requests traces.
pub const DEFAULT_TRACE_SAMPLE_EVERY: u32 = 64;

/// A 64-bit trace correlation key. Minted once per request at the
/// outermost layer (the `Session`); both sides of a wire call record
/// their spans under the same id. Never zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mint a fresh, process-unique, unpredictable-across-restarts id:
    /// a monotone counter hashed through a per-process random seed (no
    /// RNG dependency; `RandomState` is seeded by the OS).
    pub fn mint() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        static SEED: OnceLock<RandomState> = OnceLock::new();
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut h = SEED.get_or_init(RandomState::new).build_hasher();
        h.write_u64(n);
        let id = h.finish();
        TraceId(if id == 0 { n | 1 } else { id })
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One finished span: a named stage of one traced request, positioned
/// causally (`parent`) and temporally (`start_ns` from the trace
/// origin, `duration_ns` of the stage itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within its trace (the root is always id 1).
    pub id: u32,
    /// Causal parent span id; 0 marks the root.
    pub parent: u32,
    /// Stage name (the phase taxonomy plus trace-only stages like
    /// `group_commit_wait`).
    pub name: String,
    /// Contextual tag: shard/participant index, view name,
    /// leader/follower role. Empty when none applies.
    pub tag: String,
    /// Start offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration of the stage, nanoseconds.
    pub duration_ns: u64,
    /// Payload bytes the stage moved (WAL append frame, wire frame);
    /// 0 when not meaningful.
    pub bytes: u64,
}

/// The per-trace collector: shared by every thread contributing spans
/// to one trace. Allocation is an atomic increment; finishing a span
/// takes the sink's (uncontended in the common case) buffer lock.
#[derive(Debug)]
pub struct TraceSink {
    id: TraceId,
    origin: Instant,
    next_span: AtomicU32,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceSink {
    /// A fresh sink whose time origin is now.
    pub fn new(id: TraceId) -> TraceSink {
        TraceSink::with_origin(id, Instant::now())
    }

    /// A sink whose origin is backdated — the net server measures frame
    /// decode and queue wait *before* it knows whether the request
    /// carries a trace, then roots the trace at the decode start so
    /// those spans fit inside it.
    pub fn with_origin(id: TraceId, origin: Instant) -> TraceSink {
        TraceSink {
            id,
            origin,
            next_span: AtomicU32::new(1),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// This trace's correlation key.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Nanoseconds since the trace origin.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Claim the next span id.
    fn alloc(&self) -> u32 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Record one fully-formed span (used for backdated net spans whose
    /// timing was measured before the sink existed). Returns its id.
    pub fn record_span(
        &self,
        name: &str,
        tag: &str,
        parent: u32,
        start_ns: u64,
        duration_ns: u64,
        bytes: u64,
    ) -> u32 {
        let id = self.alloc();
        self.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            tag: tag.to_string(),
            start_ns,
            duration_ns,
            bytes,
        });
        id
    }

    fn push(&self, record: SpanRecord) {
        if let Ok(mut spans) = self.spans.lock() {
            spans.push(record);
        }
    }

    fn take_spans(&self) -> Vec<SpanRecord> {
        self.spans
            .lock()
            .map(|mut s| std::mem::take(&mut *s))
            .unwrap_or_default()
    }
}

/// A handle to the trace active in some context: the sink plus the span
/// to parent new children under. Cheap to clone; send it into spawned
/// threads to keep their work causally attached.
#[derive(Debug, Clone)]
pub struct ActiveTrace {
    sink: Arc<TraceSink>,
    parent: u32,
}

impl ActiveTrace {
    /// The trace's correlation key.
    pub fn id(&self) -> TraceId {
        self.sink.id()
    }

    /// The span id new children are parented under.
    pub fn parent_span(&self) -> u32 {
        self.parent
    }

    /// Open a child span under this context *without* touching the
    /// thread-local stack — the cross-thread form (2PC participant work
    /// on scoped threads). The span finishes when the guard drops.
    pub fn child(&self, name: &'static str, tag: impl Into<String>) -> SpanGuard {
        SpanGuard::open(Arc::clone(&self.sink), self.parent, name, tag.into(), false)
    }

    /// A context parented under `span` instead of this context's parent
    /// (for umbrella spans whose children are opened manually).
    pub fn under(&self, span: u32) -> ActiveTrace {
        ActiveTrace {
            sink: Arc::clone(&self.sink),
            parent: span,
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<ActiveTrace>> = const { RefCell::new(Vec::new()) };
}

/// The trace context active on this thread, if any. Instrumented call
/// sites use this (via [`span`]) so untraced requests cost one
/// thread-local read and zero allocation.
pub fn current() -> Option<ActiveTrace> {
    STACK.with(|s| s.borrow().last().cloned())
}

/// Open a child span of the thread's active trace; `None` (free) when
/// no trace is active. Children opened while the guard lives nest
/// under it.
pub fn span(name: &'static str) -> Option<SpanGuard> {
    span_tagged(name, "")
}

/// [`span`] with a contextual tag (shard index, view name, role).
pub fn span_tagged(name: &'static str, tag: impl Into<String>) -> Option<SpanGuard> {
    let active = current()?;
    Some(SpanGuard::open(
        active.sink,
        active.parent,
        name,
        tag.into(),
        true,
    ))
}

/// Push a context onto this thread's stack; the returned guard pops it
/// on drop. Used by trace roots and by worker threads entering a
/// captured [`ActiveTrace`].
pub fn enter(active: ActiveTrace) -> EnterGuard {
    STACK.with(|s| s.borrow_mut().push(active));
    EnterGuard { _priv: () }
}

/// Pops the thread-local context pushed by [`enter`] on drop.
#[derive(Debug)]
pub struct EnterGuard {
    _priv: (),
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// An open span: records a [`SpanRecord`] into its trace when dropped
/// (or explicitly [`SpanGuard::finish`]ed). When opened via [`span`] it
/// also sits on the thread-local stack so nested spans parent under it.
#[derive(Debug)]
pub struct SpanGuard {
    sink: Arc<TraceSink>,
    id: u32,
    parent: u32,
    name: &'static str,
    tag: String,
    bytes: u64,
    start_ns: u64,
    start: Instant,
    on_stack: bool,
    done: bool,
}

impl SpanGuard {
    fn open(
        sink: Arc<TraceSink>,
        parent: u32,
        name: &'static str,
        tag: String,
        on_stack: bool,
    ) -> SpanGuard {
        let id = sink.alloc();
        let start_ns = sink.now_ns();
        if on_stack {
            STACK.with(|s| {
                s.borrow_mut().push(ActiveTrace {
                    sink: Arc::clone(&sink),
                    parent: id,
                })
            });
        }
        SpanGuard {
            sink,
            id,
            parent,
            name,
            tag,
            bytes: 0,
            start_ns,
            start: Instant::now(),
            on_stack,
            done: false,
        }
    }

    /// This span's id (children opened manually parent under it via
    /// [`ActiveTrace::under`]).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Attach a byte count (WAL frame length, wire frame length).
    pub fn set_bytes(&mut self, bytes: u64) {
        self.bytes = bytes;
    }

    /// Set the span's tag after the fact (e.g. leader/follower, known
    /// only once a group-commit wait resolves).
    pub fn set_tag(&mut self, tag: impl Into<String>) {
        self.tag = tag.into();
    }

    /// Finish now instead of at scope end.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if self.on_stack {
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack
                    .last()
                    .is_some_and(|t| t.parent == self.id && Arc::ptr_eq(&t.sink, &self.sink))
                {
                    stack.pop();
                }
            });
        }
        let duration_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.sink.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name.to_string(),
            tag: std::mem::take(&mut self.tag),
            start_ns: self.start_ns,
            duration_ns,
            bytes: self.bytes,
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// One finished trace: the root operation, its total duration, and
/// every span, sorted by start offset (the root span, id 1, first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The trace's correlation key.
    pub id: TraceId,
    /// The root operation name (e.g. `transact`, `net:commit`).
    pub root: String,
    /// Total wall-clock nanoseconds, root start to root finish.
    pub duration_ns: u64,
    /// Every recorded span, sorted by (`start_ns`, `id`).
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// The direct children of `parent`, in start order.
    pub fn children(&self, parent: u32) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == parent)
    }

    /// The span with id `id`, if present.
    pub fn span(&self, id: u32) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// The first span (in start order) with this name.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// A bounded ring of finished traces. An atomic cursor claims slots, a
/// per-slot mutex guards only that slot: concurrent finishers touch
/// disjoint locks.
#[derive(Debug)]
pub struct TraceBuffer {
    slots: Vec<Mutex<Option<TraceRecord>>>,
    cursor: AtomicU64,
}

impl TraceBuffer {
    /// A ring holding the newest `capacity` traces (min 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(1);
        TraceBuffer {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Insert one finished trace, evicting the oldest when full.
    pub fn push(&self, record: TraceRecord) {
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        if let Ok(mut s) = self.slots[slot].lock() {
            *s = Some(record);
        }
    }

    /// A copy of the buffered traces, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let len = self.slots.len();
        let cursor = self.cursor.load(Ordering::Relaxed) as usize;
        let mut out = Vec::new();
        for i in 0..len {
            let slot = (cursor + i) % len;
            if let Ok(s) = self.slots[slot].lock() {
                if let Some(rec) = s.as_ref() {
                    out.push(rec.clone());
                }
            }
        }
        out
    }
}

/// The trace half of a telemetry registry: sampling state plus the two
/// rings (recent head-sampled traces; slow tail-captured traces).
#[derive(Debug)]
pub struct TraceStore {
    sample_every: AtomicU32,
    counter: AtomicU64,
    slow_ns: AtomicU64,
    recent: TraceBuffer,
    slow: TraceBuffer,
}

impl TraceStore {
    /// A store with the given ring capacity, sampling rate (0 disables
    /// head sampling), and slow threshold for tail capture.
    pub fn new(capacity: usize, sample_every: u32, slow_ns: u64) -> TraceStore {
        TraceStore {
            sample_every: AtomicU32::new(sample_every),
            counter: AtomicU64::new(0),
            slow_ns: AtomicU64::new(slow_ns),
            recent: TraceBuffer::new(capacity),
            slow: TraceBuffer::new(capacity),
        }
    }

    /// The current head-sampling rate (1-in-N; 0 = off).
    pub fn sample_every(&self) -> u32 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Set the head-sampling rate (1 = every request, 0 = off).
    pub fn set_sample_every(&self, every: u32) {
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// Set the tail-capture threshold (kept in step with the slow-op
    /// threshold by [`crate::Telemetry::set_slow_threshold_ns`]).
    pub fn set_slow_ns(&self, ns: u64) {
        self.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// Head-sampling decision: does the next rooted request trace?
    pub fn should_sample(&self) -> bool {
        let every = self.sample_every();
        if every == 0 {
            return false;
        }
        self.counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every as u64)
    }

    /// File one finished trace: always into the recent ring, and into
    /// the slow ring too when its total crosses the threshold.
    pub fn offer(&self, record: TraceRecord) {
        if record.duration_ns >= self.slow_ns.load(Ordering::Relaxed) {
            self.slow.push(record.clone());
        }
        self.recent.push(record);
    }

    /// A report of both rings.
    pub fn report(&self) -> TraceReport {
        TraceReport {
            recent: self.recent.snapshot(),
            slow: self.slow.snapshot(),
        }
    }
}

/// An open trace root: the RAII owner of one trace. Spans open under it
/// (on this thread implicitly, on others via a captured
/// [`ActiveTrace`]); dropping it finalizes the [`TraceRecord`] and
/// files it in the store's rings.
#[derive(Debug)]
pub struct TraceRoot {
    sink: Arc<TraceSink>,
    store: Arc<TraceStore>,
    root_name: String,
    root_id: u32,
    entered: bool,
}

impl TraceRoot {
    /// Root a trace in `store` under `id`, named `name`, with its
    /// origin at `origin` (backdate to cover already-measured work).
    /// Pushes the context onto this thread's stack when `enter_stack`.
    pub fn open(
        store: Arc<TraceStore>,
        id: TraceId,
        name: impl Into<String>,
        origin: Instant,
        enter_stack: bool,
    ) -> TraceRoot {
        let sink = Arc::new(TraceSink::with_origin(id, origin));
        let root_id = sink.alloc();
        debug_assert_eq!(root_id, 1, "the root span is always id 1");
        if enter_stack {
            STACK.with(|s| {
                s.borrow_mut().push(ActiveTrace {
                    sink: Arc::clone(&sink),
                    parent: root_id,
                })
            });
        }
        TraceRoot {
            sink,
            store,
            root_name: name.into(),
            root_id,
            entered: enter_stack,
        }
    }

    /// The trace's correlation key.
    pub fn id(&self) -> TraceId {
        self.sink.id()
    }

    /// The context under the root span (for explicit cross-thread or
    /// off-stack children).
    pub fn active(&self) -> ActiveTrace {
        ActiveTrace {
            sink: Arc::clone(&self.sink),
            parent: self.root_id,
        }
    }

    /// Record a fully-measured span under the root (the net server's
    /// backdated decode/queue-wait spans). Returns its id.
    pub fn record_span(
        &self,
        name: &str,
        tag: &str,
        start_ns: u64,
        duration_ns: u64,
        bytes: u64,
    ) -> u32 {
        self.sink
            .record_span(name, tag, self.root_id, start_ns, duration_ns, bytes)
    }
}

impl Drop for TraceRoot {
    fn drop(&mut self) {
        if self.entered {
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack
                    .last()
                    .is_some_and(|t| t.parent == self.root_id && Arc::ptr_eq(&t.sink, &self.sink))
                {
                    stack.pop();
                }
            });
        }
        let duration_ns = self.sink.now_ns();
        let mut spans = self.sink.take_spans();
        spans.push(SpanRecord {
            id: self.root_id,
            parent: 0,
            name: self.root_name.clone(),
            tag: String::new(),
            start_ns: 0,
            duration_ns,
            bytes: 0,
        });
        spans.sort_by_key(|s| (s.start_ns, s.id));
        self.store.offer(TraceRecord {
            id: self.sink.id(),
            root: self.root_name.clone(),
            duration_ns,
            spans,
        });
    }
}

/// What `Engine::traces()` returns and the `TRACE` wire verb ships:
/// the recent and slow trace rings, mergeable across layers the way
/// telemetry snapshots are.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Head-sampled traces, oldest first.
    pub recent: Vec<TraceRecord>,
    /// Tail-captured traces (total ≥ slow threshold), oldest first.
    pub slow: Vec<TraceRecord>,
}

impl TraceReport {
    /// Fold `other`'s traces into `self` (concatenation; traces are
    /// self-contained trees, so a merged report is just more of them).
    pub fn merge(&mut self, other: &TraceReport) {
        self.recent.extend(other.recent.iter().cloned());
        self.slow.extend(other.slow.iter().cloned());
    }

    /// Every trace (slow after recent) rendered via [`render_trace`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        for rec in self.recent.iter().chain(self.slow.iter()) {
            out.push_str(&render_trace(rec));
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render one trace as a causally indented span tree with durations —
/// the human end of the export surface.
pub fn render_trace(record: &TraceRecord) -> String {
    let mut out = format!(
        "trace {} root={} total={}\n",
        record.id,
        record.root,
        fmt_ns(record.duration_ns)
    );
    fn walk(record: &TraceRecord, parent: u32, depth: usize, out: &mut String) {
        for span in record.children(parent) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&span.name);
            if !span.tag.is_empty() {
                out.push_str(&format!(" [{}]", span.tag));
            }
            out.push_str(&format!(
                " {} @+{}",
                fmt_ns(span.duration_ns),
                fmt_ns(span.start_ns)
            ));
            if span.bytes > 0 {
                out.push_str(&format!(" {}B", span.bytes));
            }
            out.push('\n');
            walk(record, span.id, depth + 1, out);
        }
    }
    walk(record, 0, 1, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Arc<TraceStore> {
        Arc::new(TraceStore::new(8, 1, u64::MAX))
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        assert_ne!(b.0, 0);
    }

    #[test]
    fn spans_nest_under_the_thread_local_root() {
        let store = store();
        {
            let _root = TraceRoot::open(
                Arc::clone(&store),
                TraceId::mint(),
                "op",
                Instant::now(),
                true,
            );
            {
                let _outer = span("outer").expect("trace is active");
                let _inner = span_tagged("inner", "t").expect("still active");
            }
            assert!(current().is_some());
        }
        assert!(current().is_none(), "root popped the stack");
        let report = store.report();
        assert_eq!(report.recent.len(), 1);
        let rec = &report.recent[0];
        assert_eq!(rec.root, "op");
        let root = rec.find("op").unwrap();
        let outer = rec.find("outer").unwrap();
        let inner = rec.find("inner").unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(outer.parent, root.id);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.tag, "t");
        assert!(rec.duration_ns >= outer.duration_ns);
        assert!(outer.duration_ns >= inner.duration_ns);
    }

    #[test]
    fn no_active_trace_means_no_spans() {
        assert!(current().is_none());
        assert!(span("free").is_none());
    }

    #[test]
    fn cross_thread_children_attach_causally() {
        let store = store();
        let root = TraceRoot::open(
            Arc::clone(&store),
            TraceId::mint(),
            "fanout",
            Instant::now(),
            false,
        );
        let active = root.active();
        std::thread::scope(|scope| {
            for i in 0..3 {
                let ctx = active.clone();
                scope.spawn(move || {
                    let mut child = ctx.child("worker", format!("{i}"));
                    child.set_bytes(10 + i);
                });
            }
        });
        drop(root);
        let rec = &store.report().recent[0];
        let root_span = rec.find("fanout").unwrap();
        let workers: Vec<_> = rec.children(root_span.id).collect();
        assert_eq!(workers.len(), 3);
        let mut tags: Vec<_> = workers.iter().map(|w| w.tag.clone()).collect();
        tags.sort();
        assert_eq!(tags, ["0", "1", "2"]);
        assert!(workers.iter().all(|w| w.bytes >= 10));
    }

    #[test]
    fn sampling_rate_gates_head_traces() {
        let store = TraceStore::new(8, 4, u64::MAX);
        let sampled = (0..16).filter(|_| store.should_sample()).count();
        assert_eq!(sampled, 4);
        store.set_sample_every(0);
        assert!(!store.should_sample());
        store.set_sample_every(1);
        assert!(store.should_sample());
    }

    #[test]
    fn slow_traces_tail_capture() {
        let store = Arc::new(TraceStore::new(4, 1, 0));
        drop(TraceRoot::open(
            Arc::clone(&store),
            TraceId::mint(),
            "slow",
            Instant::now(),
            false,
        ));
        let report = store.report();
        assert_eq!(report.recent.len(), 1);
        assert_eq!(report.slow.len(), 1, "threshold 0 tail-captures all");
        store.set_slow_ns(u64::MAX);
        drop(TraceRoot::open(
            Arc::clone(&store),
            TraceId::mint(),
            "fast",
            Instant::now(),
            false,
        ));
        let report = store.report();
        assert_eq!(report.recent.len(), 2);
        assert_eq!(report.slow.len(), 1, "fast traces skip the slow ring");
    }

    #[test]
    fn buffer_evicts_oldest() {
        let buf = TraceBuffer::new(2);
        for i in 0..5u64 {
            buf.push(TraceRecord {
                id: TraceId(i + 1),
                root: format!("op{i}"),
                duration_ns: i,
                spans: Vec::new(),
            });
        }
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 2);
        let roots: Vec<_> = snap.iter().map(|r| r.root.as_str()).collect();
        assert_eq!(roots, ["op3", "op4"], "oldest first, newest retained");
    }

    #[test]
    fn backdated_spans_sit_inside_the_root() {
        let store = store();
        let origin = Instant::now() - std::time::Duration::from_millis(5);
        let root = TraceRoot::open(
            Arc::clone(&store),
            TraceId::mint(),
            "net:req",
            origin,
            false,
        );
        root.record_span("net_frame_decode", "", 0, 1_000, 64);
        root.record_span("net_queue_wait", "", 1_000, 2_000, 0);
        drop(root);
        let rec = &store.report().recent[0];
        assert!(rec.duration_ns >= 5_000_000, "origin was backdated");
        let decode = rec.find("net_frame_decode").unwrap();
        assert_eq!(decode.bytes, 64);
        assert_eq!(decode.start_ns, 0);
        let wait = rec.find("net_queue_wait").unwrap();
        assert_eq!(wait.start_ns, 1_000);
        // Spans are sorted by start offset; the root (start 0, id 1)
        // comes first.
        assert_eq!(rec.spans[0].name, "net:req");
    }

    #[test]
    fn render_indents_causally() {
        let store = store();
        {
            let _root = TraceRoot::open(
                Arc::clone(&store),
                TraceId::mint(),
                "commit",
                Instant::now(),
                true,
            );
            let outer = span("twopc_participant").unwrap();
            drop(span("twopc_prepare"));
            drop(outer);
        }
        let rec = &store.report().recent[0];
        let text = render_trace(rec);
        assert!(text.contains("root=commit"));
        let lines: Vec<&str> = text.lines().collect();
        let part = lines
            .iter()
            .position(|l| l.contains("twopc_participant"))
            .unwrap();
        let prep = lines
            .iter()
            .position(|l| l.contains("twopc_prepare"))
            .unwrap();
        let indent = |s: &str| s.len() - s.trim_start().len();
        assert!(indent(lines[prep]) > indent(lines[part]));
    }

    #[test]
    fn merge_concatenates_reports() {
        let mut a = TraceReport::default();
        let b = TraceReport {
            recent: vec![TraceRecord {
                id: TraceId(9),
                root: "x".into(),
                duration_ns: 1,
                spans: Vec::new(),
            }],
            slow: Vec::new(),
        };
        a.merge(&b);
        assert_eq!(a.recent.len(), 1);
        assert!(a.render().contains("root=x"));
    }
}
