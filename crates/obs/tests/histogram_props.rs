//! Property tests for the histogram laws the rest of the stack leans
//! on: merge associativity, the quantile error bound against a sorted
//! oracle, and concurrent-recorder totals equalling a sequential
//! oracle.

use esm_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);

        // And both equal recording everything into one histogram.
        let mut all: Vec<u64> = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(left, snapshot_of(&all));
    }

    #[test]
    fn quantile_stays_within_the_bucket_error_bound(
        samples in proptest::collection::vec(0u64..10_000_000_000, 1..200),
        qs in proptest::collection::vec(0u64..=1000, 1..6),
    ) {
        let snap = snapshot_of(&samples);
        let mut samples = samples;
        samples.sort_unstable();
        for q in qs.into_iter().map(|milli| milli as f64 / 1000.0) {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[rank - 1];
            let est = snap.quantile(q);
            prop_assert!(est >= truth, "q={}: estimate {} below true {}", q, est, truth);
            prop_assert!(
                est <= truth + truth / 4,
                "q={}: estimate {} beyond 1.25 × {}",
                q, est, truth
            );
        }
    }

    #[test]
    fn concurrent_recording_equals_the_sequential_oracle(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000_000, 0..50),
            1..8,
        ),
    ) {
        let shared = Histogram::new();
        std::thread::scope(|scope| {
            let shared = &shared;
            for chunk in &chunks {
                scope.spawn(move || {
                    for &v in chunk {
                        shared.record(v);
                    }
                });
            }
        });
        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        prop_assert_eq!(shared.snapshot(), snapshot_of(&all));
    }
}
