//! Executable forms of the symmetric-lens laws (PutRL)/(PutLR) from §4.

use crate::slens::SymLens;

/// A symmetric-lens law violation with printable evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymLawViolation {
    /// The law that failed: `"(PutRL)"` or `"(PutLR)"`.
    pub law: &'static str,
    /// Human-readable counterexample.
    pub detail: String,
}

impl std::fmt::Display for SymLawViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "symmetric lens law {} violated: {}",
            self.law, self.detail
        )
    }
}

impl std::error::Error for SymLawViolation {}

/// (PutRL): `putr(a, c) = (b, c') ⇒ putl(b, c') = (a, c')`, over the
/// sample grid of `A` values and complements.
pub fn check_put_rl<A, B, C>(
    l: &SymLens<A, B, C>,
    samples_a: &[A],
    complements: &[C],
) -> Vec<SymLawViolation>
where
    A: Clone + PartialEq + std::fmt::Debug + 'static,
    B: Clone + std::fmt::Debug + 'static,
    C: Clone + PartialEq + std::fmt::Debug + 'static,
{
    let mut out = Vec::new();
    for a in samples_a {
        for c in complements {
            let (b, c2) = l.putr(a.clone(), c.clone());
            let (a2, c3) = l.putl(b.clone(), c2.clone());
            if a2 != *a || c3 != c2 {
                out.push(SymLawViolation {
                    law: "(PutRL)",
                    detail: format!(
                        "putr({a:?}, {c:?}) = ({b:?}, {c2:?}) but putl({b:?}, {c2:?}) = ({a2:?}, {c3:?})"
                    ),
                });
            }
        }
    }
    out
}

/// (PutLR): `putl(b, c) = (a, c') ⇒ putr(a, c') = (b, c')`.
pub fn check_put_lr<A, B, C>(
    l: &SymLens<A, B, C>,
    samples_b: &[B],
    complements: &[C],
) -> Vec<SymLawViolation>
where
    A: Clone + std::fmt::Debug + 'static,
    B: Clone + PartialEq + std::fmt::Debug + 'static,
    C: Clone + PartialEq + std::fmt::Debug + 'static,
{
    let mut out = Vec::new();
    for b in samples_b {
        for c in complements {
            let (a, c2) = l.putl(b.clone(), c.clone());
            let (b2, c3) = l.putr(a.clone(), c2.clone());
            if b2 != *b || c3 != c2 {
                out.push(SymLawViolation {
                    law: "(PutLR)",
                    detail: format!(
                        "putl({b:?}, {c:?}) = ({a:?}, {c2:?}) but putr({a:?}, {c2:?}) = ({b2:?}, {c3:?})"
                    ),
                });
            }
        }
    }
    out
}

/// Both symmetric-lens laws over the sample grid.
pub fn check_sym_lens<A, B, C>(
    l: &SymLens<A, B, C>,
    samples_a: &[A],
    samples_b: &[B],
    complements: &[C],
) -> Vec<SymLawViolation>
where
    A: Clone + PartialEq + std::fmt::Debug + 'static,
    B: Clone + PartialEq + std::fmt::Debug + 'static,
    C: Clone + PartialEq + std::fmt::Debug + 'static,
{
    let mut out = check_put_rl(l, samples_a, complements);
    out.extend(check_put_lr(l, samples_b, complements));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::identity;
    use crate::slens::SymLens;

    #[test]
    fn identity_satisfies_both_laws() {
        let l = identity::<i64>();
        assert!(check_sym_lens(&l, &[1, 2], &[3, 4], &[()]).is_empty());
    }

    #[test]
    fn complement_forgetting_lens_fails_put_rl() {
        // putr drops a's value instead of storing it: putl cannot restore.
        let l: SymLens<i64, i64, i64> = SymLens::new(
            |_a, c| (c, c), // b := old complement, complement unchanged
            |b, _c| (b, b), // a := b, complement := b
            0,
        );
        let v = check_put_rl(&l, &[5], &[1]);
        assert!(!v.is_empty());
        assert_eq!(v[0].law, "(PutRL)");
    }

    #[test]
    fn violations_display_the_law() {
        let l: SymLens<i64, i64, i64> = SymLens::new(|_a, c| (c, c), |b, _c| (b, b), 0);
        let v = check_put_rl(&l, &[5], &[1]);
        assert!(v[0].to_string().contains("(PutRL)"));
    }
}
