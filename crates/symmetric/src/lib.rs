//! Symmetric lenses (Hofmann, Pierce, Wagner) and their embedding as
//! entangled state monads (Lemma 6 of the paper).
//!
//! A symmetric lens `l : A ↔C B` is a pair of functions
//!
//! ```text
//! putr : A × C -> B × C        putl : B × C -> A × C
//! ```
//!
//! over a *complement* type `C` holding the private information of both
//! sides, satisfying
//!
//! ```text
//! (PutRL) putr(a, c) = (b, c')  ⇒  putl(b, c') = (a, c')
//! (PutLR) putl(b, c) = (a, c')  ⇒  putr(a, c')  = (b, c')
//! ```
//!
//! Lemma 6: the state monad over the *consistent triples*
//! `{(a, b, c) | putr(a, c) = (b, c) ∧ putl(b, c) = (a, c)}` carries a
//! put-bx with `putBA a' = \(a,b,c) -> let (b',c') = putr(a',c) in
//! (b', (a',b',c'))` — the complement "disappears into the hidden state of
//! the monad" (§5).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod combinators;
pub mod consistency;
pub mod laws;
pub mod slens;
pub mod span;
pub mod to_bx;

pub use slens::SymLens;
pub use span::from_span;
pub use to_bx::SymBxOps;
