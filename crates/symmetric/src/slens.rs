//! The [`SymLens`] type: symmetric lenses with explicit complements.

use std::rc::Rc;

/// A symmetric lens `A ↔C B` (Hofmann–Pierce–Wagner, §4 of the paper).
///
/// `putr(a, c)` pushes a new `A` value rightwards, producing the matching
/// `B` and an updated complement; `putl` is its mirror. `missing` is the
/// canonical initial complement (HPW's `missing ∈ C`), used to bootstrap a
/// consistent state from one side alone.
pub struct SymLens<A, B, C> {
    putr: Rc<dyn Fn(A, C) -> (B, C)>,
    putl: Rc<dyn Fn(B, C) -> (A, C)>,
    missing: C,
}

impl<A, B, C: Clone> Clone for SymLens<A, B, C> {
    fn clone(&self) -> Self {
        SymLens {
            putr: Rc::clone(&self.putr),
            putl: Rc::clone(&self.putl),
            missing: self.missing.clone(),
        }
    }
}

impl<A, B, C> std::fmt::Debug for SymLens<A, B, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SymLens(<putr/putl>)")
    }
}

impl<A: 'static, B: 'static, C: Clone + 'static> SymLens<A, B, C> {
    /// Build a symmetric lens from its two put functions and initial
    /// complement.
    pub fn new(
        putr: impl Fn(A, C) -> (B, C) + 'static,
        putl: impl Fn(B, C) -> (A, C) + 'static,
        missing: C,
    ) -> Self {
        SymLens {
            putr: Rc::new(putr),
            putl: Rc::new(putl),
            missing,
        }
    }

    /// Push an `A` value rightwards: `putr(a, c) = (b, c')`.
    pub fn putr(&self, a: A, c: C) -> (B, C) {
        (self.putr)(a, c)
    }

    /// Push a `B` value leftwards: `putl(b, c) = (a, c')`.
    pub fn putl(&self, b: B, c: C) -> (A, C) {
        (self.putl)(b, c)
    }

    /// The canonical initial complement.
    pub fn missing(&self) -> C {
        self.missing.clone()
    }

    /// Bootstrap a consistent triple from an `A` value and a complement.
    ///
    /// By (PutRL), `putr(a, c) = (b, c')` implies `putl(b, c') = (a, c')`,
    /// and by (PutLR) then `putr(a, c') = (b, c')` — so `(a, b, c')` is a
    /// consistent triple whenever the lens is lawful.
    pub fn settle_from_a(&self, a: A, c: C) -> (A, B, C)
    where
        A: Clone,
    {
        let (b, c2) = self.putr(a.clone(), c);
        (a, b, c2)
    }

    /// Bootstrap a consistent triple from a `B` value and a complement.
    pub fn settle_from_b(&self, b: B, c: C) -> (A, B, C)
    where
        B: Clone,
    {
        let (a, c2) = self.putl(b.clone(), c);
        (a, b, c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::from_asym;
    use esm_lens::combinators::fst;

    /// The complement for [`contact_lens`]: each side's private field.
    pub(crate) type ContactComplement = (Option<String>, Option<String>);

    /// A symmetric lens between (id, name) and (id, email) records sharing
    /// the id; the complement remembers each side's private field.
    pub(crate) fn contact_lens() -> SymLens<(u32, String), (u32, String), ContactComplement> {
        SymLens::new(
            |a: (u32, String), c: (Option<String>, Option<String>)| {
                let email =
                    c.1.clone()
                        .unwrap_or_else(|| "unknown@example.org".to_string());
                ((a.0, email.clone()), (Some(a.1), Some(email)))
            },
            |b: (u32, String), c: (Option<String>, Option<String>)| {
                let name = c.0.clone().unwrap_or_else(|| "unknown".to_string());
                ((b.0, name.clone()), (Some(name), Some(b.1)))
            },
            (None, None),
        )
    }

    #[test]
    fn putr_uses_complement_for_private_data() {
        let l = contact_lens();
        let (b, c) = l.putr((7, "ada".into()), l.missing());
        assert_eq!(b, (7, "unknown@example.org".to_string()));
        assert_eq!(c.0.as_deref(), Some("ada"));
    }

    #[test]
    fn roundtrip_preserves_both_sides_private_data() {
        let l = contact_lens();
        // Establish a consistent triple, then ping-pong updates.
        let (a, b, c) = l.settle_from_a((7, "ada".into()), l.missing());
        assert_eq!(a.1, "ada");
        // Change the email on the right; the name must survive.
        let (a2, c2) = l.putl((7, "ada@ox.ac.uk".into()), c);
        assert_eq!(a2.1, "ada");
        // Change the name on the left; the email must survive.
        let (b2, _c3) = l.putr((7, "lovelace".into()), c2);
        assert_eq!(b2.1, "ada@ox.ac.uk");
        let _ = b;
    }

    #[test]
    fn settle_from_b_mirrors_settle_from_a() {
        let l = contact_lens();
        let (a, b, _c) = l.settle_from_b((3, "x@y.z".into()), l.missing());
        assert_eq!(a.0, 3);
        assert_eq!(b.1, "x@y.z");
    }

    #[test]
    fn from_asym_keeps_source_in_complement() {
        let l = from_asym(fst::<i64, String>(), (0, "init".to_string()));
        let ((), ()) = ((), ());
        let (b, c) = l.putr((5, "hidden".to_string()), l.missing());
        assert_eq!(b, 5);
        assert_eq!(c, (5, "hidden".to_string()));
    }
}
