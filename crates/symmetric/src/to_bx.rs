//! Lemma 6: every symmetric lens is an entangled state monad — a put-bx
//! over the state monad on its consistent triples.

use esm_core::state::PbxOps;

use crate::consistency::is_consistent;
use crate::slens::SymLens;

/// The Lemma 6 construction: a put-bx between `A` and `B` whose hidden
/// state is a consistent triple `(a, b, c)`:
///
/// ```text
/// view_a (a,b,c)     = a
/// view_b (a,b,c)     = b
/// put_a  (a,b,c) a'  = let (b', c') = putr(a', c) in ((a',b',c'), b')
/// put_b  (a,b,c) b'  = let (a', c') = putl(b', c) in ((a',b',c'), a')
/// ```
///
/// The complement — HPW's distinguishing feature — disappears into the
/// hidden state (§5: "the notions of consistency … and complement
/// disappear into the hidden state of the monad").
#[derive(Debug, Clone)]
pub struct SymBxOps<A, B, C> {
    lens: SymLens<A, B, C>,
}

impl<A, B, C> SymBxOps<A, B, C>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
{
    /// Wrap a symmetric lens as a put-bx (Lemma 6).
    pub fn new(lens: SymLens<A, B, C>) -> Self {
        SymBxOps { lens }
    }

    /// The underlying symmetric lens.
    pub fn sym_lens(&self) -> &SymLens<A, B, C> {
        &self.lens
    }

    /// Bootstrap a hidden state from an `A` value (using the lens's
    /// `missing` complement).
    pub fn initial_from_a(&self, a: A) -> (A, B, C) {
        self.lens.settle_from_a(a, self.lens.missing())
    }

    /// Bootstrap a hidden state from a `B` value.
    pub fn initial_from_b(&self, b: B) -> (A, B, C) {
        self.lens.settle_from_b(b, self.lens.missing())
    }

    /// Check the state invariant (membership of the paper's `T`).
    pub fn invariant(&self, s: &(A, B, C)) -> bool
    where
        A: PartialEq,
        B: PartialEq,
        C: PartialEq,
    {
        is_consistent(&self.lens, &s.0, &s.1, &s.2)
    }
}

impl<A, B, C> PbxOps<(A, B, C), A, B> for SymBxOps<A, B, C>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
{
    fn view_a(&self, s: &(A, B, C)) -> A {
        s.0.clone()
    }

    fn view_b(&self, s: &(A, B, C)) -> B {
        s.1.clone()
    }

    fn put_a(&self, s: (A, B, C), a: A) -> ((A, B, C), B) {
        let (b, c) = self.lens.putr(a.clone(), s.2);
        ((a, b.clone(), c), b)
    }

    fn put_b(&self, s: (A, B, C), b: B) -> ((A, B, C), A) {
        let (a, c) = self.lens.putl(b.clone(), s.2);
        ((a.clone(), b, c), a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::from_asym;
    use esm_core::state::{PbxOps, PutToSet, SbxOps};
    use esm_lens::combinators::fst;

    fn bx() -> SymBxOps<(i64, String), i64, (i64, String)> {
        SymBxOps::new(from_asym(fst::<i64, String>(), (0, "init".to_string())))
    }

    #[test]
    fn puts_return_the_refreshed_other_side() {
        let t = bx();
        let s0 = t.initial_from_a((5, "keep".to_string()));
        assert!(t.invariant(&s0));
        let (s1, b) = t.put_a(s0, (9, "keep".to_string()));
        assert_eq!(b, 9);
        assert!(t.invariant(&s1));
        let (s2, a) = t.put_b(s1, 12);
        assert_eq!(a, (12, "keep".to_string()));
        assert!(t.invariant(&s2));
    }

    #[test]
    fn updates_preserve_the_consistency_invariant() {
        let t = bx();
        let mut s = t.initial_from_b(3);
        for i in 0..10 {
            let (s2, _) = t.put_a(s, (i, format!("n{i}")));
            s = s2;
            assert!(t.invariant(&s));
            let (s2, _) = t.put_b(s, i * 2);
            s = s2;
            assert!(t.invariant(&s));
        }
    }

    #[test]
    fn pp2set_of_lemma6_behaves_as_a_set_bx() {
        // Combining Lemma 6 with the §3.3 translation: a symmetric lens
        // used through the set-bx interface.
        let t = PutToSet(bx());
        let s0 = bx().initial_from_a((1, "x".to_string()));
        let s1 = t.update_b(s0, 42);
        assert_eq!(t.view_a(&s1).0, 42);
        assert_eq!(t.view_a(&s1).1, "x");
    }
}
