//! Combinators for symmetric lenses: identity, duals, composition,
//! tensor, and the two HPW embeddings of asymmetric lenses.

use esm_lens::Lens;

use crate::slens::SymLens;

/// The identity symmetric lens: both sides are the same type, the
/// complement is trivial.
pub fn identity<T: Clone + 'static>() -> SymLens<T, T, ()> {
    SymLens::new(|a, ()| (a, ()), |b, ()| (b, ()), ())
}

/// A symmetric lens from an isomorphism `A ≅ B` (trivial complement).
pub fn iso<A, B>(
    fwd: impl Fn(A) -> B + 'static,
    bwd: impl Fn(B) -> A + 'static,
) -> SymLens<A, B, ()>
where
    A: 'static,
    B: 'static,
{
    SymLens::new(move |a, ()| (fwd(a), ()), move |b, ()| (bwd(b), ()), ())
}

/// Swap the two sides of a symmetric lens — symmetry made literal, the
/// HPW `dual` operation.
pub fn dual<A, B, C>(l: SymLens<A, B, C>) -> SymLens<B, A, C>
where
    A: 'static,
    B: 'static,
    C: Clone + 'static,
{
    let lr = l.clone();
    let missing = l.missing();
    SymLens::new(move |b, c| l.putl(b, c), move |a, c| lr.putr(a, c), missing)
}

/// Embed an asymmetric lens `l : S ⇄ V` as a symmetric lens `S ↔ V` whose
/// complement is the source itself (HPW §4: every asymmetric lens is a
/// symmetric lens remembering the whole source).
///
/// `initial` seeds the complement for bootstrapping from the `V` side.
pub fn from_asym<S, V>(l: Lens<S, V>, initial: S) -> SymLens<S, V, S>
where
    S: Clone + 'static,
    V: Clone + 'static,
{
    let lg = l.clone();
    SymLens::new(
        move |s: S, _c: S| (lg.get(&s), s),
        move |v: V, c: S| {
            let s2 = l.put(c, v);
            (s2.clone(), s2)
        },
        initial,
    )
}

/// Compose two symmetric lenses sharing the middle type `B`; the composite
/// complement is the pair of complements (HPW composition).
pub fn compose<A, B, C1, X, C2>(
    l1: SymLens<A, B, C1>,
    l2: SymLens<B, X, C2>,
) -> SymLens<A, X, (C1, C2)>
where
    A: 'static,
    B: 'static,
    X: 'static,
    C1: Clone + 'static,
    C2: Clone + 'static,
{
    let l1l = l1.clone();
    let l2l = l2.clone();
    let missing = (l1.missing(), l2.missing());
    SymLens::new(
        move |a: A, (c1, c2): (C1, C2)| {
            let (b, c1b) = l1.putr(a, c1);
            let (x, c2b) = l2.putr(b, c2);
            (x, (c1b, c2b))
        },
        move |x: X, (c1, c2): (C1, C2)| {
            let (b, c2b) = l2l.putl(x, c2);
            let (a, c1b) = l1l.putl(b, c1);
            (a, (c1b, c2b))
        },
        missing,
    )
}

/// Tensor product: run two symmetric lenses side by side on pairs.
pub fn tensor<A1, B1, C1, A2, B2, C2>(
    l1: SymLens<A1, B1, C1>,
    l2: SymLens<A2, B2, C2>,
) -> SymLens<(A1, A2), (B1, B2), (C1, C2)>
where
    A1: 'static,
    B1: 'static,
    C1: Clone + 'static,
    A2: 'static,
    B2: 'static,
    C2: Clone + 'static,
{
    let l1l = l1.clone();
    let l2l = l2.clone();
    let missing = (l1.missing(), l2.missing());
    SymLens::new(
        move |(a1, a2): (A1, A2), (c1, c2): (C1, C2)| {
            let (b1, c1b) = l1.putr(a1, c1);
            let (b2, c2b) = l2.putr(a2, c2);
            ((b1, b2), (c1b, c2b))
        },
        move |(b1, b2): (B1, B2), (c1, c2): (C1, C2)| {
            let (a1, c1b) = l1l.putl(b1, c1);
            let (a2, c2b) = l2l.putl(b2, c2);
            ((a1, a2), (c1b, c2b))
        },
        missing,
    )
}

/// The terminal symmetric lens to `()`: discards `A`, remembering it in
/// the complement (HPW's `term` with a chosen default).
pub fn terminal<A: Clone + 'static>(default: A) -> SymLens<A, (), A> {
    SymLens::new(|a: A, _c: A| ((), a), |(), c: A| (c.clone(), c), default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::check_sym_lens;
    use esm_lens::combinators::fst;

    #[test]
    fn identity_roundtrips() {
        let l = identity::<i64>();
        let (b, c) = l.putr(5, ());
        assert_eq!(b, 5);
        let (a, _) = l.putl(9, c);
        assert_eq!(a, 9);
    }

    #[test]
    fn iso_translates_both_ways() {
        let l = iso(
            |a: i64| a.to_string(),
            |b: String| b.parse::<i64>().unwrap(),
        );
        assert_eq!(l.putr(42, ()).0, "42");
        assert_eq!(l.putl("-7".to_string(), ()).0, -7);
    }

    #[test]
    fn dual_swaps_put_directions() {
        let l = iso(|a: i64| a * 2, |b: i64| b / 2);
        let d = dual(l.clone());
        assert_eq!(d.putr(10, ()).0, l.putl(10, ()).0);
        assert_eq!(d.putl(3, ()).0, l.putr(3, ()).0);
    }

    #[test]
    fn from_asym_satisfies_sym_laws() {
        let l = from_asym(fst::<i64, String>(), (0, "init".to_string()));
        let samples_a: Vec<(i64, String)> = vec![(1, "x".into()), (2, "y".into())];
        let samples_b: Vec<i64> = vec![3, 4];
        let complements: Vec<(i64, String)> = vec![(0, "c".into()), (9, "d".into())];
        assert!(check_sym_lens(&l, &samples_a, &samples_b, &complements).is_empty());
    }

    #[test]
    fn compose_threads_complements() {
        // (i64, String) <-> i64 <-> String, via fst then to-string iso.
        let left = from_asym(fst::<i64, String>(), (0, "c".to_string()));
        let right = iso(
            |v: i64| v.to_string(),
            |s: String| s.parse::<i64>().unwrap(),
        );
        let both = compose(left, right);
        let ((), c0) = ((), both.missing());
        let (x, c) = both.putr((5, "keep".to_string()), c0);
        assert_eq!(x, "5");
        // Pushing back a new right value: the hidden String survives in C1.
        let (a, _c) = both.putl("12".to_string(), c);
        assert_eq!(a, (12, "keep".to_string()));
    }

    #[test]
    fn compose_satisfies_sym_laws() {
        let left = from_asym(fst::<i64, String>(), (0, "c".to_string()));
        let right = iso(
            |v: i64| v.to_string(),
            |s: String| s.parse::<i64>().unwrap(),
        );
        let both = compose(left, right);
        let samples_a: Vec<(i64, String)> = vec![(1, "x".into()), (2, "y".into())];
        let samples_b: Vec<String> = vec!["7".into(), "8".into()];
        let complements = vec![both.missing(), ((3, "z".to_string()), ())];
        assert!(check_sym_lens(&both, &samples_a, &samples_b, &complements).is_empty());
    }

    #[test]
    fn tensor_is_componentwise() {
        let l = tensor(identity::<i64>(), iso(|a: i64| -a, |b: i64| -b));
        let ((b1, b2), _) = l.putr((1, 2), ((), ()));
        assert_eq!((b1, b2), (1, -2));
    }

    #[test]
    fn tensor_satisfies_sym_laws() {
        let l = tensor(identity::<i64>(), iso(|a: i64| -a, |b: i64| -b));
        let sa = vec![(1i64, 2i64), (0, 0)];
        let sb = vec![(5i64, -6i64)];
        let cs = vec![((), ())];
        assert!(check_sym_lens(&l, &sa, &sb, &cs).is_empty());
    }

    #[test]
    fn terminal_remembers_the_discarded_value() {
        let l = terminal(0i64);
        let ((), c) = l.putr(42, l.missing());
        let (a, _) = l.putl((), c);
        assert_eq!(a, 42);
    }

    #[test]
    fn terminal_satisfies_sym_laws() {
        let l = terminal(0i64);
        let sa = vec![1i64, 2];
        let sb = vec![()];
        let cs = vec![0i64, 7];
        assert!(check_sym_lens(&l, &sa, &sb, &cs).is_empty());
    }
}
