//! Spans of asymmetric lenses as symmetric lenses.
//!
//! A *span* is a pair of lenses out of a common source,
//! `A ⇇ S ⇉ B`. It induces a symmetric lens `A ↔S B` whose complement is
//! the whole source: pushing an `A` writes it into the source through the
//! left lens and reads the new `B` through the right lens. This is the
//! standard bridge between the asymmetric and symmetric worlds (and
//! subsumes [`crate::combinators::from_asym`], which is the span
//! `S ⇇ S ⇉ V` with the identity on the left).
//!
//! Laws: if both lenses are well-behaved, the induced symmetric lens
//! satisfies (PutRL)/(PutLR) — checked in the tests, not assumed.

use esm_lens::Lens;

use crate::slens::SymLens;

/// The symmetric lens induced by a span of lenses `left : S ⇄ A`,
/// `right : S ⇄ B`, with `initial` seeding the complement.
pub fn from_span<S, A, B>(left: Lens<S, A>, right: Lens<S, B>, initial: S) -> SymLens<A, B, S>
where
    S: Clone + 'static,
    A: Clone + 'static,
    B: Clone + 'static,
{
    let l_put = left.clone();
    let r_get = right.clone();
    let r_put = right;
    let l_get = left;
    SymLens::new(
        move |a: A, c: S| {
            let s2 = l_put.put(c, a);
            (r_get.get(&s2), s2)
        },
        move |b: B, c: S| {
            let s2 = r_put.put(c, b);
            (l_get.get(&s2), s2)
        },
        initial,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::is_consistent;
    use crate::laws::check_sym_lens;
    use esm_lens::combinators::{fst, id, snd};

    type S = (i64, String);

    /// The span (fst, snd) over pairs: A sees the number, B the string.
    fn number_string() -> SymLens<i64, String, S> {
        from_span(
            fst::<i64, String>(),
            snd::<i64, String>(),
            (0, String::new()),
        )
    }

    #[test]
    fn pushing_one_side_preserves_the_other() {
        let l = number_string();
        let (a, b, c) = l.settle_from_a(7, (7, "seven".to_string()));
        assert_eq!((a, b.as_str()), (7, "seven"));
        // Update the number; the string side survives in the complement.
        let (b2, c2) = l.putr(42, c);
        assert_eq!(b2, "seven");
        // Update the string; the number survives.
        let (a2, _c3) = l.putl("answer".to_string(), c2);
        assert_eq!(a2, 42);
    }

    #[test]
    fn span_of_well_behaved_lenses_satisfies_sym_laws() {
        let l = number_string();
        let samples_a = [1i64, -5];
        let samples_b = ["x".to_string(), "yz".to_string()];
        let complements = [(0i64, "c0".to_string()), (9, "c9".to_string())];
        assert!(check_sym_lens(&l, &samples_a, &samples_b, &complements).is_empty());
    }

    #[test]
    fn settled_span_triples_are_consistent() {
        let l = number_string();
        let (a, b, c) = l.settle_from_b("hello".to_string(), l.missing());
        assert!(is_consistent(&l, &a, &b, &c));
    }

    #[test]
    fn identity_left_leg_recovers_from_asym() {
        // from_span(id, v_lens) behaves exactly like from_asym(v_lens).
        let via_span = from_span(id::<S>(), fst::<i64, String>(), (0, String::new()));
        let via_asym = crate::combinators::from_asym(fst::<i64, String>(), (0, String::new()));
        let c0: S = (3, "k".to_string());
        let (b1, c1) = via_span.putr((5, "k".to_string()), c0.clone());
        let (b2, c2) = via_asym.putr((5, "k".to_string()), c0);
        assert_eq!(b1, b2);
        assert_eq!(c1, c2);
        let (a1, _) = via_span.putl(9, c1);
        let (a2, _) = via_asym.putl(9, c2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn overlapping_span_legs_break_the_laws() {
        // A degenerate span whose legs overlap (both see the number):
        // pushing A then reading it back through B disagrees, so the
        // induced "symmetric lens" is unlawful — and the checker says so.
        let l = from_span(
            fst::<i64, i64>(),
            esm_lens::Lens::new(
                |s: &(i64, i64)| s.0 + s.1,
                |mut s, v| {
                    s.1 = v; // put does NOT maintain get's invariant
                    s
                },
            ),
            (0, 0),
        );
        let v = check_sym_lens(&l, &[1], &[2], &[(0i64, 0i64)]);
        assert!(!v.is_empty());
    }
}
