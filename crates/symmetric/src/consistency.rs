//! Consistent triples: the hidden state space of the Lemma 6 embedding.
//!
//! The paper defines `T ⊆ A × B × C` as the triples fixed by both puts:
//! `putr(a, c) = (b, c)` **and** `putl(b, c) = (a, c)`. This module decides
//! membership, settles arbitrary data into `T`, and (for small sample
//! spaces) enumerates the reachable consistent triples.

use crate::slens::SymLens;

/// Is `(a, b, c)` a consistent triple of `l`?
pub fn is_consistent<A, B, C>(l: &SymLens<A, B, C>, a: &A, b: &B, c: &C) -> bool
where
    A: Clone + PartialEq + 'static,
    B: Clone + PartialEq + 'static,
    C: Clone + PartialEq + 'static,
{
    let (b2, c2) = l.putr(a.clone(), c.clone());
    let (a2, c3) = l.putl(b.clone(), c.clone());
    b2 == *b && c2 == *c && a2 == *a && c3 == *c
}

/// Settle `(a, c)` into a consistent triple by one `putr`. Lawful lenses
/// make the result consistent (see [`SymLens::settle_from_a`]); this
/// function additionally *verifies* consistency, returning `None` when the
/// lens is broken.
pub fn settle_checked_from_a<A, B, C>(l: &SymLens<A, B, C>, a: A, c: C) -> Option<(A, B, C)>
where
    A: Clone + PartialEq + 'static,
    B: Clone + PartialEq + 'static,
    C: Clone + PartialEq + 'static,
{
    let (a, b, c) = l.settle_from_a(a, c);
    is_consistent(l, &a, &b, &c).then_some((a, b, c))
}

/// Enumerate the consistent triples *reachable* from the sampled `A`
/// values and complements (by settling each pair), deduplicated.
///
/// For lawful lenses this is a subset of the paper's `T`; it is the subset
/// a running system can actually reach from those starting points.
pub fn reachable_triples<A, B, C>(
    l: &SymLens<A, B, C>,
    samples_a: &[A],
    complements: &[C],
) -> Vec<(A, B, C)>
where
    A: Clone + PartialEq + 'static,
    B: Clone + PartialEq + 'static,
    C: Clone + PartialEq + 'static,
{
    let mut out: Vec<(A, B, C)> = Vec::new();
    for a in samples_a {
        for c in complements {
            let (a2, b2, c2) = l.settle_from_a(a.clone(), c.clone());
            if is_consistent(l, &a2, &b2, &c2)
                && !out.iter().any(|(x, y, z)| *x == a2 && *y == b2 && *z == c2)
            {
                out.push((a2, b2, c2));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::{from_asym, identity};
    use esm_lens::combinators::fst;

    #[test]
    fn settled_triples_are_consistent() {
        let l = from_asym(fst::<i64, String>(), (0, "i".to_string()));
        let t = settle_checked_from_a(&l, (5, "h".to_string()), l.missing());
        assert!(t.is_some());
        let (a, b, c) = t.unwrap();
        assert!(is_consistent(&l, &a, &b, &c));
        assert_eq!(b, 5);
    }

    #[test]
    fn inconsistent_triples_are_rejected() {
        let l = from_asym(fst::<i64, String>(), (0, "i".to_string()));
        // b != a.0: cannot be consistent.
        assert!(!is_consistent(
            &l,
            &(5, "h".to_string()),
            &7,
            &(5, "h".to_string())
        ));
    }

    #[test]
    fn reachable_triples_deduplicate() {
        let l = identity::<i64>();
        let triples = reachable_triples(&l, &[1, 2, 1], &[(), ()]);
        assert_eq!(triples.len(), 2);
        assert!(triples.iter().all(|(a, b, _)| a == b));
    }
}
