//! Property-based symmetric-lens law tests: combinators and the Lemma 6
//! embedding under generated data.

use proptest::prelude::*;

use esm_core::state::PbxOps;
use esm_lens::combinators::fst;
use esm_symmetric::combinators::{compose, dual, from_asym, identity, iso, tensor, terminal};
use esm_symmetric::consistency::is_consistent;
use esm_symmetric::from_span;
use esm_symmetric::laws::check_sym_lens;
use esm_symmetric::SymBxOps;

type Src = (i64, String);

fn arb_src() -> impl Strategy<Value = Src> {
    (any::<i64>(), "[a-z]{0,5}").prop_map(|(n, s)| (n, s))
}

proptest! {
    #[test]
    fn from_asym_laws(a in arb_src(), b in any::<i64>(), c in arb_src()) {
        let l = from_asym(fst::<i64, String>(), (0, String::new()));
        let v = check_sym_lens(&l, &[a], &[b], &[c]);
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dual_laws(a in any::<i64>(), b in arb_src(), c in arb_src()) {
        let l = dual(from_asym(fst::<i64, String>(), (0, String::new())));
        let v = check_sym_lens(&l, &[a], &[b], &[c]);
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn compose_laws(a in arb_src(), b in any::<i64>().prop_map(|n| n.to_string()), c1 in arb_src()) {
        // (i64, String) <-> i64 <-> String (canonical decimal rendering —
        // the iso leg is only bijective on canonical decimals, so the
        // B-side generator produces exactly those).
        let left = from_asym(fst::<i64, String>(), (0, String::new()));
        let right = iso(|v: i64| v.to_string(), |s: String| s.parse::<i64>().expect("digits"));
        let l = compose(left, right);
        let v = check_sym_lens(&l, &[a], &[b], &[(c1, ())]);
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn tensor_laws(a in (any::<i64>(), any::<i64>()), b in (any::<i64>(), any::<i64>())) {
        let l = tensor(identity::<i64>(), iso(|x: i64| x.wrapping_neg(), |y: i64| y.wrapping_neg()));
        let v = check_sym_lens(&l, &[a], &[b], &[((), ())]);
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn terminal_laws(a in any::<i64>(), c in any::<i64>()) {
        let l = terminal(0i64);
        let v = check_sym_lens(&l, &[a], &[()], &[c]);
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn span_laws(a in any::<i64>(), b in "[a-z]{0,5}", c in arb_src()) {
        let l = from_span(
            fst::<i64, String>(),
            esm_lens::combinators::snd::<i64, String>(),
            (0, String::new()),
        );
        let v = check_sym_lens(&l, &[a], &[b], &[c]);
        prop_assert!(v.is_empty(), "{v:?}");
    }
}

proptest! {
    // Lemma 6 dynamics: long random put sequences preserve the
    // consistent-triple invariant and always report the fresh view.
    #[test]
    fn lemma6_invariant_under_random_put_sequences(
        start in arb_src(),
        ops in proptest::collection::vec((any::<bool>(), any::<i64>(), "[a-z]{0,4}"), 0..12),
    ) {
        let t = SymBxOps::new(from_asym(fst::<i64, String>(), (0, String::new())));
        let mut state = t.initial_from_a(start);
        for (side_a, n, s) in ops {
            if side_a {
                let (next, reported_b) = t.put_a(state, (n, s));
                prop_assert_eq!(reported_b, n); // (PG2): fresh B reported
                state = next;
            } else {
                let (next, reported_a) = t.put_b(state, n);
                prop_assert_eq!(reported_a.0, n); // fresh A reported
                state = next;
            }
            prop_assert!(t.invariant(&state));
        }
    }

    // Dual is an involution at the put-bx level.
    #[test]
    fn dual_dual_is_original(a in arb_src(), c in arb_src()) {
        let l = from_asym(fst::<i64, String>(), (0, String::new()));
        let dd = dual(dual(l.clone()));
        let (b1, c1) = l.putr(a.clone(), c.clone());
        let (b2, c2) = dd.putr(a, c);
        prop_assert_eq!(b1, b2);
        prop_assert_eq!(c1, c2);
    }

    // settle_from_a always lands in the consistent-triple space.
    #[test]
    fn settling_always_reaches_consistency(a in arb_src(), c in arb_src()) {
        let l = from_asym(fst::<i64, String>(), (0, String::new()));
        let (a2, b2, c2) = l.settle_from_a(a, c);
        prop_assert!(is_consistent(&l, &a2, &b2, &c2));
    }
}
