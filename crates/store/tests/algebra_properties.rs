//! Property-based relational-algebra identities over generated tables —
//! the substrate-level guarantees the relational lenses rely on.

use proptest::prelude::*;

use esm_store::{Delta, Operand, Predicate, Row, Schema, Table, Value, ValueType};

fn schema() -> Schema {
    Schema::build(
        &[
            ("id", ValueType::Int),
            ("grp", ValueType::Int),
            ("name", ValueType::Str),
        ],
        &["id"],
    )
    .expect("valid")
}

fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    proptest::collection::btree_map(0i64..60, (0i64..4, "[a-z]{1,4}"), 0..max_rows).prop_map(|m| {
        let rows: Vec<Row> = m
            .into_iter()
            .map(|(id, (grp, name))| vec![Value::Int(id), Value::Int(grp), Value::Str(name)])
            .collect();
        Table::from_rows(schema(), rows).expect("keys distinct by construction")
    })
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    (0i64..4, 0i64..60, any::<bool>()).prop_map(|(g, id, conj)| {
        let p1 = Predicate::eq(Operand::col("grp"), Operand::val(g));
        let p2 = Predicate::lt(Operand::col("id"), Operand::val(id));
        if conj {
            p1.and(p2)
        } else {
            p1.or(p2)
        }
    })
}

proptest! {
    #[test]
    fn select_is_idempotent(t in arb_table(12), p in arb_pred()) {
        let once = t.select(&p).expect("valid predicate");
        prop_assert_eq!(once.select(&p).expect("valid predicate"), once);
    }

    #[test]
    fn select_commutes(t in arb_table(12), p in arb_pred(), q in arb_pred()) {
        let pq = t.select(&p).expect("ok").select(&q).expect("ok");
        let qp = t.select(&q).expect("ok").select(&p).expect("ok");
        prop_assert_eq!(pq, qp);
    }

    #[test]
    fn select_and_is_sequential_select(t in arb_table(12), p in arb_pred(), q in arb_pred()) {
        let conj = t.select(&p.clone().and(q.clone())).expect("ok");
        let seq = t.select(&p).expect("ok").select(&q).expect("ok");
        prop_assert_eq!(conj, seq);
    }

    #[test]
    fn select_partitions_the_table(t in arb_table(12), p in arb_pred()) {
        let yes = t.select(&p).expect("ok");
        let no = t.select(&p.clone().not()).expect("ok");
        prop_assert_eq!(yes.len() + no.len(), t.len());
        prop_assert_eq!(yes.union(&no).expect("disjoint"), t);
        prop_assert!(yes.intersect(&no).expect("same schema").is_empty());
    }

    #[test]
    fn select_distributes_over_difference(t in arb_table(12), u in arb_table(12), p in arb_pred()) {
        let lhs = t.difference(&u).expect("ok").select(&p).expect("ok");
        let rhs = t.select(&p).expect("ok").difference(&u.select(&p).expect("ok")).expect("ok");
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn project_after_select_commutes_with_key_retained(t in arb_table(12), p in arb_pred()) {
        // π then σ (on retained columns) = σ then π.
        let cols = vec!["id".to_string(), "grp".to_string()];
        let p_on_proj = p.clone();
        let lhs = t.select(&p).expect("ok").project(&cols).expect("ok");
        let rhs = t.project(&cols).expect("ok").select(&p_on_proj).expect("ok");
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn rename_roundtrips(t in arb_table(12)) {
        let there = t.rename(&[("name".to_string(), "label".to_string())]).expect("ok");
        let back = there.rename(&[("label".to_string(), "name".to_string())]).expect("ok");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn join_with_projection_of_self_is_self(t in arb_table(12)) {
        // t ⋈ π_{id,grp}(t) = t (the projection is a superkey join).
        let proj = t.project(&["id".to_string(), "grp".to_string()]).expect("ok");
        let joined = t.natural_join(&proj).expect("no conflicts");
        prop_assert_eq!(joined, t);
    }

    #[test]
    fn delta_apply_and_invert_round_trip(old in arb_table(12), new in arb_table(12)) {
        // between/apply: the delta transports old to new...
        let d = Delta::between(&old, &new).expect("same schema");
        prop_assert_eq!(d.apply(&old).expect("applies"), new.clone());
        // ...and the inverse transports new back to old.
        prop_assert_eq!(d.invert().apply(&new).expect("applies"), old.clone());
        // Deltas are minimal: equal tables give the empty delta.
        prop_assert!(Delta::between(&old, &old).expect("same schema").is_empty());
        // Double inversion is the identity.
        prop_assert_eq!(d.invert().invert(), d);
    }

    #[test]
    fn delta_between_agrees_with_per_row_containment(old in arb_table(12), new in arb_table(12)) {
        // The ordered-merge diff must match the naive per-row definition.
        let d = Delta::between(&old, &new).expect("same schema");
        let naive_ins: Vec<Row> = new.rows().filter(|r| !old.contains(r)).cloned().collect();
        let naive_del: Vec<Row> = old.rows().filter(|r| !new.contains(r)).cloned().collect();
        prop_assert_eq!(d.inserted, naive_ins);
        prop_assert_eq!(d.deleted, naive_del);
    }

    #[test]
    fn indexed_select_equals_full_scan(t in arb_table(16), p in arb_pred()) {
        let mut indexed = t.clone();
        indexed.create_index("grp").expect("column exists");
        indexed.create_index("id").expect("column exists");
        prop_assert_eq!(indexed.select(&p).expect("ok"), t.select(&p).expect("ok"));
    }

    #[test]
    fn union_is_associative(a in arb_table(8), b in arb_table(8), c in arb_table(8)) {
        // With identical schemas and key-compatible rows (keys carry the
        // whole identity here), union may still conflict on keys; build
        // conflict-free unions by slicing id ranges.
        let pa = Predicate::lt(Operand::col("id"), Operand::val(20));
        let pb = Predicate::ge(Operand::col("id"), Operand::val(20))
            .and(Predicate::lt(Operand::col("id"), Operand::val(40)));
        let pc = Predicate::ge(Operand::col("id"), Operand::val(40));
        let a = a.select(&pa).expect("ok");
        let b = b.select(&pb).expect("ok");
        let c = c.select(&pc).expect("ok");
        let lhs = a.union(&b).expect("ok").union(&c).expect("ok");
        let rhs = a.union(&b.union(&c).expect("ok")).expect("ok");
        prop_assert_eq!(lhs, rhs);
    }
}
