//! Secondary B-tree indexes on non-key columns.
//!
//! A [`ColumnIndex`] maps each distinct value of one column to the set of
//! primary keys of the rows holding that value, kept in a `BTreeMap` so
//! both point lookups (`=`) and ordered range probes (`<`, `<=`, `>`,
//! `>=`) are O(log n) seeks instead of full scans.
//!
//! Indexes live *inside* [`Table`](crate::Table) (see
//! [`Table::create_index`](crate::Table::create_index)) and are maintained
//! incrementally by every mutation, so they survive the clone-heavy lens
//! `put` paths: a cloned base table keeps its indexes, and the upserts and
//! deletes a lens put performs keep them current. Freshly derived tables
//! (`select`, `project`, …) start with no indexes.
//!
//! [`IndexProbe`] is the planning half: given a predicate and the set of
//! indexed columns, [`crate::Predicate::index_probe`] extracts the
//! narrowest single-column constraint an index can serve; the residual
//! predicate is still evaluated on each candidate row, so an index only
//! ever *narrows* a scan — it can never change a query's meaning.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use crate::row::Row;
use crate::value::Value;

/// A secondary index: one column's values mapped to the primary keys of
/// the rows holding them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnIndex {
    column: String,
    col_idx: usize,
    map: BTreeMap<Value, BTreeSet<Row>>,
    /// Total keys indexed (sum of all bucket sizes), maintained
    /// incrementally so selectivity estimates never rescan the map.
    entries: usize,
}

impl ColumnIndex {
    /// An empty index over column number `col_idx` named `column`.
    pub fn new(column: impl Into<String>, col_idx: usize) -> ColumnIndex {
        ColumnIndex {
            column: column.into(),
            col_idx,
            map: BTreeMap::new(),
            entries: 0,
        }
    }

    /// The indexed column's name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The indexed column's position in the schema.
    pub fn col_idx(&self) -> usize {
        self.col_idx
    }

    /// Number of distinct values currently indexed.
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }

    /// Total number of keys indexed (rows of the owning table).
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Record `row` (stored under primary key `key`).
    pub fn add(&mut self, key: &Row, row: &Row) {
        if self
            .map
            .entry(row[self.col_idx].clone())
            .or_default()
            .insert(key.clone())
        {
            self.entries += 1;
        }
    }

    /// Forget `row` (stored under primary key `key`).
    pub fn remove(&mut self, key: &Row, row: &Row) {
        if let Some(keys) = self.map.get_mut(&row[self.col_idx]) {
            if keys.remove(key) {
                self.entries -= 1;
            }
            if keys.is_empty() {
                self.map.remove(&row[self.col_idx]);
            }
        }
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries = 0;
    }

    /// Estimate how many keys `probe` would touch. Equality probes read
    /// their bucket size exactly (one map lookup); range probes count
    /// bucket sizes across the range, stopping early once the running
    /// total reaches `cap` — a candidate already worse than the best
    /// alternative needs no exact count. The cost-based planner
    /// ([`crate::Predicate::index_probe_with`]) feeds each candidate's
    /// estimate back in as the next one's cap.
    pub fn estimate(&self, probe: &IndexProbe, cap: usize) -> usize {
        match &probe.kind {
            ProbeKind::Eq(v) => self.map.get(v).map_or(0, BTreeSet::len),
            ProbeKind::Range { lo, hi } => {
                let mut n = 0;
                for (_, keys) in self.map.range::<Value, _>((as_bound(lo), as_bound(hi))) {
                    n += keys.len();
                    if n >= cap {
                        break;
                    }
                }
                n
            }
        }
    }

    /// Primary keys of rows whose indexed column equals `v`.
    pub fn keys_eq<'a>(&'a self, v: &Value) -> impl Iterator<Item = &'a Row> {
        self.map.get(v).into_iter().flatten()
    }

    /// Primary keys of rows whose indexed column lies in the given bounds,
    /// in column-value order.
    pub fn keys_range<'a>(
        &'a self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> impl Iterator<Item = &'a Row> {
        self.map
            .range::<Value, _>((lo, hi))
            .flat_map(|(_, keys)| keys)
    }

    /// Primary keys served by `probe`.
    pub fn keys_for<'a>(&'a self, probe: &IndexProbe) -> Box<dyn Iterator<Item = &'a Row> + 'a> {
        match &probe.kind {
            ProbeKind::Eq(v) => Box::new(self.keys_eq(v)),
            ProbeKind::Range { lo, hi } => Box::new(self.keys_range(as_bound(lo), as_bound(hi))),
        }
    }
}

fn as_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// A single-column constraint extracted from a predicate, servable by a
/// [`ColumnIndex`] on that column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexProbe {
    /// The constrained column.
    pub column: String,
    pub(crate) kind: ProbeKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ProbeKind {
    /// `column = v`.
    Eq(Value),
    /// `column` within the bounds.
    Range { lo: Bound<Value>, hi: Bound<Value> },
}

impl IndexProbe {
    /// An equality probe.
    pub fn eq(column: impl Into<String>, v: Value) -> IndexProbe {
        IndexProbe {
            column: column.into(),
            kind: ProbeKind::Eq(v),
        }
    }

    /// A range probe.
    pub fn range(column: impl Into<String>, lo: Bound<Value>, hi: Bound<Value>) -> IndexProbe {
        IndexProbe {
            column: column.into(),
            kind: ProbeKind::Range { lo, hi },
        }
    }

    /// Is this an equality probe (the narrowest kind)?
    pub fn is_eq(&self) -> bool {
        matches!(self.kind, ProbeKind::Eq(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn add_remove_and_lookup() {
        let mut idx = ColumnIndex::new("grp", 1);
        idx.add(&row![1], &row![1, 10]);
        idx.add(&row![2], &row![2, 10]);
        idx.add(&row![3], &row![3, 20]);
        assert_eq!(idx.distinct_values(), 2);
        let keys: Vec<_> = idx.keys_eq(&Value::Int(10)).cloned().collect();
        assert_eq!(keys, vec![row![1], row![2]]);

        idx.remove(&row![1], &row![1, 10]);
        let keys: Vec<_> = idx.keys_eq(&Value::Int(10)).cloned().collect();
        assert_eq!(keys, vec![row![2]]);
        idx.remove(&row![2], &row![2, 10]);
        assert_eq!(idx.distinct_values(), 1);
    }

    #[test]
    fn range_lookup_is_ordered_by_value() {
        let mut idx = ColumnIndex::new("age", 1);
        for (k, age) in [(1, 30), (2, 10), (3, 20), (4, 40)] {
            idx.add(&row![k], &row![k, age]);
        }
        let keys: Vec<_> = idx
            .keys_range(
                Bound::Included(&Value::Int(15)),
                Bound::Excluded(&Value::Int(40)),
            )
            .cloned()
            .collect();
        assert_eq!(keys, vec![row![3], row![1]]);
    }

    #[test]
    fn probes_drive_keys_for() {
        let mut idx = ColumnIndex::new("age", 1);
        for (k, age) in [(1, 30), (2, 10)] {
            idx.add(&row![k], &row![k, age]);
        }
        let eq = IndexProbe::eq("age", Value::Int(10));
        assert!(eq.is_eq());
        assert_eq!(idx.keys_for(&eq).count(), 1);
        let ge = IndexProbe::range("age", Bound::Included(Value::Int(0)), Bound::Unbounded);
        assert_eq!(idx.keys_for(&ge).count(), 2);
    }
}
