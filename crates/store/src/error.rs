//! Errors raised by the relational substrate.

use crate::value::ValueType;

/// Any failure of a store operation. All mutations validate their inputs
/// and return one of these instead of corrupting state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A row had the wrong number of cells for its schema.
    Arity {
        /// Columns expected by the schema.
        expected: usize,
        /// Cells actually supplied.
        got: usize,
    },
    /// A cell had the wrong type for its column.
    TypeMismatch {
        /// The offending column name.
        column: String,
        /// The column's declared type.
        expected: ValueType,
        /// The supplied value's type.
        got: ValueType,
    },
    /// A column name was not found in the schema.
    NoSuchColumn(String),
    /// A table name was not found in the database.
    NoSuchTable(String),
    /// Inserting a row whose key collides with a different existing row.
    KeyViolation(String),
    /// The schema itself is malformed (duplicate columns, key not a subset
    /// of columns, …).
    BadSchema(String),
    /// Two schemas that had to agree (union, difference, join keys) do not.
    SchemaMismatch(String),
    /// A predicate or query was ill-typed for the schema it ran against.
    BadQuery(String),
    /// Serialized text (a snapshot or a row/cell encoding) failed to
    /// parse.
    Codec(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Arity { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            StoreError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch in column {column}: expected {expected}, got {got}"
                )
            }
            StoreError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            StoreError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StoreError::KeyViolation(k) => write!(f, "key violation: {k}"),
            StoreError::BadSchema(m) => write!(f, "bad schema: {m}"),
            StoreError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StoreError::BadQuery(m) => write!(f, "bad query: {m}"),
            StoreError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_usefully() {
        let e = StoreError::TypeMismatch {
            column: "age".into(),
            expected: ValueType::Int,
            got: ValueType::Str,
        };
        assert_eq!(
            e.to_string(),
            "type mismatch in column age: expected int, got str"
        );
        assert_eq!(
            StoreError::NoSuchTable("t".into()).to_string(),
            "no such table: t"
        );
    }
}
