//! Rows: fixed-arity tuples of [`Value`]s.

use crate::value::Value;

/// A table row: one [`Value`] per schema column, in schema order.
pub type Row = Vec<Value>;

/// Build a row from anything convertible to values:
/// `row![1, "ada", true]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::Value::from($v)),*]
    };
}

/// Project a row onto the given column indices (caller guarantees bounds).
pub fn project_row(row: &Row, indices: &[usize]) -> Row {
    indices.iter().map(|&i| row[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_macro_converts_each_cell() {
        let r: Row = row![1, "ada", true];
        assert_eq!(r, vec![Value::Int(1), Value::str("ada"), Value::Bool(true)]);
    }

    #[test]
    fn projection_selects_and_reorders() {
        let r: Row = row![10, "x", false];
        assert_eq!(
            project_row(&r, &[2, 0]),
            vec![Value::Bool(false), Value::Int(10)]
        );
        assert_eq!(project_row(&r, &[]), Vec::<Value>::new());
    }
}
