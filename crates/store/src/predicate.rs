//! A small predicate language over rows, used by σ (select) and the
//! relational select lens.

use crate::error::StoreError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// A scalar operand: a column reference or a literal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// The value of a named column in the current row.
    Col(String),
    /// A literal.
    Const(Value),
}

impl Operand {
    /// A column reference.
    pub fn col(name: impl Into<String>) -> Operand {
        Operand::Col(name.into())
    }

    /// A literal value.
    pub fn val(v: impl Into<Value>) -> Operand {
        Operand::Const(v.into())
    }

    fn eval<'a>(&'a self, schema: &Schema, row: &'a Row) -> Result<&'a Value, StoreError> {
        match self {
            Operand::Col(name) => Ok(&row[schema.index_of(name)?]),
            Operand::Const(v) => Ok(v),
        }
    }

    fn validate(&self, schema: &Schema) -> Result<(), StoreError> {
        if let Operand::Col(name) = self {
            schema.index_of(name)?;
        }
        Ok(())
    }
}

/// The comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A boolean predicate over one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Compare two operands.
    Compare(Cmp, Operand, Operand),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `lhs == rhs`.
    pub fn eq(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Eq, lhs, rhs)
    }
    /// `lhs != rhs`.
    pub fn ne(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Ne, lhs, rhs)
    }
    /// `lhs < rhs`.
    pub fn lt(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Lt, lhs, rhs)
    }
    /// `lhs <= rhs`.
    pub fn le(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Le, lhs, rhs)
    }
    /// `lhs > rhs`.
    pub fn gt(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Gt, lhs, rhs)
    }
    /// `lhs >= rhs`.
    pub fn ge(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Ge, lhs, rhs)
    }
    /// Conjunction.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }
    /// Disjunction.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }
    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Check that every referenced column exists and compared operands
    /// could have comparable types (column/column comparisons are checked
    /// at evaluation time for mixed-type rows).
    pub fn validate(&self, schema: &Schema) -> Result<(), StoreError> {
        match self {
            Predicate::True | Predicate::False => Ok(()),
            Predicate::Compare(_, l, r) => {
                l.validate(schema)?;
                r.validate(schema)
            }
            Predicate::And(l, r) | Predicate::Or(l, r) => {
                l.validate(schema)?;
                r.validate(schema)
            }
            Predicate::Not(p) => p.validate(schema),
        }
    }

    /// Extract the narrowest single-column constraint a secondary index on
    /// one of `indexed` columns could serve.
    ///
    /// Walks the top-level conjunction (`And` spine) looking for leaves of
    /// the form `col ⋈ literal` (or `literal ⋈ col`, flipped). Equality
    /// probes are preferred over range probes since they touch the fewest
    /// index entries. `Or`/`Not` sub-trees are never descended into — a
    /// probe must be implied by the whole predicate — and the caller still
    /// evaluates the full predicate on every candidate row, so the probe
    /// only narrows the scan.
    pub fn index_probe(&self, indexed: &[&str]) -> Option<crate::index::IndexProbe> {
        use crate::index::IndexProbe;
        use std::ops::Bound;

        fn leaf_probe(p: &Predicate, indexed: &[&str]) -> Option<IndexProbe> {
            let Predicate::Compare(op, l, r) = p else {
                return None;
            };
            let (op, col, v) = match (l, r) {
                (Operand::Col(c), Operand::Const(v)) => (*op, c, v),
                (Operand::Const(v), Operand::Col(c)) => {
                    // Flip `literal ⋈ col` into `col ⋈' literal`.
                    let flipped = match op {
                        Cmp::Lt => Cmp::Gt,
                        Cmp::Le => Cmp::Ge,
                        Cmp::Gt => Cmp::Lt,
                        Cmp::Ge => Cmp::Le,
                        other => *other,
                    };
                    (flipped, c, v)
                }
                _ => return None,
            };
            if !indexed.contains(&col.as_str()) {
                return None;
            }
            match op {
                Cmp::Eq => Some(IndexProbe::eq(col, v.clone())),
                Cmp::Lt => Some(IndexProbe::range(
                    col,
                    Bound::Unbounded,
                    Bound::Excluded(v.clone()),
                )),
                Cmp::Le => Some(IndexProbe::range(
                    col,
                    Bound::Unbounded,
                    Bound::Included(v.clone()),
                )),
                Cmp::Gt => Some(IndexProbe::range(
                    col,
                    Bound::Excluded(v.clone()),
                    Bound::Unbounded,
                )),
                Cmp::Ge => Some(IndexProbe::range(
                    col,
                    Bound::Included(v.clone()),
                    Bound::Unbounded,
                )),
                Cmp::Ne => None,
            }
        }

        fn walk(p: &Predicate, indexed: &[&str], best: &mut Option<crate::index::IndexProbe>) {
            match p {
                Predicate::And(l, r) => {
                    walk(l, indexed, best);
                    walk(r, indexed, best);
                }
                leaf => {
                    if let Some(probe) = leaf_probe(leaf, indexed) {
                        let better = match best {
                            None => true,
                            Some(b) => probe.is_eq() && !b.is_eq(),
                        };
                        if better {
                            *best = Some(probe);
                        }
                    }
                }
            }
        }

        let mut best = None;
        walk(self, indexed, &mut best);
        best
    }

    /// The columns an index could serve for this predicate: every column
    /// that [`Predicate::index_probe`] would consider, regardless of what
    /// is currently indexed. Sessions use this to decide which secondary
    /// indexes to create; keeping it next to `index_probe` keeps the two
    /// walks in agreement.
    pub fn probeable_columns(&self) -> Vec<String> {
        fn walk(p: &Predicate, out: &mut Vec<String>) {
            match p {
                Predicate::And(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                leaf => {
                    // A column is probe-able iff `index_probe` would
                    // accept the leaf with that column indexed.
                    if let Predicate::Compare(_, l, r) = leaf {
                        let col = match (l, r) {
                            (Operand::Col(c), Operand::Const(_))
                            | (Operand::Const(_), Operand::Col(c)) => c,
                            _ => return,
                        };
                        if leaf.index_probe(&[col.as_str()]).is_some() && !out.contains(col) {
                            out.push(col.clone());
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Evaluate against one row.
    ///
    /// Comparing values of different runtime types is a
    /// [`StoreError::BadQuery`] (not a silent `false`), so type errors
    /// surface in tests.
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<bool, StoreError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::Compare(op, l, r) => {
                let lv = l.eval(schema, row)?;
                let rv = r.eval(schema, row)?;
                if lv.value_type() != rv.value_type() {
                    return Err(StoreError::BadQuery(format!(
                        "cannot compare {} with {}",
                        lv.value_type(),
                        rv.value_type()
                    )));
                }
                Ok(match op {
                    Cmp::Eq => lv == rv,
                    Cmp::Ne => lv != rv,
                    Cmp::Lt => lv < rv,
                    Cmp::Le => lv <= rv,
                    Cmp::Gt => lv > rv,
                    Cmp::Ge => lv >= rv,
                })
            }
            Predicate::And(l, r) => Ok(l.eval(schema, row)? && r.eval(schema, row)?),
            Predicate::Or(l, r) => Ok(l.eval(schema, row)? || r.eval(schema, row)?),
            Predicate::Not(p) => Ok(!p.eval(schema, row)?),
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::True => f.write_str("true"),
            Predicate::False => f.write_str("false"),
            Predicate::Compare(op, l, r) => {
                let sym = match op {
                    Cmp::Eq => "=",
                    Cmp::Ne => "!=",
                    Cmp::Lt => "<",
                    Cmp::Le => "<=",
                    Cmp::Gt => ">",
                    Cmp::Ge => ">=",
                };
                let fmt_operand = |o: &Operand| match o {
                    Operand::Col(c) => c.clone(),
                    Operand::Const(v) => format!("{v}"),
                };
                write!(f, "{} {sym} {}", fmt_operand(l), fmt_operand(r))
            }
            Predicate::And(l, r) => write!(f, "({l} and {r})"),
            Predicate::Or(l, r) => write!(f, "({l} or {r})"),
            Predicate::Not(p) => write!(f, "not {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::build(&[("id", ValueType::Int), ("name", ValueType::Str)], &["id"]).unwrap()
    }

    #[test]
    fn comparisons_work_per_type() {
        let s = schema();
        let r = row![5, "ada"];
        assert!(Predicate::gt(Operand::col("id"), Operand::val(3))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::eq(Operand::col("name"), Operand::val("ada"))
            .eval(&s, &r)
            .unwrap());
        assert!(!Predicate::lt(Operand::col("id"), Operand::val(5))
            .eval(&s, &r)
            .unwrap());
    }

    #[test]
    fn boolean_connectives_combine() {
        let s = schema();
        let r = row![5, "ada"];
        let p = Predicate::gt(Operand::col("id"), Operand::val(3))
            .and(Predicate::eq(Operand::col("name"), Operand::val("ada")));
        assert!(p.eval(&s, &r).unwrap());
        assert!(!p.clone().not().eval(&s, &r).unwrap());
        let q = Predicate::False.or(p);
        assert!(q.eval(&s, &r).unwrap());
    }

    #[test]
    fn mixed_type_comparison_is_an_error() {
        let s = schema();
        let r = row![5, "ada"];
        let p = Predicate::eq(Operand::col("id"), Operand::val("ada"));
        assert!(matches!(p.eval(&s, &r), Err(StoreError::BadQuery(_))));
    }

    #[test]
    fn validate_catches_unknown_columns() {
        let s = schema();
        let p = Predicate::eq(Operand::col("nope"), Operand::val(1));
        assert!(matches!(p.validate(&s), Err(StoreError::NoSuchColumn(_))));
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::gt(Operand::col("id"), Operand::val(3))
            .and(Predicate::eq(Operand::col("name"), Operand::val("ada")));
        assert_eq!(p.to_string(), "(id > 3 and name = ada)");
    }
}
