//! A small predicate language over rows, used by σ (select) and the
//! relational select lens.

use crate::error::StoreError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// A scalar operand: a column reference or a literal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// The value of a named column in the current row.
    Col(String),
    /// A literal.
    Const(Value),
}

impl Operand {
    /// A column reference.
    pub fn col(name: impl Into<String>) -> Operand {
        Operand::Col(name.into())
    }

    /// A literal value.
    pub fn val(v: impl Into<Value>) -> Operand {
        Operand::Const(v.into())
    }

    fn eval<'a>(&'a self, schema: &Schema, row: &'a Row) -> Result<&'a Value, StoreError> {
        match self {
            Operand::Col(name) => Ok(&row[schema.index_of(name)?]),
            Operand::Const(v) => Ok(v),
        }
    }

    fn validate(&self, schema: &Schema) -> Result<(), StoreError> {
        if let Operand::Col(name) = self {
            schema.index_of(name)?;
        }
        Ok(())
    }
}

/// The comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A boolean predicate over one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Compare two operands.
    Compare(Cmp, Operand, Operand),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `lhs == rhs`.
    pub fn eq(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Eq, lhs, rhs)
    }
    /// `lhs != rhs`.
    pub fn ne(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Ne, lhs, rhs)
    }
    /// `lhs < rhs`.
    pub fn lt(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Lt, lhs, rhs)
    }
    /// `lhs <= rhs`.
    pub fn le(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Le, lhs, rhs)
    }
    /// `lhs > rhs`.
    pub fn gt(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Gt, lhs, rhs)
    }
    /// `lhs >= rhs`.
    pub fn ge(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare(Cmp::Ge, lhs, rhs)
    }
    /// Conjunction.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }
    /// Disjunction.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }
    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Check that every referenced column exists and compared operands
    /// could have comparable types (column/column comparisons are checked
    /// at evaluation time for mixed-type rows).
    pub fn validate(&self, schema: &Schema) -> Result<(), StoreError> {
        match self {
            Predicate::True | Predicate::False => Ok(()),
            Predicate::Compare(_, l, r) => {
                l.validate(schema)?;
                r.validate(schema)
            }
            Predicate::And(l, r) | Predicate::Or(l, r) => {
                l.validate(schema)?;
                r.validate(schema)
            }
            Predicate::Not(p) => p.validate(schema),
        }
    }

    /// Every single-column constraint a secondary index could serve,
    /// collected from the top-level conjunction (`And` spine): leaves of
    /// the form `col ⋈ literal` (or `literal ⋈ col`, flipped) on one of
    /// `indexed` columns. `Or`/`Not` sub-trees are never descended into —
    /// a probe must be implied by the whole predicate — and the caller
    /// still evaluates the full predicate on every candidate row, so a
    /// probe only narrows the scan.
    pub fn index_probes(&self, indexed: &[&str]) -> Vec<crate::index::IndexProbe> {
        fn walk(p: &Predicate, indexed: &[&str], out: &mut Vec<crate::index::IndexProbe>) {
            match p {
                Predicate::And(l, r) => {
                    walk(l, indexed, out);
                    walk(r, indexed, out);
                }
                leaf => out.extend(leaf_probe(leaf, indexed)),
            }
        }
        let mut out = Vec::new();
        walk(self, indexed, &mut out);
        out
    }

    /// Extract the narrowest single-column constraint a secondary index on
    /// one of `indexed` columns could serve, *without* index statistics:
    /// equality probes are preferred over range probes structurally. When
    /// the actual indexes are at hand, prefer
    /// [`Predicate::index_probe_with`], which picks by estimated
    /// selectivity instead.
    pub fn index_probe(&self, indexed: &[&str]) -> Option<crate::index::IndexProbe> {
        let mut best: Option<crate::index::IndexProbe> = None;
        for probe in self.index_probes(indexed) {
            let better = match &best {
                None => true,
                Some(b) => probe.is_eq() && !b.is_eq(),
            };
            if better {
                best = Some(probe);
            }
        }
        best
    }

    /// Cost-based probe choice: among every candidate probe the predicate
    /// implies, pick the one whose index estimates the fewest matching
    /// rows — equality probes read their bucket size, range probes count
    /// entries with an early exit at the best estimate so far (see
    /// [`crate::index::ColumnIndex::estimate`]). A tight range on a
    /// high-cardinality column therefore beats an equality probe on a
    /// skewed two-value column, which the structural
    /// [`Predicate::index_probe`] would never choose.
    pub fn index_probe_with(
        &self,
        indexes: &[crate::index::ColumnIndex],
    ) -> Option<crate::index::IndexProbe> {
        let indexed: Vec<&str> = indexes
            .iter()
            .map(crate::index::ColumnIndex::column)
            .collect();
        let mut candidates = self.index_probes(&indexed);
        // A lone candidate needs no estimation — picking it is free, and
        // estimating a wide range would walk the same buckets the caller
        // is about to walk anyway.
        if candidates.len() <= 1 {
            return candidates.pop();
        }
        // Equality probes first: each estimate is one O(log n) bucket
        // lookup, and the winner seeds the cap that lets every range
        // estimate exit early instead of walking its whole bucket run.
        let (eqs, ranges): (Vec<_>, Vec<_>) = candidates
            .into_iter()
            .partition(crate::index::IndexProbe::is_eq);
        let mut best: Option<(crate::index::IndexProbe, usize)> = None;
        for probe in eqs.into_iter().chain(ranges) {
            let idx = indexes
                .iter()
                .find(|i| i.column() == probe.column)
                .expect("candidate probes only name indexed columns");
            let cap = best.as_ref().map_or(usize::MAX, |(_, c)| *c);
            let est = idx.estimate(&probe, cap);
            let better = match &best {
                None => true,
                // Strictly fewer estimated rows wins; at a tie an equality
                // probe is still the cheaper seek.
                Some((b, c)) => est < *c || (est == *c && probe.is_eq() && !b.is_eq()),
            };
            if better {
                best = Some((probe, est));
            }
        }
        best.map(|(p, _)| p)
    }

    /// The tightest bounds this predicate implies on `column`, collected
    /// from the top-level conjunction (`Or`/`Not` sub-trees contribute
    /// nothing — a bound must be implied by the whole predicate). Every
    /// row satisfying the predicate has its `column` value within the
    /// returned `(lower, upper)` bounds; an unconstrained side is
    /// [`std::ops::Bound::Unbounded`]. Sharded engines use this on key
    /// columns to
    /// prune reads to the shards a view's window can touch.
    pub fn value_bounds(&self, column: &str) -> (std::ops::Bound<Value>, std::ops::Bound<Value>) {
        use std::ops::Bound;

        fn lower_is_tighter(new: &Value, new_excl: bool, cur: &Bound<Value>) -> bool {
            match cur {
                Bound::Unbounded => true,
                Bound::Included(c) => new > c || (new == c && new_excl),
                Bound::Excluded(c) => new > c,
            }
        }
        fn upper_is_tighter(new: &Value, new_excl: bool, cur: &Bound<Value>) -> bool {
            match cur {
                Bound::Unbounded => true,
                Bound::Included(c) => new < c || (new == c && new_excl),
                Bound::Excluded(c) => new < c,
            }
        }
        fn walk(p: &Predicate, column: &str, lo: &mut Bound<Value>, hi: &mut Bound<Value>) {
            match p {
                Predicate::And(l, r) => {
                    walk(l, column, lo, hi);
                    walk(r, column, lo, hi);
                }
                Predicate::Compare(op, l, r) => {
                    let (op, col, v) = match (l, r) {
                        (Operand::Col(c), Operand::Const(v)) => (*op, c, v),
                        (Operand::Const(v), Operand::Col(c)) => (flip(*op), c, v),
                        _ => return,
                    };
                    if col != column {
                        return;
                    }
                    let (lo_new, hi_new) = match op {
                        Cmp::Eq => (Some((v, false)), Some((v, false))),
                        Cmp::Lt => (None, Some((v, true))),
                        Cmp::Le => (None, Some((v, false))),
                        Cmp::Gt => (Some((v, true)), None),
                        Cmp::Ge => (Some((v, false)), None),
                        Cmp::Ne => (None, None),
                    };
                    if let Some((v, excl)) = lo_new {
                        if lower_is_tighter(v, excl, lo) {
                            *lo = if excl {
                                Bound::Excluded(v.clone())
                            } else {
                                Bound::Included(v.clone())
                            };
                        }
                    }
                    if let Some((v, excl)) = hi_new {
                        if upper_is_tighter(v, excl, hi) {
                            *hi = if excl {
                                Bound::Excluded(v.clone())
                            } else {
                                Bound::Included(v.clone())
                            };
                        }
                    }
                }
                _ => {}
            }
        }
        let mut lo = Bound::Unbounded;
        let mut hi = Bound::Unbounded;
        walk(self, column, &mut lo, &mut hi);
        (lo, hi)
    }

    /// The columns an index could serve for this predicate: every column
    /// that [`Predicate::index_probe`] would consider, regardless of what
    /// is currently indexed. Sessions use this to decide which secondary
    /// indexes to create; keeping it next to `index_probe` keeps the two
    /// walks in agreement.
    pub fn probeable_columns(&self) -> Vec<String> {
        fn walk(p: &Predicate, out: &mut Vec<String>) {
            match p {
                Predicate::And(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                leaf => {
                    // A column is probe-able iff `index_probe` would
                    // accept the leaf with that column indexed.
                    if let Predicate::Compare(_, l, r) = leaf {
                        let col = match (l, r) {
                            (Operand::Col(c), Operand::Const(_))
                            | (Operand::Const(_), Operand::Col(c)) => c,
                            _ => return,
                        };
                        if leaf.index_probe(&[col.as_str()]).is_some() && !out.contains(col) {
                            out.push(col.clone());
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Evaluate against one row.
    ///
    /// Comparing values of different runtime types is a
    /// [`StoreError::BadQuery`] (not a silent `false`), so type errors
    /// surface in tests.
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<bool, StoreError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::Compare(op, l, r) => {
                let lv = l.eval(schema, row)?;
                let rv = r.eval(schema, row)?;
                if lv.value_type() != rv.value_type() {
                    return Err(StoreError::BadQuery(format!(
                        "cannot compare {} with {}",
                        lv.value_type(),
                        rv.value_type()
                    )));
                }
                Ok(match op {
                    Cmp::Eq => lv == rv,
                    Cmp::Ne => lv != rv,
                    Cmp::Lt => lv < rv,
                    Cmp::Le => lv <= rv,
                    Cmp::Gt => lv > rv,
                    Cmp::Ge => lv >= rv,
                })
            }
            Predicate::And(l, r) => Ok(l.eval(schema, row)? && r.eval(schema, row)?),
            Predicate::Or(l, r) => Ok(l.eval(schema, row)? || r.eval(schema, row)?),
            Predicate::Not(p) => Ok(!p.eval(schema, row)?),
        }
    }
}

/// Flip a comparison so `literal ⋈ col` reads as `col ⋈' literal`.
fn flip(op: Cmp) -> Cmp {
    match op {
        Cmp::Lt => Cmp::Gt,
        Cmp::Le => Cmp::Ge,
        Cmp::Gt => Cmp::Lt,
        Cmp::Ge => Cmp::Le,
        other => other,
    }
}

/// The index probe one conjunction leaf implies, if any: `col ⋈ literal`
/// (either operand order) on an indexed column.
fn leaf_probe(p: &Predicate, indexed: &[&str]) -> Option<crate::index::IndexProbe> {
    use crate::index::IndexProbe;
    use std::ops::Bound;

    let Predicate::Compare(op, l, r) = p else {
        return None;
    };
    let (op, col, v) = match (l, r) {
        (Operand::Col(c), Operand::Const(v)) => (*op, c, v),
        (Operand::Const(v), Operand::Col(c)) => (flip(*op), c, v),
        _ => return None,
    };
    if !indexed.contains(&col.as_str()) {
        return None;
    }
    match op {
        Cmp::Eq => Some(IndexProbe::eq(col, v.clone())),
        Cmp::Lt => Some(IndexProbe::range(
            col,
            Bound::Unbounded,
            Bound::Excluded(v.clone()),
        )),
        Cmp::Le => Some(IndexProbe::range(
            col,
            Bound::Unbounded,
            Bound::Included(v.clone()),
        )),
        Cmp::Gt => Some(IndexProbe::range(
            col,
            Bound::Excluded(v.clone()),
            Bound::Unbounded,
        )),
        Cmp::Ge => Some(IndexProbe::range(
            col,
            Bound::Included(v.clone()),
            Bound::Unbounded,
        )),
        Cmp::Ne => None,
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::True => f.write_str("true"),
            Predicate::False => f.write_str("false"),
            Predicate::Compare(op, l, r) => {
                let sym = match op {
                    Cmp::Eq => "=",
                    Cmp::Ne => "!=",
                    Cmp::Lt => "<",
                    Cmp::Le => "<=",
                    Cmp::Gt => ">",
                    Cmp::Ge => ">=",
                };
                let fmt_operand = |o: &Operand| match o {
                    Operand::Col(c) => c.clone(),
                    Operand::Const(v) => format!("{v}"),
                };
                write!(f, "{} {sym} {}", fmt_operand(l), fmt_operand(r))
            }
            Predicate::And(l, r) => write!(f, "({l} and {r})"),
            Predicate::Or(l, r) => write!(f, "({l} or {r})"),
            Predicate::Not(p) => write!(f, "not {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::build(&[("id", ValueType::Int), ("name", ValueType::Str)], &["id"]).unwrap()
    }

    #[test]
    fn comparisons_work_per_type() {
        let s = schema();
        let r = row![5, "ada"];
        assert!(Predicate::gt(Operand::col("id"), Operand::val(3))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::eq(Operand::col("name"), Operand::val("ada"))
            .eval(&s, &r)
            .unwrap());
        assert!(!Predicate::lt(Operand::col("id"), Operand::val(5))
            .eval(&s, &r)
            .unwrap());
    }

    #[test]
    fn boolean_connectives_combine() {
        let s = schema();
        let r = row![5, "ada"];
        let p = Predicate::gt(Operand::col("id"), Operand::val(3))
            .and(Predicate::eq(Operand::col("name"), Operand::val("ada")));
        assert!(p.eval(&s, &r).unwrap());
        assert!(!p.clone().not().eval(&s, &r).unwrap());
        let q = Predicate::False.or(p);
        assert!(q.eval(&s, &r).unwrap());
    }

    #[test]
    fn mixed_type_comparison_is_an_error() {
        let s = schema();
        let r = row![5, "ada"];
        let p = Predicate::eq(Operand::col("id"), Operand::val("ada"));
        assert!(matches!(p.eval(&s, &r), Err(StoreError::BadQuery(_))));
    }

    #[test]
    fn validate_catches_unknown_columns() {
        let s = schema();
        let p = Predicate::eq(Operand::col("nope"), Operand::val(1));
        assert!(matches!(p.validate(&s), Err(StoreError::NoSuchColumn(_))));
    }

    #[test]
    fn value_bounds_tighten_over_the_conjunction() {
        use std::ops::Bound;
        let p = Predicate::ge(Operand::col("id"), Operand::val(10))
            .and(Predicate::lt(Operand::col("id"), Operand::val(20)))
            .and(Predicate::gt(Operand::val(12), Operand::col("id"))); // flipped: id < 12
        let (lo, hi) = p.value_bounds("id");
        assert_eq!(lo, Bound::Included(Value::Int(10)));
        assert_eq!(hi, Bound::Excluded(Value::Int(12)));

        // Equality pins both sides; other columns contribute nothing.
        let (lo, hi) = Predicate::eq(Operand::col("id"), Operand::val(7)).value_bounds("id");
        assert_eq!(lo, Bound::Included(Value::Int(7)));
        assert_eq!(hi, Bound::Included(Value::Int(7)));
        let (lo, hi) = Predicate::eq(Operand::col("name"), Operand::val("x")).value_bounds("id");
        assert_eq!((lo, hi), (Bound::Unbounded, Bound::Unbounded));

        // Or / Not sub-trees are conservative: no bound is implied.
        let p = Predicate::ge(Operand::col("id"), Operand::val(10))
            .or(Predicate::lt(Operand::col("id"), Operand::val(0)));
        assert_eq!(p.value_bounds("id"), (Bound::Unbounded, Bound::Unbounded));

        // An exclusive bound at the same value is tighter than inclusive.
        let p = Predicate::ge(Operand::col("id"), Operand::val(10))
            .and(Predicate::gt(Operand::col("id"), Operand::val(10)));
        assert_eq!(p.value_bounds("id").0, Bound::Excluded(Value::Int(10)));
    }

    #[test]
    fn cost_based_probe_beats_structural_preference_on_skew() {
        use crate::row;
        use crate::schema::Schema;
        use crate::table::Table;
        use crate::value::ValueType;

        // 200 rows: `flag` has 2 distinct values (skewed), `score` is
        // unique. The predicate implies an equality probe on flag (100
        // rows) and a tight range probe on score (5 rows).
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("flag", ValueType::Int),
                ("score", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let mut t = Table::from_rows(
            schema,
            (0..200i64).map(|i| row![i, i % 2, i]).collect::<Vec<_>>(),
        )
        .unwrap();
        t.create_index("flag").unwrap();
        t.create_index("score").unwrap();

        let pred = Predicate::eq(Operand::col("flag"), Operand::val(1))
            .and(Predicate::ge(Operand::col("score"), Operand::val(195)));

        // Structural preference picks the equality probe…
        let structural = pred.index_probe(&["flag", "score"]).unwrap();
        assert_eq!(structural.column, "flag");
        assert!(structural.is_eq());

        // …the cost-based planner picks the far more selective range.
        let flag_idx = t.index("flag").unwrap().clone();
        let score_idx = t.index("score").unwrap().clone();
        assert_eq!(flag_idx.distinct_values(), 2);
        assert_eq!(flag_idx.entry_count(), 200);
        let costed = pred.index_probe_with(&[flag_idx, score_idx]).unwrap();
        assert_eq!(costed.column, "score");
        assert!(!costed.is_eq());

        // Either way the select answer is identical.
        let plain = Table::from_rows(t.schema().clone(), t.rows().cloned()).unwrap();
        assert_eq!(t.select(&pred).unwrap(), plain.select(&pred).unwrap());
        assert_eq!(t.select(&pred).unwrap().len(), 3); // 195, 197, 199
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::gt(Operand::col("id"), Operand::val(3))
            .and(Predicate::eq(Operand::col("name"), Operand::val("ada")));
        assert_eq!(p.to_string(), "(id > 3 and name = ada)");
    }
}
