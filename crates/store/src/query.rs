//! A composable query AST over a [`Database`], evaluating to a [`Table`].
//!
//! This is the *forward* (read-only) query language; the relational
//! lenses in `esm-relational` are the bidirectional counterpart for the
//! select/project/join/rename fragment.

use crate::database::Database;
use crate::error::StoreError;
use crate::predicate::Predicate;
use crate::table::Table;

/// A relational-algebra query tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Scan a named base table.
    Scan(String),
    /// A literal table.
    Literal(Table),
    /// σ: filter by predicate.
    Select(Box<Query>, Predicate),
    /// π: project onto columns.
    Project(Box<Query>, Vec<String>),
    /// ρ: rename columns (`(old, new)` pairs).
    Rename(Box<Query>, Vec<(String, String)>),
    /// ⋈: natural join.
    Join(Box<Query>, Box<Query>),
    /// ∪: union.
    Union(Box<Query>, Box<Query>),
    /// ∖: difference.
    Difference(Box<Query>, Box<Query>),
    /// ∩: intersection.
    Intersect(Box<Query>, Box<Query>),
}

impl Query {
    /// Scan a named table.
    pub fn scan(name: impl Into<String>) -> Query {
        Query::Scan(name.into())
    }

    /// σ: filter this query's rows.
    pub fn select(self, pred: Predicate) -> Query {
        Query::Select(Box::new(self), pred)
    }

    /// π: project this query's rows.
    pub fn project(self, cols: &[&str]) -> Query {
        Query::Project(Box::new(self), cols.iter().map(|c| c.to_string()).collect())
    }

    /// ρ: rename columns.
    pub fn rename(self, renames: &[(&str, &str)]) -> Query {
        Query::Rename(
            Box::new(self),
            renames
                .iter()
                .map(|(o, n)| (o.to_string(), n.to_string()))
                .collect(),
        )
    }

    /// ⋈: natural join with another query.
    pub fn join(self, other: Query) -> Query {
        Query::Join(Box::new(self), Box::new(other))
    }

    /// ∪: union with another query.
    pub fn union(self, other: Query) -> Query {
        Query::Union(Box::new(self), Box::new(other))
    }

    /// ∖: difference with another query.
    pub fn difference(self, other: Query) -> Query {
        Query::Difference(Box::new(self), Box::new(other))
    }

    /// ∩: intersection with another query.
    pub fn intersect(self, other: Query) -> Query {
        Query::Intersect(Box::new(self), Box::new(other))
    }

    /// Evaluate against a database.
    pub fn eval(&self, db: &Database) -> Result<Table, StoreError> {
        match self {
            Query::Scan(name) => db.table(name).cloned(),
            Query::Literal(t) => Ok(t.clone()),
            Query::Select(q, p) => q.eval(db)?.select(p),
            Query::Project(q, cols) => q.eval(db)?.project(cols),
            Query::Rename(q, renames) => q.eval(db)?.rename(renames),
            Query::Join(l, r) => l.eval(db)?.natural_join(&r.eval(db)?),
            Query::Union(l, r) => l.eval(db)?.union(&r.eval(db)?),
            Query::Difference(l, r) => l.eval(db)?.difference(&r.eval(db)?),
            Query::Intersect(l, r) => l.eval(db)?.intersect(&r.eval(db)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Operand;
    use crate::row;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "emp",
            Table::from_rows(
                Schema::build(
                    &[
                        ("eid", ValueType::Int),
                        ("name", ValueType::Str),
                        ("dept", ValueType::Int),
                    ],
                    &["eid"],
                )
                .unwrap(),
                vec![
                    row![1, "ada", 10],
                    row![2, "alan", 20],
                    row![3, "grace", 10],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            "dept",
            Table::from_rows(
                Schema::build(
                    &[("dept", ValueType::Int), ("dname", ValueType::Str)],
                    &["dept"],
                )
                .unwrap(),
                vec![row![10, "research"], row![20, "ops"]],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn scan_select_project_pipeline() {
        let q = Query::scan("emp")
            .select(Predicate::eq(Operand::col("dept"), Operand::val(10)))
            .project(&["name"]);
        let t = q.eval(&db()).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.rows().any(|r| r[0] == Value::str("ada")));
    }

    #[test]
    fn join_combines_tables() {
        let q = Query::scan("emp")
            .join(Query::scan("dept"))
            .project(&["name", "dname"]);
        let t = q.eval(&db()).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.rows().any(|r| r == &row!["grace", "research"]));
    }

    #[test]
    fn rename_then_join_on_new_name() {
        // Rename emp.dept to d, dept.dept to d: join still on the shared
        // column.
        let q = Query::scan("emp")
            .rename(&[("dept", "d")])
            .join(Query::scan("dept").rename(&[("dept", "d")]));
        let t = q.eval(&db()).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn unknown_table_errors() {
        let q = Query::scan("ghost");
        assert!(matches!(q.eval(&db()), Err(StoreError::NoSuchTable(_))));
    }

    #[test]
    fn set_operators_compose() {
        let research = Query::scan("emp")
            .select(Predicate::eq(Operand::col("dept"), Operand::val(10)))
            .project(&["name"]);
        let all = Query::scan("emp").project(&["name"]);
        let not_research = all.clone().difference(research.clone());
        assert_eq!(not_research.eval(&db()).unwrap().len(), 1);
        let back = not_research.union(research).eval(&db()).unwrap();
        assert_eq!(back, all.eval(&db()).unwrap());
    }
}
