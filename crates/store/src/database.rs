//! A named collection of tables, with snapshots.

use std::collections::BTreeMap;

use crate::error::StoreError;
use crate::table::Table;

/// A simple multi-table database: a name → [`Table`] map.
///
/// `Database` is a value type: [`Database::snapshot`] is just `clone`, so
/// callers can cheaply capture before/after states and diff them with
/// [`crate::Delta`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create a table under a fresh name. Re-using a name is an error (use
    /// [`Database::replace_table`] to overwrite).
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        table: Table,
    ) -> Result<(), StoreError> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(StoreError::BadSchema(format!(
                "table {name} already exists"
            )));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Replace (or create) a table.
    pub fn replace_table(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Drop a table, returning it if it existed.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Read a table.
    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// A deep copy of the current state.
    pub fn snapshot(&self) -> Database {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn t() -> Table {
        Table::from_rows(
            Schema::build(&[("id", ValueType::Int)], &["id"]).unwrap(),
            vec![row![1]],
        )
        .unwrap()
    }

    #[test]
    fn create_and_read_tables() {
        let mut db = Database::new();
        db.create_table("t", t()).unwrap();
        assert_eq!(db.table("t").unwrap().len(), 1);
        assert!(matches!(db.table("nope"), Err(StoreError::NoSuchTable(_))));
    }

    #[test]
    fn duplicate_create_is_rejected() {
        let mut db = Database::new();
        db.create_table("t", t()).unwrap();
        assert!(db.create_table("t", t()).is_err());
        db.replace_table("t", t()); // but replace is fine
    }

    #[test]
    fn snapshots_are_independent() {
        let mut db = Database::new();
        db.create_table("t", t()).unwrap();
        let snap = db.snapshot();
        db.table_mut("t").unwrap().insert(row![2]).unwrap();
        assert_eq!(db.table("t").unwrap().len(), 2);
        assert_eq!(snap.table("t").unwrap().len(), 1);
    }

    #[test]
    fn drop_returns_the_table() {
        let mut db = Database::new();
        db.create_table("t", t()).unwrap();
        assert!(db.drop_table("t").is_some());
        assert!(db.drop_table("t").is_none());
        assert!(db.is_empty());
    }
}
