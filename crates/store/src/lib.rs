//! An in-memory relational database substrate.
//!
//! The paper's introduction motivates bx over "database tables … XML
//! files, abstract syntax trees, code". This crate supplies the database
//! tables: typed schemas with candidate keys, set-semantics tables,
//! a predicate language, relational algebra (select / project / join /
//! union / difference / rename), row-level deltas, secondary B-tree
//! indexes ([`index`]) turning predicate scans into seeks, and
//! multi-table databases with snapshots.
//!
//! `esm-relational` builds *relational lenses* on top of this substrate,
//! turning select/project/join view definitions into entangled state
//! monads.
//!
//! Design notes:
//! - Tables are **sets** of rows ordered by key (BTreeMap keyed on the key
//!   columns), so iteration is deterministic and diffing is cheap.
//! - Every mutation validates arity, column types and key uniqueness,
//!   returning [`StoreError`] rather than corrupting the table.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod csv;
pub mod database;
pub mod delta;
pub mod error;
pub mod index;
pub mod predicate;
pub mod query;
pub mod row;
pub mod schema;
pub mod snapshot;
pub mod table;
pub mod value;

pub use csv::{from_csv, to_csv};
pub use database::Database;
pub use delta::Delta;
pub use error::StoreError;
pub use index::{ColumnIndex, IndexProbe};
pub use predicate::{Cmp, Operand, Predicate};
pub use query::Query;
pub use row::Row;
pub use schema::{Column, Schema};
pub use snapshot::{decode_database, encode_database};
pub use table::Table;
pub use value::{Value, ValueType};
