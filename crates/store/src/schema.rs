//! Schemas: named, typed columns with a candidate key.

use crate::error::StoreError;
use crate::row::Row;
use crate::value::ValueType;

/// One column: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Column {
    /// Column name, unique within a schema.
    pub name: String,
    /// Declared cell type.
    pub ty: ValueType,
}

impl Column {
    /// Construct a column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Column {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// A table schema: ordered columns plus a candidate key (a subset of the
/// column names; an empty key means "the whole row is the key", i.e. plain
/// set semantics).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Schema {
    columns: Vec<Column>,
    key: Vec<String>,
}

impl Schema {
    /// Build and validate a schema. The key must name existing columns,
    /// without duplicates.
    pub fn new(
        columns: impl IntoIterator<Item = Column>,
        key: impl IntoIterator<Item = String>,
    ) -> Result<Schema, StoreError> {
        let columns: Vec<Column> = columns.into_iter().collect();
        let key: Vec<String> = key.into_iter().collect();
        let mut seen = std::collections::BTreeSet::new();
        for c in &columns {
            if !seen.insert(&c.name) {
                return Err(StoreError::BadSchema(format!(
                    "duplicate column {}",
                    c.name
                )));
            }
        }
        let mut kseen = std::collections::BTreeSet::new();
        for k in &key {
            if !columns.iter().any(|c| &c.name == k) {
                return Err(StoreError::BadSchema(format!(
                    "key column {k} not in schema"
                )));
            }
            if !kseen.insert(k) {
                return Err(StoreError::BadSchema(format!("duplicate key column {k}")));
            }
        }
        Ok(Schema { columns, key })
    }

    /// Convenience constructor from `(name, type)` pairs and key names.
    pub fn build(cols: &[(&str, ValueType)], key: &[&str]) -> Result<Schema, StoreError> {
        Schema::new(
            cols.iter().map(|(n, t)| Column::new(*n, *t)),
            key.iter().map(|k| k.to_string()),
        )
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The key column names (possibly empty = whole row).
    pub fn key(&self) -> &[String] {
        &self.key
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// The index of a named column.
    pub fn index_of(&self, name: &str) -> Result<usize, StoreError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StoreError::NoSuchColumn(name.to_string()))
    }

    /// Indices of several named columns, in the order given.
    pub fn indices_of(&self, names: &[String]) -> Result<Vec<usize>, StoreError> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// Indices of the key columns (all columns if the key is empty).
    pub fn key_indices(&self) -> Vec<usize> {
        if self.key.is_empty() {
            (0..self.columns.len()).collect()
        } else {
            self.key
                .iter()
                .map(|k| self.index_of(k).expect("validated at construction"))
                .collect()
        }
    }

    /// Validate one row against this schema (arity and cell types).
    pub fn check_row(&self, row: &Row) -> Result<(), StoreError> {
        if row.len() != self.columns.len() {
            return Err(StoreError::Arity {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (cell, col) in row.iter().zip(&self.columns) {
            if cell.value_type() != col.ty {
                return Err(StoreError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty,
                    got: cell.value_type(),
                });
            }
        }
        Ok(())
    }

    /// The schema of a projection onto `names` (key becomes the projected
    /// columns that were key columns; if the original key is not fully
    /// retained, the projected schema falls back to whole-row keying).
    pub fn project(&self, names: &[String]) -> Result<Schema, StoreError> {
        let indices = self.indices_of(names)?;
        let columns: Vec<Column> = indices.iter().map(|&i| self.columns[i].clone()).collect();
        let key: Vec<String> = if self.key.iter().all(|k| names.contains(k)) {
            self.key.clone()
        } else {
            Vec::new()
        };
        Schema::new(columns, key)
    }

    /// Rename columns according to `(old, new)` pairs; unnamed columns are
    /// kept. Key names are renamed along.
    pub fn rename(&self, renames: &[(String, String)]) -> Result<Schema, StoreError> {
        let lookup = |n: &str| -> String {
            renames
                .iter()
                .find(|(old, _)| old == n)
                .map(|(_, new)| new.clone())
                .unwrap_or_else(|| n.to_string())
        };
        for (old, _) in renames {
            self.index_of(old)?;
        }
        Schema::new(
            self.columns
                .iter()
                .map(|c| Column::new(lookup(&c.name), c.ty)),
            self.key.iter().map(|k| lookup(k)),
        )
    }

    /// Do two schemas have identical columns (for union/difference)?
    pub fn same_columns(&self, other: &Schema) -> bool {
        self.columns == other.columns
    }

    /// The columns shared by name (and type) with `other` — the natural
    /// join attributes. A shared name with conflicting types is an error.
    pub fn shared_columns(&self, other: &Schema) -> Result<Vec<String>, StoreError> {
        let mut shared = Vec::new();
        for c in &self.columns {
            if let Some(oc) = other.columns.iter().find(|oc| oc.name == c.name) {
                if oc.ty != c.ty {
                    return Err(StoreError::SchemaMismatch(format!(
                        "column {} has type {} on one side and {} on the other",
                        c.name, c.ty, oc.ty
                    )));
                }
                shared.push(c.name.clone());
            }
        }
        Ok(shared)
    }
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            let is_key = self.key.contains(&c.name);
            write!(f, "{}{}: {}", if is_key { "*" } else { "" }, c.name, c.ty)?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn people() -> Schema {
        Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("active", ValueType::Bool),
            ],
            &["id"],
        )
        .unwrap()
    }

    #[test]
    fn construction_rejects_duplicates_and_bad_keys() {
        assert!(matches!(
            Schema::build(&[("a", ValueType::Int), ("a", ValueType::Str)], &[]),
            Err(StoreError::BadSchema(_))
        ));
        assert!(matches!(
            Schema::build(&[("a", ValueType::Int)], &["b"]),
            Err(StoreError::BadSchema(_))
        ));
    }

    #[test]
    fn row_validation_checks_arity_and_types() {
        let s = people();
        assert!(s.check_row(&row![1, "ada", true]).is_ok());
        assert!(matches!(
            s.check_row(&row![1, "ada"]),
            Err(StoreError::Arity { .. })
        ));
        assert!(matches!(
            s.check_row(&row![1, 2, true]),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn key_indices_default_to_whole_row() {
        let s = Schema::build(&[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap();
        assert_eq!(s.key_indices(), vec![0, 1]);
        assert_eq!(people().key_indices(), vec![0]);
    }

    #[test]
    fn projection_keeps_key_when_possible() {
        let s = people();
        let p = s.project(&["id".to_string(), "name".to_string()]).unwrap();
        assert_eq!(p.key(), &["id".to_string()]);
        // Dropping the key column loses the key.
        let p2 = s.project(&["name".to_string()]).unwrap();
        assert!(p2.key().is_empty());
    }

    #[test]
    fn rename_renames_key_too() {
        let s = people();
        let r = s.rename(&[("id".to_string(), "pid".to_string())]).unwrap();
        assert_eq!(r.key(), &["pid".to_string()]);
        assert!(r.index_of("pid").is_ok());
        assert!(r.index_of("id").is_err());
    }

    #[test]
    fn shared_columns_require_matching_types() {
        let s1 = Schema::build(&[("id", ValueType::Int), ("x", ValueType::Str)], &[]).unwrap();
        let s2 = Schema::build(&[("id", ValueType::Int), ("y", ValueType::Str)], &[]).unwrap();
        assert_eq!(s1.shared_columns(&s2).unwrap(), vec!["id".to_string()]);
        let s3 = Schema::build(&[("id", ValueType::Str)], &[]).unwrap();
        assert!(s1.shared_columns(&s3).is_err());
    }

    #[test]
    fn display_marks_key_columns() {
        assert_eq!(people().to_string(), "(*id: int, name: str, active: bool)");
    }
}
