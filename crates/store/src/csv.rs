//! CSV import/export for tables — the interchange format that makes the
//! substrate usable with real data.
//!
//! Dialect: RFC-4180-style — comma-separated, `"` quoting for fields
//! containing commas, quotes or newlines, doubled quotes inside quoted
//! fields, first line is the header. Parsing is schema-driven: each cell
//! is interpreted at the column's declared type.

use crate::error::StoreError;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{Value, ValueType};

fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

fn quote(field: &str) -> String {
    if needs_quoting(field) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialise a table to CSV, header first, rows in key order.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .column_names()
        .iter()
        .map(|n| quote(n))
        .collect();
    out.push_str(&header.join(","));
    for row in table.rows() {
        out.push('\n');
        let cells: Vec<String> = row.iter().map(|v| quote(&v.to_string())).collect();
        out.push_str(&cells.join(","));
    }
    out
}

/// Split one CSV record into fields, handling quoting. Returns an error
/// for unterminated quotes.
fn split_record(line: &str) -> Result<Vec<String>, StoreError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(StoreError::BadQuery(format!(
            "unterminated quote in record: {line}"
        )));
    }
    fields.push(cur);
    Ok(fields)
}

fn parse_cell(text: &str, ty: ValueType, column: &str) -> Result<Value, StoreError> {
    match ty {
        ValueType::Int => {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| StoreError::TypeMismatch {
                    column: column.to_string(),
                    expected: ty,
                    got: ValueType::Str,
                })
        }
        ValueType::Bool => match text {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(StoreError::TypeMismatch {
                column: column.to_string(),
                expected: ty,
                got: ValueType::Str,
            }),
        },
        ValueType::Str => Ok(Value::Str(text.to_string())),
    }
}

/// Parse CSV text into a table with the given schema. The header must
/// match the schema's column names exactly (order included).
pub fn from_csv(schema: Schema, text: &str) -> Result<Table, StoreError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| StoreError::BadQuery("empty CSV input".to_string()))?;
    let header_fields = split_record(header)?;
    let expected: Vec<String> = schema
        .column_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    if header_fields != expected {
        return Err(StoreError::SchemaMismatch(format!(
            "CSV header {header_fields:?} does not match schema columns {expected:?}"
        )));
    }
    let mut table = Table::new(schema);
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields = split_record(line)?;
        if fields.len() != table.schema().arity() {
            return Err(StoreError::Arity {
                expected: table.schema().arity(),
                got: fields.len(),
            });
        }
        let row: Row = fields
            .iter()
            .zip(table.schema().columns().to_vec())
            .map(|(f, col)| parse_cell(f, col.ty, &col.name))
            .collect::<Result<_, _>>()?;
        table.insert(row)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn schema() -> Schema {
        Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("active", ValueType::Bool),
            ],
            &["id"],
        )
        .expect("valid")
    }

    fn sample() -> Table {
        Table::from_rows(
            schema(),
            vec![
                row![1, "ada", true],
                row![2, "alan, the 2nd", false],
                row![3, "say \"hi\"", true],
            ],
        )
        .expect("valid")
    }

    #[test]
    fn roundtrip_preserves_the_table() {
        let t = sample();
        let csv = to_csv(&t);
        let back = from_csv(schema(), &csv).expect("parses");
        assert_eq!(back, t);
    }

    #[test]
    fn quoting_is_applied_only_where_needed() {
        let csv = to_csv(&sample());
        assert!(csv.contains("\"alan, the 2nd\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.contains("1,ada,true"));
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let csv = "id,wrong,active\n1,a,true";
        assert!(matches!(
            from_csv(schema(), csv),
            Err(StoreError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn bad_cells_are_type_errors() {
        let csv = "id,name,active\nnot_a_number,a,true";
        assert!(matches!(
            from_csv(schema(), csv),
            Err(StoreError::TypeMismatch { .. })
        ));
        let csv2 = "id,name,active\n1,a,maybe";
        assert!(matches!(
            from_csv(schema(), csv2),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn arity_errors_are_reported() {
        let csv = "id,name,active\n1,a";
        assert!(matches!(
            from_csv(schema(), csv),
            Err(StoreError::Arity { .. })
        ));
    }

    #[test]
    fn unterminated_quotes_are_rejected() {
        let csv = "id,name,active\n1,\"open,true";
        assert!(from_csv(schema(), csv).is_err());
    }

    #[test]
    fn empty_table_roundtrips_as_header_only() {
        let t = Table::new(schema());
        let csv = to_csv(&t);
        assert_eq!(csv, "id,name,active");
        assert_eq!(from_csv(schema(), &csv).expect("parses"), t);
    }

    #[test]
    fn key_violations_surface_on_import() {
        let csv = "id,name,active\n1,a,true\n1,b,false";
        assert!(matches!(
            from_csv(schema(), csv),
            Err(StoreError::KeyViolation(_))
        ));
    }
}
