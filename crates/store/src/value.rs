//! Dynamically-typed cell values and their types.

/// A single table-cell value.
///
/// `Ord` gives tables a deterministic row order; the ordering across
/// variants (Bool < Int < Str) is arbitrary but fixed. Floats are omitted
/// deliberately: cell values must be totally ordered and hashable for set
/// semantics and keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A UTF-8 string.
    Str(String),
}

impl Value {
    /// The type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// A string value (convenience constructor).
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Extract an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a string slice, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// The type of a cell value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueType {
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// UTF-8 strings.
    Str,
}

impl ValueType {
    /// A neutral default value of this type (used e.g. by relational
    /// project lenses when a caller supplies no explicit default).
    pub fn default_value(&self) -> Value {
        match self {
            ValueType::Bool => Value::Bool(false),
            ValueType::Int => Value::Int(0),
            ValueType::Str => Value::Str(String::new()),
        }
    }
}

impl std::fmt::Display for ValueType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueType::Bool => f.write_str("bool"),
            ValueType::Int => f.write_str("int"),
            ValueType::Str => f.write_str("str"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_know_their_types() {
        assert_eq!(Value::Int(3).value_type(), ValueType::Int);
        assert_eq!(Value::str("x").value_type(), ValueType::Str);
        assert_eq!(Value::Bool(true).value_type(), ValueType::Bool);
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Value::from(5i64).as_int(), Some(5));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_str(), None);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut vals = vec![
            Value::str("b"),
            Value::Int(2),
            Value::Bool(true),
            Value::Int(1),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Bool(true),
                Value::Int(1),
                Value::Int(2),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn defaults_match_types() {
        assert_eq!(ValueType::Int.default_value(), Value::Int(0));
        assert_eq!(ValueType::Str.default_value(), Value::str(""));
        assert_eq!(ValueType::Bool.default_value(), Value::Bool(false));
    }

    #[test]
    fn display_is_plain() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(ValueType::Int.to_string(), "int");
    }
}
