//! Row-level deltas: the difference between two table states, applicable
//! and invertible. Used to report what a bx update actually changed.

use crate::error::StoreError;
use crate::row::Row;
use crate::table::Table;

/// A set-difference delta between two table states.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Delta {
    /// Rows present in the new state but not the old.
    pub inserted: Vec<Row>,
    /// Rows present in the old state but not the new.
    pub deleted: Vec<Row>,
}

impl Delta {
    /// The empty delta.
    pub fn empty() -> Delta {
        Delta::default()
    }

    /// Is this a no-op?
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Total number of row changes.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// Compute the delta taking `old` to `new`. Schemas must match.
    pub fn between(old: &Table, new: &Table) -> Result<Delta, StoreError> {
        if !old.schema().same_columns(new.schema()) {
            return Err(StoreError::SchemaMismatch("delta between different schemas".into()));
        }
        let inserted = new.rows().filter(|r| !old.contains(r)).cloned().collect();
        let deleted = old.rows().filter(|r| !new.contains(r)).cloned().collect();
        Ok(Delta { inserted, deleted })
    }

    /// Apply to a table: delete `deleted`, then upsert `inserted`.
    pub fn apply(&self, table: &Table) -> Result<Table, StoreError> {
        let mut out = table.clone();
        for row in &self.deleted {
            out.delete(row);
        }
        for row in &self.inserted {
            out.upsert(row.clone())?;
        }
        Ok(out)
    }

    /// The inverse delta (swaps inserts and deletes).
    pub fn invert(&self) -> Delta {
        Delta { inserted: self.deleted.clone(), deleted: self.inserted.clone() }
    }
}

impl std::fmt::Display for Delta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "delta: +{} -{}", self.inserted.len(), self.deleted.len())?;
        for r in &self.inserted {
            writeln!(f, "  + {r:?}")?;
        }
        for r in &self.deleted {
            writeln!(f, "  - {r:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn tbl(rows: Vec<Row>) -> Table {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn between_identifies_inserts_and_deletes() {
        let old = tbl(vec![row![1, "a"], row![2, "b"]]);
        let new = tbl(vec![row![2, "b"], row![3, "c"]]);
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.inserted, vec![row![3, "c"]]);
        assert_eq!(d.deleted, vec![row![1, "a"]]);
    }

    #[test]
    fn updates_appear_as_delete_plus_insert() {
        let old = tbl(vec![row![1, "a"]]);
        let new = tbl(vec![row![1, "a2"]]);
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn apply_roundtrips() {
        let old = tbl(vec![row![1, "a"], row![2, "b"]]);
        let new = tbl(vec![row![2, "b2"], row![3, "c"]]);
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.apply(&old).unwrap(), new);
        // And the inverse takes new back to old.
        assert_eq!(d.invert().apply(&new).unwrap(), old);
    }

    #[test]
    fn empty_delta_between_equal_tables() {
        let t = tbl(vec![row![1, "a"]]);
        let d = Delta::between(&t, &t).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.apply(&t).unwrap(), t);
    }
}
