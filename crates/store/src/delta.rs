//! Row-level deltas: the difference between two table states, applicable
//! and invertible. Used to report what a bx update actually changed.

use crate::error::StoreError;
use crate::row::Row;
use crate::table::Table;

/// A set-difference delta between two table states.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Delta {
    /// Rows present in the new state but not the old.
    pub inserted: Vec<Row>,
    /// Rows present in the old state but not the new.
    pub deleted: Vec<Row>,
}

impl Delta {
    /// The empty delta.
    pub fn empty() -> Delta {
        Delta::default()
    }

    /// Is this a no-op?
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Total number of row changes.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// Compute the delta taking `old` to `new`. Schemas must match.
    ///
    /// When the tables also agree on their declared key, this is a single
    /// ordered merge over the two key-sorted row maps: O(n + m)
    /// comparisons with no intermediate clones, instead of a per-row
    /// rescan of the other table. Tables with equal columns but different
    /// key declarations sort their rows differently, so they fall back to
    /// the per-row containment scan (same result, pre-merge cost).
    pub fn between(old: &Table, new: &Table) -> Result<Delta, StoreError> {
        if !old.schema().same_columns(new.schema()) {
            return Err(StoreError::SchemaMismatch(
                "delta between different schemas".into(),
            ));
        }
        if old.schema().key() != new.schema().key() {
            let inserted = new.rows().filter(|r| !old.contains(r)).cloned().collect();
            let deleted = old.rows().filter(|r| !new.contains(r)).cloned().collect();
            return Ok(Delta { inserted, deleted });
        }
        let mut inserted = Vec::new();
        let mut deleted = Vec::new();
        let mut olds = old.entries().peekable();
        let mut news = new.entries().peekable();
        loop {
            match (olds.peek(), news.peek()) {
                (Some((ok, orow)), Some((nk, nrow))) => match ok.cmp(nk) {
                    std::cmp::Ordering::Less => {
                        deleted.push((*orow).clone());
                        olds.next();
                    }
                    std::cmp::Ordering::Greater => {
                        inserted.push((*nrow).clone());
                        news.next();
                    }
                    std::cmp::Ordering::Equal => {
                        if orow != nrow {
                            deleted.push((*orow).clone());
                            inserted.push((*nrow).clone());
                        }
                        olds.next();
                        news.next();
                    }
                },
                (Some(_), None) => {
                    deleted.extend(olds.map(|(_, r)| r.clone()));
                    break;
                }
                (None, Some(_)) => {
                    inserted.extend(news.map(|(_, r)| r.clone()));
                    break;
                }
                (None, None) => break,
            }
        }
        Ok(Delta { inserted, deleted })
    }

    /// Apply to a table: delete `deleted`, then upsert `inserted`.
    pub fn apply(&self, table: &Table) -> Result<Table, StoreError> {
        let mut out = table.clone();
        for row in &self.deleted {
            out.delete(row);
        }
        for row in &self.inserted {
            out.upsert(row.clone())?;
        }
        Ok(out)
    }

    /// The inverse delta (swaps inserts and deletes).
    pub fn invert(&self) -> Delta {
        Delta {
            inserted: self.deleted.clone(),
            deleted: self.inserted.clone(),
        }
    }
}

impl std::fmt::Display for Delta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "delta: +{} -{}", self.inserted.len(), self.deleted.len())?;
        for r in &self.inserted {
            writeln!(f, "  + {r:?}")?;
        }
        for r in &self.deleted {
            writeln!(f, "  - {r:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn tbl(rows: Vec<Row>) -> Table {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn between_identifies_inserts_and_deletes() {
        let old = tbl(vec![row![1, "a"], row![2, "b"]]);
        let new = tbl(vec![row![2, "b"], row![3, "c"]]);
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.inserted, vec![row![3, "c"]]);
        assert_eq!(d.deleted, vec![row![1, "a"]]);
    }

    #[test]
    fn updates_appear_as_delete_plus_insert() {
        let old = tbl(vec![row![1, "a"]]);
        let new = tbl(vec![row![1, "a2"]]);
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn apply_roundtrips() {
        let old = tbl(vec![row![1, "a"], row![2, "b"]]);
        let new = tbl(vec![row![2, "b2"], row![3, "c"]]);
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.apply(&old).unwrap(), new);
        // And the inverse takes new back to old.
        assert_eq!(d.invert().apply(&new).unwrap(), old);
    }

    #[test]
    fn between_handles_differing_key_declarations() {
        // Same columns and rows, but one side keys on id and the other on
        // the whole row: the diff must still be empty / minimal.
        let keyed = tbl(vec![row![1, "a"], row![2, "b"]]);
        let unkeyed_schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
        let unkeyed = Table::from_rows(unkeyed_schema, vec![row![1, "a"], row![2, "b"]]).unwrap();
        assert!(Delta::between(&keyed, &unkeyed).unwrap().is_empty());
        assert!(Delta::between(&unkeyed, &keyed).unwrap().is_empty());

        let unkeyed_plus = {
            let mut t = unkeyed.clone();
            t.insert(row![3, "c"]).unwrap();
            t
        };
        let d = Delta::between(&keyed, &unkeyed_plus).unwrap();
        assert_eq!(d.inserted, vec![row![3, "c"]]);
        assert!(d.deleted.is_empty());
    }

    #[test]
    fn empty_delta_between_equal_tables() {
        let t = tbl(vec![row![1, "a"]]);
        let d = Delta::between(&t, &t).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.apply(&t).unwrap(), t);
    }
}
