//! Row-level deltas: the difference between two table states, applicable
//! and invertible. Used to report what a bx update actually changed.

use std::collections::BTreeMap;

use crate::error::StoreError;
use crate::row::{project_row, Row};
use crate::table::Table;

/// A set-difference delta between two table states.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Delta {
    /// Rows present in the new state but not the old.
    pub inserted: Vec<Row>,
    /// Rows present in the old state but not the new.
    pub deleted: Vec<Row>,
}

impl Delta {
    /// The empty delta.
    pub fn empty() -> Delta {
        Delta::default()
    }

    /// Is this a no-op?
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Total number of row changes.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// Compute the delta taking `old` to `new`. Schemas must match.
    ///
    /// When the tables also agree on their declared key, this is a single
    /// ordered merge over the two key-sorted row maps: O(n + m)
    /// comparisons with no intermediate clones, instead of a per-row
    /// rescan of the other table. Tables with equal columns but different
    /// key declarations sort their rows differently, so they fall back to
    /// the per-row containment scan (same result, pre-merge cost).
    pub fn between(old: &Table, new: &Table) -> Result<Delta, StoreError> {
        if !old.schema().same_columns(new.schema()) {
            return Err(StoreError::SchemaMismatch(
                "delta between different schemas".into(),
            ));
        }
        if old.schema().key() != new.schema().key() {
            let inserted = new.rows().filter(|r| !old.contains(r)).cloned().collect();
            let deleted = old.rows().filter(|r| !new.contains(r)).cloned().collect();
            return Ok(Delta { inserted, deleted });
        }
        let mut inserted = Vec::new();
        let mut deleted = Vec::new();
        let mut olds = old.entries().peekable();
        let mut news = new.entries().peekable();
        loop {
            match (olds.peek(), news.peek()) {
                (Some((ok, orow)), Some((nk, nrow))) => match ok.cmp(nk) {
                    std::cmp::Ordering::Less => {
                        deleted.push((*orow).clone());
                        olds.next();
                    }
                    std::cmp::Ordering::Greater => {
                        inserted.push((*nrow).clone());
                        news.next();
                    }
                    std::cmp::Ordering::Equal => {
                        if orow != nrow {
                            deleted.push((*orow).clone());
                            inserted.push((*nrow).clone());
                        }
                        olds.next();
                        news.next();
                    }
                },
                (Some(_), None) => {
                    deleted.extend(olds.map(|(_, r)| r.clone()));
                    break;
                }
                (None, Some(_)) => {
                    inserted.extend(news.map(|(_, r)| r.clone()));
                    break;
                }
                (None, None) => break,
            }
        }
        Ok(Delta { inserted, deleted })
    }

    /// Apply to a table: delete `deleted`, then upsert `inserted`.
    pub fn apply(&self, table: &Table) -> Result<Table, StoreError> {
        let mut out = table.clone();
        self.apply_in_place(&mut out)?;
        Ok(out)
    }

    /// Apply to a table in place — the maintenance path for materialized
    /// views, which own their window and must not pay a whole-table clone
    /// per applied delta.
    pub fn apply_in_place(&self, table: &mut Table) -> Result<(), StoreError> {
        for row in &self.deleted {
            table.delete(row);
        }
        for row in &self.inserted {
            table.upsert(row.clone())?;
        }
        Ok(())
    }

    /// Sequence two deltas into one: if `self` takes `t0` to `t1` and
    /// `later` takes `t1` to `t2`, the composition takes `t0` straight to
    /// `t2` under [`Delta::apply`]. Rows are matched by their key
    /// projection (`key_idx`, the schema's key column indices); an insert
    /// cancelled by a later delete of the same key drops out, and a
    /// delete-then-reinsert of an identical row nets to nothing.
    ///
    /// View maintenance coalesces a drained run of committed deltas with
    /// this (see [`Delta::coalesce`]) into one application against the
    /// materialized window.
    pub fn compose(&self, later: &Delta, key_idx: &[usize]) -> Delta {
        Delta::coalesce([self.clone(), later.clone()], key_idx)
    }

    /// Coalesce an ordered run of deltas into one (the empty run
    /// coalesces to the empty delta): applying the result equals
    /// applying the run in order, in a single pass over the target. One
    /// accumulating sweep — O(total change · log) regardless of run
    /// length, never re-cloning the survivors per step — so the
    /// materialized-view drains can fold an arbitrarily long pending run
    /// before touching the window. Rows are matched by their key
    /// projection (`key_idx`); an insert cancelled by a later delete of
    /// the same key drops out, and a delete-then-reinsert of an
    /// identical row nets to nothing.
    pub fn coalesce(deltas: impl IntoIterator<Item = Delta>, key_idx: &[usize]) -> Delta {
        let key = |r: &Row| project_row(r, key_idx);
        let mut deleted: BTreeMap<Row, Row> = BTreeMap::new();
        let mut inserted: BTreeMap<Row, Row> = BTreeMap::new();
        for delta in deltas {
            for r in delta.deleted {
                let k = key(&r);
                // Deleting a row an earlier delta inserted cancels the
                // insert; a row the run left untouched so far picks up a
                // plain deletion.
                if inserted.remove(&k).is_none() {
                    deleted.entry(k).or_insert(r);
                }
            }
            for r in delta.inserted {
                inserted.insert(key(&r), r);
            }
        }
        let mut out = Delta::empty();
        for (k, r) in &deleted {
            if inserted.get(k) == Some(r) {
                continue; // delete + reinsert of the identical row
            }
            out.deleted.push(r.clone());
        }
        for (k, r) in inserted {
            if deleted.get(&k) == Some(&r) {
                continue;
            }
            out.inserted.push(r);
        }
        out
    }

    /// The inverse delta (swaps inserts and deletes).
    pub fn invert(&self) -> Delta {
        Delta {
            inserted: self.deleted.clone(),
            deleted: self.inserted.clone(),
        }
    }
}

impl std::fmt::Display for Delta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "delta: +{} -{}", self.inserted.len(), self.deleted.len())?;
        for r in &self.inserted {
            writeln!(f, "  + {r:?}")?;
        }
        for r in &self.deleted {
            writeln!(f, "  - {r:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn tbl(rows: Vec<Row>) -> Table {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn between_identifies_inserts_and_deletes() {
        let old = tbl(vec![row![1, "a"], row![2, "b"]]);
        let new = tbl(vec![row![2, "b"], row![3, "c"]]);
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.inserted, vec![row![3, "c"]]);
        assert_eq!(d.deleted, vec![row![1, "a"]]);
    }

    #[test]
    fn updates_appear_as_delete_plus_insert() {
        let old = tbl(vec![row![1, "a"]]);
        let new = tbl(vec![row![1, "a2"]]);
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn apply_roundtrips() {
        let old = tbl(vec![row![1, "a"], row![2, "b"]]);
        let new = tbl(vec![row![2, "b2"], row![3, "c"]]);
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.apply(&old).unwrap(), new);
        // And the inverse takes new back to old.
        assert_eq!(d.invert().apply(&new).unwrap(), old);
    }

    #[test]
    fn between_handles_differing_key_declarations() {
        // Same columns and rows, but one side keys on id and the other on
        // the whole row: the diff must still be empty / minimal.
        let keyed = tbl(vec![row![1, "a"], row![2, "b"]]);
        let unkeyed_schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
        let unkeyed = Table::from_rows(unkeyed_schema, vec![row![1, "a"], row![2, "b"]]).unwrap();
        assert!(Delta::between(&keyed, &unkeyed).unwrap().is_empty());
        assert!(Delta::between(&unkeyed, &keyed).unwrap().is_empty());

        let unkeyed_plus = {
            let mut t = unkeyed.clone();
            t.insert(row![3, "c"]).unwrap();
            t
        };
        let d = Delta::between(&keyed, &unkeyed_plus).unwrap();
        assert_eq!(d.inserted, vec![row![3, "c"]]);
        assert!(d.deleted.is_empty());
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let old = tbl(vec![row![1, "a"], row![2, "b"]]);
        let new = tbl(vec![row![2, "b2"], row![3, "c"]]);
        let d = Delta::between(&old, &new).unwrap();
        let mut in_place = old.clone();
        d.apply_in_place(&mut in_place).unwrap();
        assert_eq!(in_place, d.apply(&old).unwrap());
    }

    #[test]
    fn compose_sequences_two_deltas() {
        let t0 = tbl(vec![row![1, "a"], row![2, "b"]]);
        let t1 = tbl(vec![row![1, "a2"], row![3, "c"]]);
        let t2 = tbl(vec![row![1, "a2"], row![4, "d"]]);
        let d1 = Delta::between(&t0, &t1).unwrap();
        let d2 = Delta::between(&t1, &t2).unwrap();
        let key_idx = t0.schema().key_indices();
        let composed = d1.compose(&d2, &key_idx);
        assert_eq!(composed.apply(&t0).unwrap(), t2);
        // The insert of row 3 was cancelled by its later delete.
        assert!(!composed.inserted.iter().any(|r| r[0] == 3.into()));
    }

    #[test]
    fn coalesce_equals_sequential_application() {
        let t0 = tbl(vec![row![1, "a"], row![2, "b"]]);
        let t1 = tbl(vec![row![1, "a2"], row![3, "c"]]);
        let t2 = tbl(vec![row![3, "c"], row![4, "d"]]);
        let t3 = tbl(vec![row![3, "c2"]]);
        let key_idx = t0.schema().key_indices();
        let run = vec![
            Delta::between(&t0, &t1).unwrap(),
            Delta::between(&t1, &t2).unwrap(),
            Delta::between(&t2, &t3).unwrap(),
        ];
        let combined = Delta::coalesce(run, &key_idx);
        assert_eq!(combined.apply(&t0).unwrap(), t3);
        assert!(Delta::coalesce(vec![], &key_idx).is_empty());
    }

    #[test]
    fn compose_drops_delete_reinsert_noops() {
        let t0 = tbl(vec![row![1, "a"]]);
        let t1 = tbl(vec![]);
        let d1 = Delta::between(&t0, &t1).unwrap();
        let d2 = Delta::between(&t1, &t0).unwrap(); // reinsert identical row
        let key_idx = t0.schema().key_indices();
        let composed = d1.compose(&d2, &key_idx);
        assert!(composed.is_empty());
        // Composing with the empty delta is the identity either way.
        assert_eq!(d1.compose(&Delta::empty(), &key_idx), d1);
        assert_eq!(Delta::empty().compose(&d1, &key_idx), d1);
    }

    #[test]
    fn empty_delta_between_equal_tables() {
        let t = tbl(vec![row![1, "a"]]);
        let d = Delta::between(&t, &t).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.apply(&t).unwrap(), t);
    }
}
