//! A line-oriented, schema-free text codec for cells and rows.
//!
//! One cell renders as `<tag>:<payload>` with tags `b`/`i`/`s`; cells of
//! a row are tab-separated. Strings escape backslash, tab, newline and
//! carriage return, so any row fits on one `\n`-terminated line and any
//! line-based reader (the WAL segments, database snapshots) can split
//! records without knowing the schema.
//!
//! The same codec backs the engine's write-ahead-log segments and the
//! checkpoint snapshots in [`crate::snapshot`]: one escaping discipline,
//! one decoder, shared edge cases.

use crate::error::StoreError;
use crate::row::Row;
use crate::value::Value;

/// Escape a string so it fits inside one tab-separated, line-terminated
/// field. `\r` must be escaped too: decoders split on [`str::lines`],
/// which swallows a trailing `\r` as part of a `\r\n` terminator.
pub fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

/// Invert [`escape`]. Rejects dangling or unknown escape sequences.
pub fn unescape(s: &str) -> Result<String, StoreError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(StoreError::Codec(format!("bad escape \\{other:?} in {s}")));
            }
        }
    }
    Ok(out)
}

/// Render one cell as `<tag>:<payload>`.
pub fn encode_cell(v: &Value) -> String {
    match v {
        Value::Bool(b) => format!("b:{b}"),
        Value::Int(i) => format!("i:{i}"),
        Value::Str(s) => format!("s:{}", escape(s)),
    }
}

/// Parse one `<tag>:<payload>` cell.
pub fn decode_cell(cell: &str) -> Result<Value, StoreError> {
    let (tag, payload) = cell
        .split_once(':')
        .ok_or_else(|| StoreError::Codec(format!("untyped cell: {cell}")))?;
    match tag {
        "b" => payload
            .parse()
            .map(Value::Bool)
            .map_err(|_| StoreError::Codec(format!("bad bool: {cell}"))),
        "i" => payload
            .parse()
            .map(Value::Int)
            .map_err(|_| StoreError::Codec(format!("bad int: {cell}"))),
        "s" => unescape(payload).map(Value::Str),
        _ => Err(StoreError::Codec(format!("unknown tag: {cell}"))),
    }
}

/// Render a row as tab-separated encoded cells (empty string for the
/// empty row).
pub fn encode_row(row: &Row) -> String {
    row.iter().map(encode_cell).collect::<Vec<_>>().join("\t")
}

/// Parse a tab-separated row line produced by [`encode_row`].
pub fn decode_row(body: &str) -> Result<Row, StoreError> {
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split('\t').map(decode_cell).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn cells_round_trip() {
        for v in [
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::str(""),
            Value::str("plain"),
            Value::str("tab\t nl\n cr\r bs\\ quote\" done"),
        ] {
            assert_eq!(decode_cell(&encode_cell(&v)).unwrap(), v);
        }
    }

    #[test]
    fn rows_round_trip_including_empty() {
        let r = row![1, "a\tb", true];
        assert_eq!(decode_row(&encode_row(&r)).unwrap(), r);
        assert_eq!(decode_row("").unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn escaped_text_never_contains_separators() {
        let s = escape("a\tb\nc\rd\\e");
        assert!(!s.contains('\t') && !s.contains('\n') && !s.contains('\r'));
        assert_eq!(unescape(&s).unwrap(), "a\tb\nc\rd\\e");
    }

    #[test]
    fn malformed_cells_are_rejected() {
        for bad in [
            "untagged",
            "z:9",
            "i:notanint",
            "b:maybe",
            "s:bad\\escape\\q",
        ] {
            assert!(
                matches!(decode_cell(bad), Err(StoreError::Codec(_))),
                "{bad} should not decode"
            );
        }
        assert!(unescape("dangling\\").is_err());
    }
}
