//! A line-oriented, schema-free text codec for cells and rows, plus the
//! length-prefixed binary twin the hot paths use.
//!
//! **Text**: one cell renders as `<tag>:<payload>` with tags `b`/`i`/`s`;
//! cells of a row are tab-separated. Strings escape backslash, tab,
//! newline and carriage return, so any row fits on one `\n`-terminated
//! line and any line-based reader (the WAL segments, database snapshots)
//! can split records without knowing the schema.
//!
//! **Binary**: a cell is one tag byte (`0` bool, `1` int, `2` string)
//! followed by its payload — bools as one byte, ints as 8 little-endian
//! bytes, strings as a `u32` length prefix plus raw UTF-8 (no escaping:
//! the length delimits). A row is a `u32` cell count followed by its
//! cells. Decoding is cursor-based ([`BinReader`]) and rejects malformed
//! input with [`StoreError::Codec`] rather than panicking, exactly like
//! the text decoders.
//!
//! The same codecs back the engine's write-ahead-log segments, the
//! checkpoint snapshots in [`crate::snapshot`], and the wire protocol:
//! one discipline, shared edge cases. The binary form is what new WAL
//! segments and wire frames carry; the text form remains decodable for
//! recovery of segments written before the binary codec existed.

use crate::error::StoreError;
use crate::row::Row;
use crate::value::Value;

// ---------------------------------------------------------------------
// Binary primitives.
// ---------------------------------------------------------------------

const CELL_BOOL: u8 = 0;
const CELL_INT: u8 = 1;
const CELL_STR: u8 = 2;

/// Append a `u32` in little-endian.
pub fn put_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

/// Append a `u64` in little-endian.
pub fn put_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

/// Append a `u32`-length-prefixed byte blob.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Append a `u32`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append one binary cell: tag byte, then payload.
pub fn put_cell(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Bool(b) => {
            out.push(CELL_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(CELL_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(CELL_STR);
            put_str(out, s);
        }
    }
}

/// Append one binary row: `u32` cell count, then the cells.
pub fn put_row(out: &mut Vec<u8>, row: &Row) {
    put_u32(out, row.len() as u32);
    for v in row {
        put_cell(out, v);
    }
}

/// A bounds-checked cursor over a binary payload. Every read advances
/// the cursor; running past the end is a [`StoreError::Codec`], never a
/// panic — a torn or corrupt payload must decode to an error.
#[derive(Debug)]
pub struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> BinReader<'a> {
        BinReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Error unless the whole payload was consumed.
    pub fn end(&self) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::Codec(format!(
                "{} trailing bytes after binary payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Codec(format!(
                "binary payload truncated: needed {n} bytes, had {}",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a `u32`-length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, StoreError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StoreError::Codec(format!("binary string not UTF-8: {e}")))
    }

    /// Read one binary cell.
    pub fn cell(&mut self) -> Result<Value, StoreError> {
        match self.u8()? {
            CELL_BOOL => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(StoreError::Codec(format!("bad binary bool byte {b}"))),
            },
            CELL_INT => Ok(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().expect("8"),
            ))),
            CELL_STR => Ok(Value::Str(self.str()?)),
            tag => Err(StoreError::Codec(format!("unknown binary cell tag {tag}"))),
        }
    }

    /// Read one binary row.
    pub fn row(&mut self) -> Result<Row, StoreError> {
        let n = self.u32()? as usize;
        // Each cell costs at least 2 bytes; an absurd count is corruption,
        // not a reason to OOM on `with_capacity`.
        if n > self.remaining() {
            return Err(StoreError::Codec(format!(
                "binary row announces {n} cells, only {} bytes remain",
                self.remaining()
            )));
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.cell()?);
        }
        Ok(row)
    }
}

/// Escape a string so it fits inside one tab-separated, line-terminated
/// field. `\r` must be escaped too: decoders split on [`str::lines`],
/// which swallows a trailing `\r` as part of a `\r\n` terminator.
pub fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

/// Invert [`escape`]. Rejects dangling or unknown escape sequences.
pub fn unescape(s: &str) -> Result<String, StoreError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(StoreError::Codec(format!("bad escape \\{other:?} in {s}")));
            }
        }
    }
    Ok(out)
}

/// Render one cell as `<tag>:<payload>`.
pub fn encode_cell(v: &Value) -> String {
    match v {
        Value::Bool(b) => format!("b:{b}"),
        Value::Int(i) => format!("i:{i}"),
        Value::Str(s) => format!("s:{}", escape(s)),
    }
}

/// Parse one `<tag>:<payload>` cell.
pub fn decode_cell(cell: &str) -> Result<Value, StoreError> {
    let (tag, payload) = cell
        .split_once(':')
        .ok_or_else(|| StoreError::Codec(format!("untyped cell: {cell}")))?;
    match tag {
        "b" => payload
            .parse()
            .map(Value::Bool)
            .map_err(|_| StoreError::Codec(format!("bad bool: {cell}"))),
        "i" => payload
            .parse()
            .map(Value::Int)
            .map_err(|_| StoreError::Codec(format!("bad int: {cell}"))),
        "s" => unescape(payload).map(Value::Str),
        _ => Err(StoreError::Codec(format!("unknown tag: {cell}"))),
    }
}

/// Render a row as tab-separated encoded cells (empty string for the
/// empty row).
pub fn encode_row(row: &Row) -> String {
    row.iter().map(encode_cell).collect::<Vec<_>>().join("\t")
}

/// Parse a tab-separated row line produced by [`encode_row`].
pub fn decode_row(body: &str) -> Result<Row, StoreError> {
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split('\t').map(decode_cell).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn cells_round_trip() {
        for v in [
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::str(""),
            Value::str("plain"),
            Value::str("tab\t nl\n cr\r bs\\ quote\" done"),
        ] {
            assert_eq!(decode_cell(&encode_cell(&v)).unwrap(), v);
        }
    }

    #[test]
    fn rows_round_trip_including_empty() {
        let r = row![1, "a\tb", true];
        assert_eq!(decode_row(&encode_row(&r)).unwrap(), r);
        assert_eq!(decode_row("").unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn escaped_text_never_contains_separators() {
        let s = escape("a\tb\nc\rd\\e");
        assert!(!s.contains('\t') && !s.contains('\n') && !s.contains('\r'));
        assert_eq!(unescape(&s).unwrap(), "a\tb\nc\rd\\e");
    }

    #[test]
    fn malformed_cells_are_rejected() {
        for bad in [
            "untagged",
            "z:9",
            "i:notanint",
            "b:maybe",
            "s:bad\\escape\\q",
        ] {
            assert!(
                matches!(decode_cell(bad), Err(StoreError::Codec(_))),
                "{bad} should not decode"
            );
        }
        assert!(unescape("dangling\\").is_err());
    }

    #[test]
    fn binary_cells_and_rows_round_trip() {
        for v in [
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::str(""),
            Value::str("plain"),
            Value::str("tab\t nl\n cr\r bs\\ nul\0 done"),
        ] {
            let mut buf = Vec::new();
            put_cell(&mut buf, &v);
            let mut r = BinReader::new(&buf);
            assert_eq!(r.cell().unwrap(), v);
            r.end().unwrap();
        }
        for row in [row![], row![1, "a\tb", true, ""]] {
            let mut buf = Vec::new();
            put_row(&mut buf, &row);
            let mut r = BinReader::new(&buf);
            assert_eq!(r.row().unwrap(), row);
            r.end().unwrap();
        }
    }

    #[test]
    fn binary_primitives_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        put_u64(&mut buf, 0x0123_4567_89ab_cdef);
        put_str(&mut buf, "héllo");
        let mut r = BinReader::new(&buf);
        assert_eq!(r.u32().unwrap(), u32::MAX);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.str().unwrap(), "héllo");
        r.end().unwrap();
    }

    #[test]
    fn malformed_binary_is_rejected_not_panicked() {
        // Truncations of a valid row at every byte boundary.
        let mut buf = Vec::new();
        put_row(&mut buf, &row![7, "seven", false]);
        for cut in 0..buf.len() {
            let mut r = BinReader::new(&buf[..cut]);
            let decoded = r.row().and_then(|row| r.end().map(|()| row));
            assert!(decoded.is_err(), "truncation at {cut} should not decode");
        }
        // Bad tags and bad payloads.
        for bad in [
            vec![1, 0, 0, 0, 99],                  // unknown cell tag
            vec![1, 0, 0, 0, 0, 2],                // bool byte out of range
            vec![1, 0, 0, 0, 2, 1, 0, 0, 0, 0xff], // non-UTF-8 string
            vec![0xff, 0xff, 0xff, 0xff],          // absurd cell count
        ] {
            let mut r = BinReader::new(&bad);
            assert!(r.row().is_err(), "{bad:?} should not decode");
        }
        // Trailing garbage is an error too.
        let mut buf = Vec::new();
        put_row(&mut buf, &row![1]);
        buf.push(0);
        let mut r = BinReader::new(&buf);
        assert!(r.row().and_then(|row| r.end().map(|()| row)).is_err());
    }
}
