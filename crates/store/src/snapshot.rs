//! Whole-database snapshot serialization.
//!
//! A [`Database`] renders as a line-oriented text document, one block per
//! table in name order:
//!
//! ```text
//! %table <name>
//! %columns <col>:<ty>\t<col>:<ty>...
//! %key <col>\t<col>...
//! %rows <n>
//! <cell>\t<cell>...        (n row lines, codec of [`crate::codec`])
//! ```
//!
//! Names are escaped with the shared codec escaping, so tabs/newlines in
//! table or column names round-trip. Secondary indexes are *not* part of
//! the snapshot (they are derived data, not table value); callers rebuild
//! them after decoding. The engine's checkpoint files wrap this document
//! with a sequence-number header.

use crate::codec::{decode_row, encode_row, escape, unescape};
use crate::database::Database;
use crate::error::StoreError;
use crate::schema::{Column, Schema};
use crate::table::Table;
use crate::value::ValueType;

fn encode_type(ty: ValueType) -> &'static str {
    match ty {
        ValueType::Bool => "bool",
        ValueType::Int => "int",
        ValueType::Str => "str",
    }
}

fn decode_type(s: &str) -> Result<ValueType, StoreError> {
    match s {
        "bool" => Ok(ValueType::Bool),
        "int" => Ok(ValueType::Int),
        "str" => Ok(ValueType::Str),
        _ => Err(StoreError::Codec(format!("unknown value type: {s}"))),
    }
}

/// Serialise a database to the snapshot text format.
pub fn encode_database(db: &Database) -> String {
    let mut out = String::new();
    for name in db.table_names() {
        let table = db.table(name).expect("name came from the database");
        out.push_str(&format!("%table {}\n", escape(name)));
        let cols: Vec<String> = table
            .schema()
            .columns()
            .iter()
            .map(|c| format!("{}:{}", escape(&c.name), encode_type(c.ty)))
            .collect();
        out.push_str(&format!("%columns {}\n", cols.join("\t")));
        let key: Vec<String> = table.schema().key().iter().map(|k| escape(k)).collect();
        out.push_str(&format!("%key {}\n", key.join("\t")));
        out.push_str(&format!("%rows {}\n", table.len()));
        for row in table.rows() {
            out.push_str(&encode_row(row));
            out.push('\n');
        }
    }
    out
}

fn expect_directive<'a>(line: Option<&'a str>, directive: &str) -> Result<&'a str, StoreError> {
    let line =
        line.ok_or_else(|| StoreError::Codec(format!("truncated snapshot: expected {directive}")))?;
    // `%key ` with an empty tail renders as `%key` (no trailing space).
    if line == directive {
        return Ok("");
    }
    line.strip_prefix(directive)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| StoreError::Codec(format!("expected {directive} line, got: {line}")))
}

/// Parse the snapshot text format back into a database.
pub fn decode_database(text: &str) -> Result<Database, StoreError> {
    let mut db = Database::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let name = unescape(expect_directive(Some(line), "%table")?)?;

        let cols_body = expect_directive(lines.next(), "%columns")?;
        let mut columns = Vec::new();
        if !cols_body.is_empty() {
            for cell in cols_body.split('\t') {
                let (cname, ty) = cell
                    .rsplit_once(':')
                    .ok_or_else(|| StoreError::Codec(format!("untyped column: {cell}")))?;
                columns.push(Column::new(unescape(cname)?, decode_type(ty)?));
            }
        }

        let key_body = expect_directive(lines.next(), "%key")?;
        let key: Vec<String> = if key_body.is_empty() {
            Vec::new()
        } else {
            key_body
                .split('\t')
                .map(unescape)
                .collect::<Result<_, _>>()?
        };
        let schema = Schema::new(columns, key)
            .map_err(|e| StoreError::Codec(format!("snapshot schema for {name}: {e}")))?;

        let rows_body = expect_directive(lines.next(), "%rows")?;
        let n: usize = rows_body
            .parse()
            .map_err(|_| StoreError::Codec(format!("bad row count: {rows_body}")))?;
        let mut table = Table::new(schema);
        for _ in 0..n {
            let row_line = lines
                .next()
                .ok_or_else(|| StoreError::Codec("truncated snapshot: missing row".into()))?;
            let row = decode_row(row_line)?;
            table
                .insert(row)
                .map_err(|e| StoreError::Codec(format!("snapshot row for {name}: {e}")))?;
        }
        db.create_table(name.clone(), table)
            .map_err(|e| StoreError::Codec(format!("snapshot table {name}: {e}")))?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample() -> Database {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("ok", ValueType::Bool),
            ],
            &["id"],
        )
        .unwrap();
        let t = Table::from_rows(
            schema,
            vec![
                row![1, "ada", true],
                row![2, "tab\there\nand newline", false],
            ],
        )
        .unwrap();
        let unkeyed = Table::from_rows(
            Schema::build(&[("x", ValueType::Int)], &[]).unwrap(),
            vec![row![7], row![8]],
        )
        .unwrap();
        let mut db = Database::new();
        db.create_table("people", t).unwrap();
        db.create_table("odd\tname", unkeyed).unwrap();
        db.create_table("empty", Table::new(Schema::build(&[], &[]).unwrap()))
            .unwrap();
        db
    }

    #[test]
    fn database_round_trips() {
        let db = sample();
        let text = encode_database(&db);
        let back = decode_database(&text).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn empty_database_round_trips() {
        let db = Database::new();
        assert_eq!(decode_database(&encode_database(&db)).unwrap(), db);
    }

    #[test]
    fn truncated_snapshots_are_rejected() {
        let text = encode_database(&sample());
        // Chopping anywhere strictly inside the document must error or
        // decode to a *different* database, never silently equal.
        for cut in [1, text.len() / 3, text.len() - 2] {
            let prefix = &text[..cut];
            if let Ok(db) = decode_database(prefix) {
                assert_ne!(db, sample(), "cut at {cut} decoded to the full db");
            }
        }
        assert!(matches!(
            decode_database("%rows 1"),
            Err(StoreError::Codec(_))
        ));
        assert!(matches!(
            decode_database("%table t\n%columns a:int\n%key\n%rows 2\ni:1"),
            Err(StoreError::Codec(_))
        ));
    }

    #[test]
    fn indexes_are_not_serialized() {
        let mut db = sample();
        db.table_mut("people")
            .unwrap()
            .create_index("name")
            .unwrap();
        let back = decode_database(&encode_database(&db)).unwrap();
        assert!(back.table("people").unwrap().indexed_columns().is_empty());
        assert_eq!(back, db); // equality ignores indexes
    }
}
