//! Tables: schema-validated sets of rows with key-based indexing and the
//! relational algebra.

use std::collections::BTreeMap;

use crate::error::StoreError;
use crate::index::ColumnIndex;
use crate::predicate::Predicate;
use crate::row::{project_row, Row};
use crate::schema::Schema;
use crate::value::Value;

/// A relational table: a [`Schema`] plus a set of rows indexed by their
/// key values.
///
/// Rows are stored in a `BTreeMap` keyed by the key-column values (the
/// whole row when the schema has no declared key), giving set semantics,
/// deterministic iteration order, O(log n) point operations and cheap
/// ordered diffs.
///
/// A table may additionally carry secondary [`ColumnIndex`]es (see
/// [`Table::create_index`]); they are maintained by every mutation and
/// consulted by [`Table::select`] and [`Table::natural_join`], but are
/// *not* part of the table's value: two tables with equal schemas and rows
/// compare equal regardless of their indexes.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: BTreeMap<Row, Row>,
    indexes: Vec<ColumnIndex>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Table) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Eq for Table {}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: BTreeMap::new(),
            indexes: Vec::new(),
        }
    }

    /// Build a table from rows, validating each and rejecting key clashes.
    pub fn from_rows(
        schema: Schema,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<Table, StoreError> {
        let mut t = Table::new(schema);
        for r in rows {
            t.insert(r)?;
        }
        Ok(t)
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate rows in key order.
    pub fn rows(&self) -> impl Iterator<Item = &Row> {
        self.rows.values()
    }

    /// Iterate `(key, row)` pairs in key order. The key is the projection
    /// of the row onto the schema's key columns (the whole row when the
    /// schema declares no key), so two tables with equal schemas can be
    /// diffed by a single ordered merge over this iterator.
    pub fn entries(&self) -> impl Iterator<Item = (&Row, &Row)> {
        self.rows.iter()
    }

    /// All rows, cloned, in key order.
    pub fn to_rows(&self) -> Vec<Row> {
        self.rows.values().cloned().collect()
    }

    /// The key values of a row under this schema.
    pub fn key_of(&self, row: &Row) -> Row {
        project_row(row, &self.schema.key_indices())
    }

    /// Does an identical row exist?
    pub fn contains(&self, row: &Row) -> bool {
        self.rows.get(&self.key_of(row)) == Some(row)
    }

    /// Look up a row by its key values.
    pub fn get_by_key(&self, key: &Row) -> Option<&Row> {
        self.rows.get(key)
    }

    /// Insert a row. Inserting an identical row is a no-op; a row whose
    /// key matches a *different* existing row is a [`StoreError::KeyViolation`].
    pub fn insert(&mut self, row: Row) -> Result<(), StoreError> {
        self.schema.check_row(&row)?;
        let key = self.key_of(&row);
        match self.rows.get(&key) {
            Some(existing) if *existing != row => Err(StoreError::KeyViolation(format!(
                "key {key:?} already bound to a different row"
            ))),
            Some(_) => Ok(()), // identical row: no-op, indexes already current
            None => {
                for idx in &mut self.indexes {
                    idx.add(&key, &row);
                }
                self.rows.insert(key, row);
                Ok(())
            }
        }
    }

    /// Insert or replace by key, returning the replaced row if any.
    pub fn upsert(&mut self, row: Row) -> Result<Option<Row>, StoreError> {
        self.schema.check_row(&row)?;
        let key = self.key_of(&row);
        let replaced = self.rows.insert(key.clone(), row);
        if !self.indexes.is_empty() {
            let row = &self.rows[&key];
            for idx in &mut self.indexes {
                if let Some(old) = &replaced {
                    idx.remove(&key, old);
                }
                idx.add(&key, row);
            }
        }
        Ok(replaced)
    }

    /// Delete an identical row; returns whether it was present.
    pub fn delete(&mut self, row: &Row) -> bool {
        let key = self.key_of(row);
        if self.rows.get(&key) == Some(row) {
            self.rows.remove(&key);
            for idx in &mut self.indexes {
                idx.remove(&key, row);
            }
            true
        } else {
            false
        }
    }

    /// Delete by key values; returns the removed row if any.
    pub fn delete_by_key(&mut self, key: &Row) -> Option<Row> {
        let removed = self.rows.remove(key);
        if let Some(row) = &removed {
            for idx in &mut self.indexes {
                idx.remove(key, row);
            }
        }
        removed
    }

    /// Remove all rows.
    pub fn clear(&mut self) {
        self.rows.clear();
        for idx in &mut self.indexes {
            idx.clear();
        }
    }

    // ------------------------------------------------------------------
    // Secondary indexes.
    // ------------------------------------------------------------------

    /// Create a secondary index on `column`. Idempotent: re-indexing an
    /// already-indexed column is a no-op. Indexing an unknown column is an
    /// error.
    pub fn create_index(&mut self, column: &str) -> Result<(), StoreError> {
        let col_idx = self.schema.index_of(column)?;
        if self.indexes.iter().any(|i| i.column() == column) {
            return Ok(());
        }
        let mut idx = ColumnIndex::new(column, col_idx);
        for (key, row) in &self.rows {
            idx.add(key, row);
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// Drop the index on `column`; returns whether one existed.
    pub fn drop_index(&mut self, column: &str) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|i| i.column() != column);
        self.indexes.len() != before
    }

    /// Names of the indexed columns.
    pub fn indexed_columns(&self) -> Vec<&str> {
        self.indexes.iter().map(ColumnIndex::column).collect()
    }

    /// The index on `column`, if one exists.
    pub fn index(&self, column: &str) -> Option<&ColumnIndex> {
        self.indexes.iter().find(|i| i.column() == column)
    }

    // ------------------------------------------------------------------
    // Key ranges: ordered access for range sharding and rebalancing.
    // ------------------------------------------------------------------

    /// Iterate rows whose key lies in `[lo, hi)` (in key order; `None`
    /// leaves that side unbounded). Keys compare by the schema's key
    /// projection, so a sharding layer can slice a table into contiguous
    /// key ranges without scanning rows outside the range.
    pub fn rows_in_key_range<'a>(
        &'a self,
        lo: Option<&'a Row>,
        hi: Option<&'a Row>,
    ) -> impl Iterator<Item = &'a Row> + 'a {
        use std::ops::Bound;
        let lo = lo.map_or(Bound::Unbounded, Bound::Included);
        let hi = hi.map_or(Bound::Unbounded, Bound::Excluded);
        self.rows.range::<Row, _>((lo, hi)).map(|(_, row)| row)
    }

    /// Split off the upper key range: rows with key `>= at` move into the
    /// returned table (same schema, secondary indexes rebuilt on both
    /// sides); rows with key `< at` stay. O(log n) for the tree split
    /// plus O(moved) index maintenance.
    pub fn split_off_key(&mut self, at: &Row) -> Table {
        let moved = self.rows.split_off(at);
        for idx in &mut self.indexes {
            for (key, row) in &moved {
                idx.remove(key, row);
            }
        }
        let mut out = Table {
            schema: self.schema.clone(),
            rows: moved,
            indexes: Vec::new(),
        };
        for column in self.indexed_columns().into_iter().map(String::from) {
            out.create_index(&column)
                .expect("column exists: it was indexed on the source table");
        }
        out
    }

    /// The key of the row at position `idx` in key order (`None` when out
    /// of bounds). A rebalancer picks split points with this: `key_at(len
    /// / 2)` is the median key.
    pub fn key_at(&self, idx: usize) -> Option<Row> {
        self.rows.keys().nth(idx).cloned()
    }

    // ------------------------------------------------------------------
    // Relational algebra. Each operator returns a fresh table.
    // ------------------------------------------------------------------

    /// σ: the rows satisfying `pred`. Same schema.
    ///
    /// When the predicate constrains an indexed column (see
    /// [`Table::create_index`]), candidates come from an index seek rather
    /// than a full scan; with several candidate probes the planner picks
    /// the one estimating the fewest rows
    /// ([`Predicate::index_probe_with`]), so a tight range on a
    /// high-cardinality column beats an equality probe on a skewed one.
    /// The complete predicate is still evaluated on each candidate, so the
    /// result is identical either way.
    pub fn select(&self, pred: &Predicate) -> Result<Table, StoreError> {
        pred.validate(&self.schema)?;
        let mut out = Table::new(self.schema.clone());
        if let Some(probe) = pred.index_probe_with(&self.indexes) {
            let idx = self
                .index(&probe.column)
                .expect("probe only names indexed columns");
            for key in idx.keys_for(&probe) {
                let row = &self.rows[key];
                if pred.eval(&self.schema, row)? {
                    out.rows.insert(key.clone(), row.clone());
                }
            }
        } else {
            for row in self.rows.values() {
                if pred.eval(&self.schema, row)? {
                    out.rows.insert(out.key_of(row), row.clone());
                }
            }
        }
        Ok(out)
    }

    /// π: project onto named columns, deduplicating (set semantics).
    ///
    /// If the projection drops key columns, the result is keyed on the
    /// whole row; duplicate projected rows collapse silently.
    pub fn project(&self, names: &[String]) -> Result<Table, StoreError> {
        let schema = self.schema.project(names)?;
        let indices = self.schema.indices_of(names)?;
        let mut out = Table::new(schema);
        for row in self.rows.values() {
            let projected = project_row(row, &indices);
            let key = out.key_of(&projected);
            out.rows.insert(key, projected);
        }
        Ok(out)
    }

    /// ρ: rename columns according to `(old, new)` pairs.
    pub fn rename(&self, renames: &[(String, String)]) -> Result<Table, StoreError> {
        let schema = self.schema.rename(renames)?;
        let mut out = Table::new(schema);
        for row in self.rows.values() {
            let key = out.key_of(row);
            out.rows.insert(key, row.clone());
        }
        Ok(out)
    }

    /// ∪: set union. Schemas must match exactly; key clashes between
    /// distinct rows are a [`StoreError::KeyViolation`].
    pub fn union(&self, other: &Table) -> Result<Table, StoreError> {
        if !self.schema.same_columns(&other.schema) {
            return Err(StoreError::SchemaMismatch(
                "union of different schemas".into(),
            ));
        }
        let mut out = self.clone();
        for row in other.rows.values() {
            out.insert(row.clone())?;
        }
        Ok(out)
    }

    /// ∖: set difference (rows of `self` not present in `other`).
    pub fn difference(&self, other: &Table) -> Result<Table, StoreError> {
        if !self.schema.same_columns(&other.schema) {
            return Err(StoreError::SchemaMismatch(
                "difference of different schemas".into(),
            ));
        }
        let mut out = Table::new(self.schema.clone());
        for row in self.rows.values() {
            if !other.contains(row) {
                out.rows.insert(out.key_of(row), row.clone());
            }
        }
        Ok(out)
    }

    /// ∩: set intersection.
    pub fn intersect(&self, other: &Table) -> Result<Table, StoreError> {
        if !self.schema.same_columns(&other.schema) {
            return Err(StoreError::SchemaMismatch(
                "intersection of different schemas".into(),
            ));
        }
        let mut out = Table::new(self.schema.clone());
        for row in self.rows.values() {
            if other.contains(row) {
                out.rows.insert(out.key_of(row), row.clone());
            }
        }
        Ok(out)
    }

    /// ⋈: natural join on the shared column names.
    ///
    /// The result schema is `self`'s columns followed by `other`'s
    /// non-shared columns; its key is the union of both keys (falling back
    /// to whole-row if either side had whole-row keying).
    pub fn natural_join(&self, other: &Table) -> Result<Table, StoreError> {
        let shared = self.schema.shared_columns(&other.schema)?;
        let left_shared = self.schema.indices_of(&shared)?;
        let right_shared = other.schema.indices_of(&shared)?;
        let right_rest: Vec<usize> = (0..other.schema.arity())
            .filter(|i| !right_shared.contains(i))
            .collect();

        // Result schema: left columns ++ right-only columns.
        let mut columns: Vec<crate::schema::Column> = self.schema.columns().to_vec();
        for &i in &right_rest {
            columns.push(other.schema.columns()[i].clone());
        }
        let key: Vec<String> = if self.schema.key().is_empty() || other.schema.key().is_empty() {
            Vec::new()
        } else {
            let mut k: Vec<String> = self.schema.key().to_vec();
            for kk in other.schema.key() {
                if !k.contains(kk) {
                    k.push(kk.clone());
                }
            }
            k
        };
        let schema = Schema::new(columns, key)?;

        // Join on shared values: reuse an existing secondary index on the
        // right table when the join is on exactly that one column;
        // otherwise build a transient map for this join.
        let reusable: Option<&ColumnIndex> = match shared.as_slice() {
            [only] => other.index(only),
            _ => None,
        };
        let mut right_index: BTreeMap<Row, Vec<&Row>> = BTreeMap::new();
        if reusable.is_none() {
            for row in other.rows.values() {
                right_index
                    .entry(project_row(row, &right_shared))
                    .or_default()
                    .push(row);
            }
        }
        let matches_of = |lkey: &Row| -> Vec<&Row> {
            match reusable {
                Some(idx) => idx.keys_eq(&lkey[0]).map(|k| &other.rows[k]).collect(),
                None => right_index.get(lkey).cloned().unwrap_or_default(),
            }
        };

        let mut out = Table::new(schema);
        for lrow in self.rows.values() {
            let lkey = project_row(lrow, &left_shared);
            for rrow in matches_of(&lkey) {
                let mut joined = lrow.clone();
                for &i in &right_rest {
                    joined.push(rrow[i].clone());
                }
                let key = out.key_of(&joined);
                if let Some(existing) = out.rows.get(&key) {
                    if *existing != joined {
                        return Err(StoreError::KeyViolation(format!(
                            "join produced two rows with key {key:?}"
                        )));
                    }
                }
                out.rows.insert(key, joined);
            }
        }
        Ok(out)
    }

    /// Pretty-print the table with a header row.
    pub fn render(&self) -> String {
        let names = self.schema.column_names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .values()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line
        };
        let header: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        out.push_str(&fmt_row(&header, &widths));
        out.push('\n');
        out.push_str(&format!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &rendered {
            out.push('\n');
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Operand, Predicate};
    use crate::row;
    use crate::value::ValueType;

    fn people() -> Table {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("age", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                row![1, "ada", 36],
                row![2, "alan", 41],
                row![3, "grace", 85],
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_validates_types_and_keys() {
        let mut t = people();
        assert!(matches!(
            t.insert(row![1, "imposter", 1]),
            Err(StoreError::KeyViolation(_))
        ));
        assert!(matches!(
            t.insert(row!["x", "y", 1]),
            Err(StoreError::TypeMismatch { .. })
        ));
        // Re-inserting an identical row is a no-op.
        assert!(t.insert(row![1, "ada", 36]).is_ok());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn upsert_replaces_by_key() {
        let mut t = people();
        let old = t.upsert(row![1, "ada lovelace", 36]).unwrap();
        assert_eq!(old, Some(row![1, "ada", 36]));
        assert_eq!(
            t.get_by_key(&row![1]).unwrap()[1],
            Value::str("ada lovelace")
        );
    }

    #[test]
    fn delete_by_row_and_key() {
        let mut t = people();
        assert!(t.delete(&row![2, "alan", 41]));
        assert!(!t.delete(&row![2, "alan", 41]));
        assert_eq!(t.delete_by_key(&row![3]), Some(row![3, "grace", 85]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn select_filters_rows() {
        let t = people();
        let pred = Predicate::gt(Operand::col("age"), Operand::val(40));
        let s = t.select(&pred).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.rows().all(|r| r[2].as_int().unwrap() > 40));
    }

    #[test]
    fn project_deduplicates() {
        let schema = Schema::build(&[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap();
        let t = Table::from_rows(schema, vec![row![1, 10], row![1, 20], row![2, 10]]).unwrap();
        let p = t.project(&["a".to_string()]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn rename_changes_header_not_rows() {
        let t = people();
        let r = t
            .rename(&[("name".to_string(), "full_name".to_string())])
            .unwrap();
        assert!(r.schema().index_of("full_name").is_ok());
        assert_eq!(r.len(), 3);
        assert_eq!(r.to_rows(), t.to_rows());
    }

    #[test]
    fn union_difference_intersect_are_setlike() {
        let schema = Schema::build(&[("x", ValueType::Int)], &[]).unwrap();
        let t1 = Table::from_rows(schema.clone(), vec![row![1], row![2]]).unwrap();
        let t2 = Table::from_rows(schema, vec![row![2], row![3]]).unwrap();
        assert_eq!(t1.union(&t2).unwrap().len(), 3);
        assert_eq!(t1.difference(&t2).unwrap().to_rows(), vec![row![1]]);
        assert_eq!(t1.intersect(&t2).unwrap().to_rows(), vec![row![2]]);
    }

    #[test]
    fn natural_join_matches_on_shared_columns() {
        let orders = Table::from_rows(
            Schema::build(
                &[("oid", ValueType::Int), ("pid", ValueType::Int)],
                &["oid"],
            )
            .unwrap(),
            vec![row![100, 1], row![101, 2], row![102, 1]],
        )
        .unwrap();
        let products = Table::from_rows(
            Schema::build(
                &[("pid", ValueType::Int), ("pname", ValueType::Str)],
                &["pid"],
            )
            .unwrap(),
            vec![row![1, "widget"], row![2, "gadget"]],
        )
        .unwrap();
        let j = orders.natural_join(&products).unwrap();
        assert_eq!(j.len(), 3);
        assert_eq!(j.schema().column_names(), vec!["oid", "pid", "pname"]);
        let r = j.get_by_key(&row![100, 1]).unwrap();
        assert_eq!(r[2], Value::str("widget"));
    }

    #[test]
    fn join_with_no_matches_is_empty() {
        let t1 = Table::from_rows(
            Schema::build(&[("k", ValueType::Int)], &[]).unwrap(),
            vec![row![1]],
        )
        .unwrap();
        let t2 = Table::from_rows(
            Schema::build(&[("k", ValueType::Int)], &[]).unwrap(),
            vec![row![2]],
        )
        .unwrap();
        assert!(t1.natural_join(&t2).unwrap().is_empty());
    }

    #[test]
    fn algebra_identities_hold() {
        // σ_p(t1 ∪ t2) = σ_p(t1) ∪ σ_p(t2)
        let schema = Schema::build(&[("x", ValueType::Int)], &[]).unwrap();
        let t1 = Table::from_rows(schema.clone(), vec![row![1], row![5]]).unwrap();
        let t2 = Table::from_rows(schema, vec![row![3], row![7]]).unwrap();
        let p = Predicate::gt(Operand::col("x"), Operand::val(2));
        let lhs = t1.union(&t2).unwrap().select(&p).unwrap();
        let rhs = t1
            .select(&p)
            .unwrap()
            .union(&t2.select(&p).unwrap())
            .unwrap();
        assert_eq!(lhs, rhs);

        // π is idempotent.
        let cols = vec!["x".to_string()];
        let once = t1.project(&cols).unwrap();
        let twice = once.project(&cols).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn indexed_select_matches_full_scan() {
        let mut t = people();
        t.create_index("age").unwrap();
        assert_eq!(t.indexed_columns(), vec!["age"]);
        let preds = [
            Predicate::eq(Operand::col("age"), Operand::val(41)),
            Predicate::gt(Operand::col("age"), Operand::val(40)),
            Predicate::le(Operand::col("age"), Operand::val(41)),
            Predicate::lt(Operand::val(40), Operand::col("age")),
            Predicate::eq(Operand::col("age"), Operand::val(41))
                .and(Predicate::eq(Operand::col("name"), Operand::val("alan"))),
        ];
        let plain = people();
        for p in preds {
            assert_eq!(t.select(&p).unwrap(), plain.select(&p).unwrap(), "pred {p}");
        }
    }

    #[test]
    fn indexes_follow_mutations_and_clones() {
        let mut t = people();
        t.create_index("age").unwrap();
        t.create_index("age").unwrap(); // idempotent
        assert_eq!(t.indexed_columns().len(), 1);

        let eq41 = Predicate::eq(Operand::col("age"), Operand::val(41));
        t.upsert(row![2, "alan turing", 41]).unwrap(); // replace, same age
        t.upsert(row![1, "ada", 41]).unwrap(); // age moves 36 -> 41
        t.insert(row![4, "barbara", 41]).unwrap();
        t.delete(&row![3, "grace", 85]);
        let selected = t.select(&eq41).unwrap();
        assert_eq!(selected.len(), 3);

        // A clone keeps the index and diverges independently.
        let mut c = t.clone();
        c.delete_by_key(&row![4]);
        assert_eq!(c.select(&eq41).unwrap().len(), 2);
        assert_eq!(t.select(&eq41).unwrap().len(), 3);

        // Equality ignores indexes.
        let plain = {
            let mut p = Table::from_rows(t.schema().clone(), t.rows().cloned()).unwrap();
            assert!(p.indexed_columns().is_empty());
            p.drop_index("age");
            p
        };
        assert_eq!(t, plain);

        assert!(t.drop_index("age"));
        assert!(!t.drop_index("age"));
    }

    #[test]
    fn create_index_rejects_unknown_columns() {
        let mut t = people();
        assert!(t.create_index("ghost").is_err());
    }

    #[test]
    fn join_reuses_right_index() {
        let orders = Table::from_rows(
            Schema::build(
                &[("oid", ValueType::Int), ("pid", ValueType::Int)],
                &["oid"],
            )
            .unwrap(),
            vec![row![100, 1], row![101, 2], row![102, 1]],
        )
        .unwrap();
        let mut products = Table::from_rows(
            Schema::build(
                &[("pid", ValueType::Int), ("pname", ValueType::Str)],
                &["pid"],
            )
            .unwrap(),
            vec![row![1, "widget"], row![2, "gadget"]],
        )
        .unwrap();
        let plain = orders.natural_join(&products).unwrap();
        products.create_index("pid").unwrap();
        let indexed = orders.natural_join(&products).unwrap();
        assert_eq!(plain, indexed);
    }

    #[test]
    fn render_produces_aligned_ascii() {
        let t = people();
        let s = t.render();
        assert!(s.starts_with("| id | name"));
        assert!(s.contains("| 1  | ada"));
    }

    #[test]
    fn key_range_iteration_is_half_open() {
        let t = people();
        let ids = |lo: Option<Row>, hi: Option<Row>| -> Vec<i64> {
            t.rows_in_key_range(lo.as_ref(), hi.as_ref())
                .map(|r| r[0].clone())
                .filter_map(|v| match v {
                    Value::Int(i) => Some(i),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(ids(None, None), vec![1, 2, 3]);
        assert_eq!(ids(Some(row![2]), None), vec![2, 3]);
        assert_eq!(ids(None, Some(row![2])), vec![1]);
        assert_eq!(ids(Some(row![2]), Some(row![3])), vec![2]);
        assert_eq!(ids(Some(row![9]), None), Vec::<i64>::new());
    }

    #[test]
    fn split_off_key_moves_the_upper_range_with_indexes() {
        let mut t = people();
        t.create_index("age").unwrap();
        let upper = t.split_off_key(&row![2]);
        assert_eq!(t.len(), 1);
        assert!(t.contains(&row![1, "ada", 36]));
        assert_eq!(upper.len(), 2);
        assert!(upper.contains(&row![2, "alan", 41]) && upper.contains(&row![3, "grace", 85]));
        // Both sides keep a consistent age index.
        assert_eq!(t.indexed_columns(), vec!["age"]);
        assert_eq!(upper.indexed_columns(), vec!["age"]);
        let hit = upper
            .select(&Predicate::eq(Operand::col("age"), Operand::val(41)))
            .unwrap();
        assert_eq!(hit.len(), 1);
        let miss = t
            .select(&Predicate::eq(Operand::col("age"), Operand::val(41)))
            .unwrap();
        assert!(miss.is_empty(), "moved rows left the source index");
    }

    #[test]
    fn key_at_picks_split_points() {
        let t = people();
        assert_eq!(t.key_at(0), Some(row![1]));
        assert_eq!(t.key_at(1), Some(row![2]));
        assert_eq!(t.key_at(3), None);
    }
}
