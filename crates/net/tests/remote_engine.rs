//! The acceptance gate for the network front end: the *same*
//! engine-polymorphic conformance suite that runs against the
//! in-process engines ([`esm_engine::testkit`], driven by
//! `crates/engine/tests/view_maintenance.rs`) runs here, unmodified,
//! against a [`RemoteEngine`] speaking to a [`NetServer`] over a real
//! loopback socket — fronting both an unsharded and a sharded host —
//! plus a 64-connection concurrency run racing optimistic editors
//! against a single-threaded oracle.

use esm_engine::testkit::{self, check_view_maintenance, seed_db, KEYS};
use esm_engine::{
    ArcEngine, Engine, EngineError, EngineServer, Session, ShardRouter, ShardedEngineServer,
};
use esm_net::{NetServer, NetServerConfig, RemoteEngine};
use esm_relational::ViewDef;
use esm_store::{row, Operand, Predicate, Schema, Table, ValueType};

fn serve(engine: ArcEngine) -> (NetServer, std::net::SocketAddr) {
    let server =
        NetServer::bind(engine, "127.0.0.1:0", NetServerConfig::default()).expect("loopback bind");
    let addr = server.local_addr();
    (server, addr)
}

fn connect(addr: std::net::SocketAddr) -> RemoteEngine {
    RemoteEngine::connect(addr).expect("loopback connect")
}

/// A deterministic script covering every op family (upserts, deletes,
/// cross-key transfers) — the same shape the in-process proptests draw
/// randomly.
fn script() -> Vec<(u8, i64, i64)> {
    (0..30u8)
        .map(|i| (i % 10, i as i64 * 7, i as i64 * 13))
        .collect()
}

#[test]
fn remote_engine_satisfies_the_view_maintenance_law_unsharded() {
    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    let remote = connect(addr);
    // The exact same suite body the in-process engines run.
    check_view_maintenance(&remote, &script());
    assert!(server.stats().requests > 0);
    server.shutdown();
}

#[test]
fn remote_engine_satisfies_the_view_maintenance_law_sharded() {
    let host = ShardedEngineServer::with_router(
        seed_db(),
        ShardRouter::uniform_int(4, 0, KEYS).expect("router"),
    )
    .expect("sharded engine");
    let (server, addr) = serve(host.as_engine());
    let remote = connect(addr);
    check_view_maintenance(&remote, &script());
    // The wire client's reads were served by shard-pruned windows and
    // its transfers committed through cross-shard 2PC.
    let m = remote.metrics().expect("metrics over the wire");
    assert!(m.shard.cross_shard_commits > 0, "transfers ran 2PC");
    assert!(m.view.shards_pruned > 0, "key-bounded views pruned shards");
    server.shutdown();
}

#[test]
fn sixty_four_connections_race_the_oracle_on_one_engine() {
    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    // 64 independent client connections, multiplexed by the server onto
    // one engine; each runs concurrent optimistic edits. The oracle
    // (single-threaded re-execution of the successful commuting ops)
    // must match exactly — no lost updates across the wire.
    let clients: Vec<ArcEngine> = (0..64).map(|_| connect(addr).as_engine()).collect();
    let total = testkit::check_concurrent_edits(clients, 4);
    assert_eq!(total, 64 * 4);
    let stats = server.stats();
    assert!(
        stats.accepted >= 64,
        "{} connections accepted",
        stats.accepted
    );
    server.shutdown();
}

#[test]
fn sixty_four_connections_race_the_oracle_on_a_sharded_engine() {
    let host = ShardedEngineServer::with_router(
        seed_db(),
        ShardRouter::uniform_int(4, 0, KEYS).expect("router"),
    )
    .expect("sharded engine");
    let (server, addr) = serve(host.as_engine());
    let clients: Vec<ArcEngine> = (0..64).map(|_| connect(addr).as_engine()).collect();
    let total = testkit::check_concurrent_edits(clients, 3);
    assert_eq!(total, 64 * 3);
    server.shutdown();
}

#[test]
fn the_full_surface_works_end_to_end() {
    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    let remote = connect(addr);
    remote.ping().unwrap();
    testkit::check_surface_smoke(&remote);
    // checkpoint on an in-memory engine answers None over the wire.
    assert_eq!(remote.checkpoint().unwrap(), None);
    server.shutdown();
}

#[test]
fn sessions_and_views_are_host_location_oblivious() {
    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());

    // A Session over a RemoteEngine — the same client code that runs
    // in-process.
    let session = Session::new(connect(addr).as_engine());
    let view = session
        .define_view(
            "low",
            "t",
            &ViewDef::base().select(Predicate::lt(Operand::col("id"), Operand::val(10))),
        )
        .unwrap();
    assert_eq!(view.name(), "low");
    let delta = session
        .edit("low", |v| Ok(v.upsert(row![3, "g1", 33]).map(|_| ())?))
        .unwrap();
    assert_eq!(delta.inserted, vec![row![3, "g1", 33]]);
    let receipt = session
        .transact(|db| {
            db.table_mut("t")?.upsert(row![5, "g0", 55])?;
            Ok(())
        })
        .unwrap();
    assert!(receipt.stamp > 0);
    assert_eq!(session.last_stamp(), receipt.stamp);

    // A second connection observes the entangled state.
    let other = connect(addr);
    let low = other.view("low").unwrap();
    let window = low.get().unwrap();
    assert!(window.contains(&row![3, "g1", 33]));
    assert!(window.contains(&row![5, "g0", 55]));
    // And the view handle exposes its (remote) host uniformly.
    assert_eq!(low.engine().table_names().expect("table names"), vec!["t"]);
    server.shutdown();
}

#[test]
fn structured_errors_cross_the_wire() {
    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    let remote = connect(addr);

    assert!(matches!(
        remote.read_view("ghost"),
        Err(EngineError::NoSuchView(name)) if name == "ghost"
    ));
    assert!(matches!(
        remote.table("ghost"),
        Err(EngineError::NoSuchTable(name)) if name == "ghost"
    ));
    remote.define_view("v", "t", &ViewDef::base()).unwrap();
    assert!(matches!(
        remote.define_view("v", "t", &ViewDef::base()),
        Err(EngineError::ViewExists(_))
    ));
    // An ill-fitting view write surfaces a store-side rejection without
    // wedging the server.
    let bad = Table::from_rows(
        Schema::build(&[("id", ValueType::Int)], &["id"]).unwrap(),
        vec![row![1]],
    )
    .unwrap();
    assert!(matches!(
        remote.write_view("v", bad),
        Err(EngineError::Store(_))
    ));
    assert_eq!(remote.read_view("v").unwrap().len(), 40);
    server.shutdown();
}

#[test]
fn a_dropped_connection_does_not_disturb_the_others() {
    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    let keeper = connect(addr);
    keeper.define_view("all", "t", &ViewDef::base()).unwrap();
    {
        let doomed = connect(addr);
        doomed.ping().unwrap();
        // Dropped here: the server reaps it on its next pass.
    }
    let delta = keeper
        .edit_view_optimistic("all", 8, &|v: &mut Table| {
            v.upsert(row![77, "g0", 7])?;
            Ok(())
        })
        .unwrap();
    assert_eq!(delta.inserted.len(), 1);
    assert!(keeper
        .read_view("all")
        .unwrap()
        .contains(&row![77, "g0", 7]));
    server.shutdown();
}

#[test]
fn remote_transactions_validate_against_pre_images() {
    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    let a = connect(addr);
    let b = connect(addr);

    // Client A and client B both read, then both try to bump the same
    // row; the retry loop makes both land, and the final value reflects
    // both increments (no lost update through the delta/pre-image path).
    let bump = |remote: &RemoteEngine| {
        remote
            .transact(16, &|db: &mut esm_store::Database| {
                let t = db.table_mut("t")?;
                let current = t
                    .get_by_key(&row![0])
                    .and_then(|r| match &r[2] {
                        esm_store::Value::Int(n) => Some(*n),
                        _ => None,
                    })
                    .unwrap_or(0);
                t.upsert(row![0, "g0", current + 1])?;
                Ok(())
            })
            .unwrap()
    };
    let r1 = bump(&a);
    let r2 = bump(&b);
    assert!(r2.stamp > r1.stamp, "stamps order the commits");
    let base = a.table("t").unwrap();
    assert_eq!(base.get_by_key(&row![0]), Some(&row![0, "g0", 2]));
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    use esm_net::{decode_frame, encode_frame, Request, Response};
    use std::io::{Read, Write};

    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    // Fire several requests without waiting for any response — they
    // must come back in request order on this connection.
    let reqs = [
        Request::Ping,
        Request::TableNames,
        Request::ViewNames,
        Request::Ping,
    ];
    let mut bytes = Vec::new();
    for req in &reqs {
        bytes.extend_from_slice(&encode_frame(&req.encode()));
    }
    stream.write_all(&bytes).unwrap();

    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut got = Vec::new();
    while got.len() < reqs.len() {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed early");
        buf.extend_from_slice(&chunk[..n]);
        while let Some((payload, consumed)) = decode_frame(&buf).unwrap() {
            buf.drain(..consumed);
            got.push(Response::decode(&payload).unwrap());
        }
    }
    assert!(matches!(got[0], Response::Unit));
    assert!(matches!(&got[1], Response::Names(names) if names == &vec!["t".to_string()]));
    assert!(matches!(&got[2], Response::Names(names) if names.is_empty()));
    assert!(matches!(got[3], Response::Unit));
    server.shutdown();
}

#[test]
fn malformed_commit_rows_error_without_killing_the_server() {
    use esm_net::{Request, Response};
    use esm_store::Delta;

    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    let remote = connect(addr);

    // A delta whose rows are shorter than the schema (and one with the
    // wrong key type): decode succeeds — validation must reject them
    // with a structured error, not panic a worker thread.
    let short = Request::Commit {
        deltas: vec![(
            "t".into(),
            Delta {
                inserted: vec![vec![]],
                deleted: vec![row![1]],
            },
        )],
    };
    let ghost_table = Request::Commit {
        deltas: vec![(
            "nope".into(),
            Delta {
                inserted: vec![row![1, "g0", 1]],
                deleted: vec![],
            },
        )],
    };
    for req in [short, ghost_table] {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        esm_net::frame::write_frame(&mut stream, &req.encode()).unwrap();
        let payload = esm_net::frame::read_frame(&mut stream).unwrap();
        assert!(
            matches!(Response::decode(&payload).unwrap(), Response::Err(_)),
            "malformed commit must answer a structured error"
        );
    }

    // The server (and its worker pool) is still fully alive.
    remote.ping().unwrap();
    let receipt = remote
        .transact(4, &|db: &mut esm_store::Database| {
            db.table_mut("t")?.upsert(row![70, "g0", 7])?;
            Ok(())
        })
        .unwrap();
    assert!(receipt.stamp > 0);
    server.shutdown();
}

#[test]
fn getters_surface_transport_failure_as_errors_not_panics() {
    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    let remote = connect(addr);
    remote.ping().expect("server alive before shutdown");

    // Kill the server out from under the connected client. Every
    // Engine getter must now return Err — never panic, and never
    // fabricate an empty answer that reads as "an engine with no
    // tables/views".
    server.shutdown();

    assert!(remote.table_names().is_err(), "table_names must error");
    assert!(remote.view_names().is_err(), "view_names must error");
    assert!(remote.snapshot().is_err(), "snapshot must error");
    assert!(remote.metrics().is_err(), "metrics must error");
    assert!(remote.telemetry().is_err(), "telemetry must error");

    // And through the trait object, exactly as callers hold it.
    let dyn_engine: ArcEngine = remote.as_engine();
    assert!(dyn_engine.table_names().is_err());
    assert!(dyn_engine.metrics().is_err());
}
