//! Loopback acceptance tests for the subscription push path: many
//! subscribers each receiving exactly the deltas past their cursor in
//! commit order, backpressure isolating a stalled subscriber without
//! touching the commit path or its peers, and unsubscribe actually
//! stopping the stream.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use esm_engine::testkit::seed_db;
use esm_engine::{Engine, EngineError, EngineServer};
use esm_net::{NetServer, NetServerConfig, PushEvent, RemoteEngine, SubscriptionClient};
use esm_relational::ViewDef;
use esm_store::Table;

fn serve(config: NetServerConfig) -> (NetServer, SocketAddr) {
    let server = NetServer::bind(
        EngineServer::new(seed_db()).as_engine(),
        "127.0.0.1:0",
        config,
    )
    .expect("loopback bind");
    let addr = server.local_addr();
    (server, addr)
}

/// Follow one subscription from its initial resync until the local
/// replica equals `goal`, checking cursor contiguity along the way.
/// Returns (events seen, whether any post-initial resync arrived).
fn follow_until(
    sub: &mut SubscriptionClient,
    goal: &Table,
    deadline: Duration,
) -> (Vec<PushEvent>, Table) {
    let start = Instant::now();
    let first = sub
        .next_push(deadline)
        .expect("initial push")
        .expect("initial push arrives");
    assert!(
        first.resync.is_some(),
        "a from-now subscription opens with a full-window resync"
    );
    let mut local = Table::new(goal.schema().clone());
    first.apply(&mut local).expect("initial window applies");
    let mut cursor = first.to_seq;
    let mut events = vec![first];
    while &local != goal {
        let remaining = deadline
            .checked_sub(start.elapsed())
            .expect("subscriber converges before the deadline");
        let ev = sub
            .next_push(remaining)
            .expect("push stream healthy")
            .expect("push arrives before the deadline");
        if ev.resync.is_none() {
            // Delta pushes continue exactly where the subscriber
            // stands: no gap, no overlap, commit order.
            assert_eq!(
                ev.from_seq, cursor,
                "delta push must continue from the subscriber's cursor"
            );
        }
        assert!(ev.to_seq >= ev.from_seq, "cursor never moves backwards");
        ev.apply(&mut local).expect("push applies");
        cursor = ev.to_seq;
        events.push(ev);
    }
    (events, local)
}

#[test]
fn sixty_four_subscribers_receive_every_delta_in_commit_order() {
    let (server, addr) = serve(NetServerConfig::default());
    let writer = RemoteEngine::connect(addr).expect("writer connects");
    writer
        .define_view("all", "t", &ViewDef::base())
        .expect("view defined");

    let mut subs: Vec<SubscriptionClient> = (0..64)
        .map(|_| {
            let mut s = SubscriptionClient::connect(addr).expect("subscriber connects");
            s.subscribe("all", None).expect("suback");
            s
        })
        .collect();

    // 30 commits through the ordinary write path while everyone holds
    // an open subscription.
    for i in 0..30i64 {
        writer
            .edit_view_optimistic("all", 8, &|t: &mut Table| {
                t.upsert(esm_store::row![1000 + i, format!("g{}", i % 5), i * 11])
                    .map(|_| ())
                    .map_err(EngineError::from)
            })
            .expect("commit succeeds");
    }
    let goal = writer.read_view("all").expect("final window");

    let handles: Vec<_> = subs
        .drain(..)
        .map(|mut sub| {
            let goal = goal.clone();
            std::thread::spawn(move || {
                let (events, local) = follow_until(&mut sub, &goal, Duration::from_secs(30));
                assert_eq!(local, goal, "replica reproduces the server-side view");
                // Real deltas flowed, not just the initial snapshot
                // (the 30 commits happened after the subscribe).
                assert!(
                    events.iter().skip(1).any(|e| e.resync.is_none()),
                    "subscriber received delta pushes"
                );
                events.len()
            })
        })
        .collect();
    for h in handles {
        let n = h.join().expect("subscriber thread");
        assert!(n >= 2, "at least the initial resync plus one delta push");
    }
    let stats = server.stats();
    assert!(
        stats.pushes >= 64 * 2,
        "push counter saw the fan-out: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn stalled_subscriber_never_delays_commits_or_other_subscribers() {
    // Small output cap so the stall engages deterministically: half of
    // it (the push high-water mark) is far below what the workload
    // pushes, and single frames stay well below the drop limit.
    let (server, addr) = serve(NetServerConfig::default().outbuf_limit(1024 * 1024));
    let writer = RemoteEngine::connect(addr).expect("writer connects");
    writer
        .define_view("all", "t", &ViewDef::base())
        .expect("view defined");

    let mut fast_a = SubscriptionClient::connect(addr).expect("fast subscriber");
    let mut fast_b = SubscriptionClient::connect(addr).expect("fast subscriber");
    let mut stalled = SubscriptionClient::connect(addr).expect("stalled subscriber");
    fast_a.subscribe("all", None).expect("suback");
    fast_b.subscribe("all", None).expect("suback");
    stalled.subscribe("all", None).expect("suback");
    // The stalled subscriber reads nothing from here on; the kernel
    // buffers fill, the server's bounded outbuf crosses high water, and
    // the pump freezes its cursor instead of queueing on its behalf.

    // Fast subscribers drain concurrently with the writer, proving
    // their pushes flow while the stalled peer's socket is wedged. Each
    // maintains a local replica and exits once it matches the final
    // window (published after the writer finishes).
    let goal_slot: Arc<std::sync::Mutex<Option<Table>>> = Arc::new(std::sync::Mutex::new(None));
    let drainers: Vec<_> = [fast_a, fast_b]
        .into_iter()
        .map(|mut sub| {
            let goal_slot = Arc::clone(&goal_slot);
            std::thread::spawn(move || {
                let first = sub
                    .next_push(Duration::from_secs(10))
                    .expect("initial push")
                    .expect("initial resync");
                assert!(first.resync.is_some());
                let mut local = Table::new(first.resync.as_ref().unwrap().schema().clone());
                first.apply(&mut local).expect("window applies");
                let mut n = 0u64;
                let deadline = Instant::now() + Duration::from_secs(60);
                loop {
                    if let Some(goal) = goal_slot.lock().unwrap().as_ref() {
                        if &local == goal {
                            return n;
                        }
                    }
                    assert!(
                        Instant::now() < deadline,
                        "fast subscriber failed to converge while a peer was stalled"
                    );
                    if let Ok(Some(ev)) = sub.next_push(Duration::from_millis(100)) {
                        ev.apply(&mut local).expect("push applies");
                        n += 1;
                    }
                }
            })
        })
        .collect();

    // Each commit replaces one row with a fat payload, so the total
    // pushed volume (~400 × ~32 KiB) dwarfs kernel socket buffering —
    // the unread connection must hit the server-side high-water mark.
    let payload = "x".repeat(16 * 1024);
    for i in 0..400i64 {
        writer
            .edit_view_optimistic("all", 8, &|t: &mut Table| {
                t.upsert(esm_store::row![1000, payload.clone(), i])
                    .map(|_| ())
                    .map_err(EngineError::from)
            })
            .expect("commit succeeds while a subscriber is stalled");
    }
    let goal = writer.read_view("all").expect("final window");
    *goal_slot.lock().unwrap() = Some(goal.clone());

    for d in drainers {
        let n = d.join().expect("fast subscriber thread");
        assert!(n > 0, "fast subscriber received pushes during the stall");
    }

    // Now resume the stalled subscriber. Everything it missed was
    // dropped, not queued — it must recover via a resync push and still
    // converge to the exact final window.
    let (events, local) = follow_until(&mut stalled, &goal, Duration::from_secs(30));
    assert_eq!(
        local, goal,
        "stalled subscriber resynced to the final window"
    );
    assert!(
        events.iter().any(|e| e.resync.is_some()),
        "recovery after a stall goes through a resync push"
    );
    server.shutdown();
}

#[test]
fn unsubscribe_stops_the_stream() {
    let (server, addr) = serve(NetServerConfig::default());
    let writer = RemoteEngine::connect(addr).expect("writer connects");
    writer
        .define_view("all", "t", &ViewDef::base())
        .expect("view defined");

    let mut sub = SubscriptionClient::connect(addr).expect("subscriber connects");
    sub.subscribe("all", None).expect("suback");
    let first = sub
        .next_push(Duration::from_secs(10))
        .expect("initial push")
        .expect("initial resync");
    assert!(first.resync.is_some());

    sub.unsubscribe("all").expect("unsubscribed");
    // Drain pushes that raced the unsubscribe, then commit: nothing
    // new may arrive.
    while sub
        .next_push(Duration::from_millis(200))
        .expect("stream healthy")
        .is_some()
    {}
    writer
        .edit_view_optimistic("all", 8, &|t: &mut Table| {
            t.upsert(esm_store::row![2000, "gX".to_string(), 1])
                .map(|_| ())
                .map_err(EngineError::from)
        })
        .expect("commit succeeds");
    assert!(
        sub.next_push(Duration::from_millis(400))
            .expect("stream healthy")
            .is_none(),
        "no pushes after unsubscribe"
    );
    // The connection itself still works as a subscription socket.
    let cursor = sub.subscribe("all", None).expect("resubscribe works");
    let again = sub
        .next_push(Duration::from_secs(10))
        .expect("push stream healthy")
        .expect("resubscription resyncs");
    assert!(again.resync.is_some() && again.to_seq >= cursor);
    server.shutdown();
}
