//! Property-based wire-protocol laws, mirroring `wal_properties.rs`:
//! for arbitrary codec-hostile payloads, `decode(encode(x)) == x`; for
//! every torn byte prefix of a frame, the decoder reports *incomplete*
//! (never an error, never a wrong message); and any in-frame bit flip
//! is refused as corruption.

use proptest::prelude::*;

use esm_net::frame::{decode_frame, encode_frame};
use esm_net::proto::{decode_predicate, encode_predicate};
use esm_net::{Request, Response};
use esm_obs::{SpanRecord, TraceId, TraceRecord, TraceReport};
use esm_relational::ViewDef;
use esm_store::{row, Delta, Operand, Predicate, Row, Schema, Table, Value, ValueType};

/// Characters chosen to stress the codec: separators, escapes, quoting,
/// format metacharacters (`@`, `:`, `\t`), and multi-byte points.
const NASTY: &[char] = &[
    'a', 'z', '"', '\'', '\\', '\t', '\n', '\r', ' ', ':', '@', '#', '+', '-', 'λ', '🦀',
];

fn nasty_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..NASTY.len(), 0..8)
        .prop_map(|ix| ix.into_iter().map(|i| NASTY[i]).collect())
}

fn arb_value() -> impl Strategy<Value = Value> {
    (0u8..3, any::<i64>(), nasty_string()).prop_map(|(kind, n, s)| match kind {
        0 => Value::Bool(n % 2 == 0),
        1 => Value::Int(n),
        _ => Value::Str(s),
    })
}

/// A well-formed keyed table whose string cells are codec-hostile.
fn arb_table() -> impl Strategy<Value = Table> {
    (
        nasty_string(),
        proptest::collection::vec((any::<i64>(), nasty_string(), any::<bool>()), 0..6),
    )
        .prop_map(|(colname, rows)| {
            // Distinct column names even when the nasty generator
            // collides: suffix the generated name.
            let schema = Schema::build(
                &[
                    ("id", ValueType::Int),
                    ("s", ValueType::Str),
                    ("b", ValueType::Bool),
                ],
                &["id"],
            )
            .expect("valid schema");
            let mut t = Table::new(schema);
            for (id, s, b) in rows {
                let _ = t.upsert(row![id, format!("{colname}{s}"), b]);
            }
            t
        })
}

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(proptest::collection::vec(arb_value(), 0..4), 0..4)
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    // A bounded-depth expression decoded from a script of operations.
    proptest::collection::vec((0u8..6, nasty_string(), any::<i64>()), 1..8).prop_map(|script| {
        let mut pred = Predicate::True;
        for (kind, s, n) in script {
            let leaf = match kind % 3 {
                0 => Predicate::eq(Operand::col(s.clone()), Operand::val(n)),
                1 => Predicate::lt(Operand::col("k"), Operand::val(s.clone())),
                _ => Predicate::ge(Operand::val(n), Operand::col(s.clone())),
            };
            pred = match kind {
                0 | 1 => pred.and(leaf),
                2 | 3 => pred.or(leaf),
                4 => pred.not().and(leaf),
                _ => leaf.and(Predicate::False).or(pred),
            };
        }
        pred
    })
}

fn arb_viewdef() -> impl Strategy<Value = ViewDef> {
    (arb_predicate(), nasty_string(), nasty_string()).prop_map(|(pred, a, b)| {
        ViewDef::base()
            .select(pred)
            .project(&["id", "s"], &[(b.as_str(), Value::str(a.as_str()))])
            .rename(&[("s", "renamed")])
    })
}

/// Full-range u64s (the vendored proptest only derives signed ints).
fn arb_u64() -> impl Strategy<Value = u64> {
    any::<i64>().prop_map(|n| n as u64)
}

/// Spans with codec-hostile names/tags and full-range numerics.
fn arb_span() -> impl Strategy<Value = SpanRecord> {
    (
        (1u32..64, 0u32..64),
        (nasty_string(), nasty_string()),
        (arb_u64(), arb_u64(), arb_u64()),
    )
        .prop_map(
            |((id, parent), (name, tag), (start_ns, duration_ns, bytes))| SpanRecord {
                id,
                parent,
                name,
                tag,
                start_ns,
                duration_ns,
                bytes,
            },
        )
}

fn arb_trace() -> impl Strategy<Value = TraceRecord> {
    (
        arb_u64(),
        nasty_string(),
        arb_u64(),
        proptest::collection::vec(arb_span(), 0..6),
    )
        .prop_map(|(id, root, duration_ns, spans)| TraceRecord {
            id: TraceId(id),
            root,
            duration_ns,
            spans,
        })
}

proptest! {
    #[test]
    fn predicates_round_trip(pred in arb_predicate()) {
        let line = encode_predicate(&pred);
        prop_assert!(!line.contains('\n'), "predicates stay on one line");
        prop_assert_eq!(decode_predicate(&line).expect("round-trips"), pred);
    }

    #[test]
    fn requests_round_trip_through_frames(
        name in nasty_string(),
        table in arb_table(),
        def in arb_viewdef(),
        inserted in arb_rows(),
        deleted in arb_rows(),
        kind in 0u8..6,
    ) {
        let req = match kind {
            0 => Request::Table(name.clone()),
            1 => Request::DefineView { name: name.clone(), table: "t".into(), def: def.clone() },
            2 => Request::WriteView { name: name.clone(), view: table.clone() },
            3 => Request::EditViewCas {
                name: name.clone(),
                expect: table.clone(),
                edited: table.clone(),
            },
            4 => Request::Commit {
                deltas: vec![(name.clone(), Delta { inserted, deleted })],
            },
            _ => Request::ReadView(name.clone()),
        };
        let framed = encode_frame(&req.encode());
        let (payload, consumed) = decode_frame(&framed)
            .expect("fresh frame is never corrupt")
            .expect("fresh frame is complete");
        prop_assert_eq!(consumed, framed.len());
        let back = Request::decode(&payload).expect("round-trips");
        // ViewDef comparison is structural (PartialEq added for the wire).
        prop_assert_eq!(back, req);
    }

    #[test]
    fn responses_round_trip_through_frames(
        names in proptest::collection::vec(nasty_string(), 0..5),
        table in arb_table(),
        inserted in arb_rows(),
        deleted in arb_rows(),
        gtx in nasty_string(),
        stamp in 0u64..1_000_000_000,
        kind in 0u8..6,
    ) {
        let resp = match kind {
            0 => Response::Names(names.clone()),
            1 => Response::Table(table.clone()),
            2 => Response::Delta(Delta { inserted, deleted }),
            3 => Response::Receipt { stamp, shards: vec![0, 2, 5], gtx: Some(gtx.clone()) },
            4 => Response::Err(esm_engine::EngineError::Conflict {
                table: gtx.clone(),
                detail: names.join("\n"),
            }),
            _ => Response::Seq(Some(stamp)),
        };
        let framed = encode_frame(&resp.encode());
        let (payload, _) = decode_frame(&framed).unwrap().expect("complete");
        prop_assert_eq!(Response::decode(&payload).expect("round-trips"), resp);
    }

    #[test]
    fn torn_frame_prefixes_read_as_incomplete(
        name in nasty_string(),
        table in arb_table(),
    ) {
        // Mirror the crash-recovery discipline: cut the framed bytes at
        // EVERY offset; each prefix must decode as "incomplete", never
        // as an error or (worse) a different message.
        let req = Request::WriteView { name, view: table };
        let framed = encode_frame(&req.encode());
        for cut in 0..framed.len() {
            prop_assert_eq!(
                decode_frame(&framed[..cut]).expect("prefixes are not corrupt"),
                None,
                "cut at {} of {} must be incomplete", cut, framed.len()
            );
        }
    }

    #[test]
    fn bit_flips_inside_frames_are_refused(
        name in nasty_string(),
        flip_byte in 0usize..65_536,
        flip_bit in 0u8..8,
    ) {
        let req = Request::ReadView(name);
        let mut framed = encode_frame(&req.encode());
        let idx = 4 + flip_byte % (framed.len() - 4); // spare the length prefix
        framed[idx] ^= 1 << flip_bit;
        // Either the CRC refuses it, or (if the flip hit the CRC field
        // making it self-consistent is impossible for a single bit) —
        // it must never decode to the original bytes with a wrong body.
        match decode_frame(&framed) {
            Err(_) => {}
            Ok(None) => {} // a flip in the length prefix can make it "incomplete"
            Ok(Some(_)) => prop_assert!(false, "corrupt frame decoded"),
        }
    }

    #[test]
    fn trace_contexts_round_trip_and_never_corrupt_the_body(
        name in nasty_string(),
        table in arb_table(),
        trace_id in arb_u64(),
        parent in any::<i64>().prop_map(|n| n as u32),
        carry in any::<bool>(),
    ) {
        // The context is a pure suffix: carrying one never changes how
        // the request body decodes, and omitting it is byte-identical
        // to the pre-context encoding.
        let req = Request::WriteView { name, view: table };
        let ctx = carry.then_some((trace_id, parent));
        let (back, got) = Request::decode_with_trace(&req.encode_with_trace(ctx))
            .expect("round-trips");
        prop_assert_eq!(got, ctx);
        prop_assert_eq!(back, req.clone());
        prop_assert_eq!(req.encode_with_trace(None), req.encode());
    }

    #[test]
    fn trace_reports_round_trip_through_frames(
        recent in proptest::collection::vec(arb_trace(), 0..4),
        slow in proptest::collection::vec(arb_trace(), 0..3),
    ) {
        let resp = Response::Traces(TraceReport { recent, slow });
        let framed = encode_frame(&resp.encode());
        let (payload, _) = decode_frame(&framed).unwrap().expect("complete");
        prop_assert_eq!(Response::decode(&payload).expect("round-trips"), resp);
    }

    #[test]
    fn subscribe_requests_round_trip_both_codecs(
        view in nasty_string(),
        cursor_val in arb_u64(),
        cursor_some in any::<bool>(),
        unsub in any::<bool>(),
    ) {
        // Revision-3 verbs with codec-hostile view names and full-range
        // cursors, through both the binary and the legacy text codec.
        let cursor = cursor_some.then_some(cursor_val);
        let req = if unsub {
            Request::Unsubscribe(view)
        } else {
            Request::Subscribe { view, cursor }
        };
        let framed = encode_frame(&req.encode());
        let (payload, _) = decode_frame(&framed).unwrap().expect("complete");
        prop_assert_eq!(Request::decode(&payload).expect("binary round-trips"), req.clone());
        prop_assert_eq!(Request::decode(&req.encode_text()).expect("text round-trips"), req);
    }

    #[test]
    fn push_responses_round_trip_both_codecs(
        view in nasty_string(),
        from_seq in arb_u64(),
        to_seq in arb_u64(),
        inserted in arb_rows(),
        deleted in arb_rows(),
        window_val in arb_table(),
        window_some in any::<bool>(),
        ack in any::<bool>(),
    ) {
        let window = window_some.then_some(window_val);
        let resp = if ack {
            Response::SubAck { cursor: from_seq }
        } else {
            Response::Push {
                view,
                from_seq,
                to_seq,
                delta: Delta { inserted, deleted },
                resync: window,
            }
        };
        let framed = encode_frame(&resp.encode());
        let (payload, _) = decode_frame(&framed).unwrap().expect("complete");
        prop_assert_eq!(Response::decode(&payload).expect("binary round-trips"), resp.clone());
        prop_assert_eq!(Response::decode(&resp.encode_text()).expect("text round-trips"), resp);
    }

    #[test]
    fn pipelined_frames_split_exactly(
        names in proptest::collection::vec(nasty_string(), 1..6),
    ) {
        // Several frames back to back in one buffer — the shape the
        // server's read loop sees under client pipelining.
        let mut buf = Vec::new();
        let mut want = Vec::new();
        for name in &names {
            let req = Request::ReadView(name.clone());
            buf.extend_from_slice(&encode_frame(&req.encode()));
            want.push(req);
        }
        let mut got = Vec::new();
        let mut rest = &buf[..];
        while let Some((payload, consumed)) = decode_frame(rest).expect("no corruption") {
            got.push(Request::decode(&payload).expect("decodes"));
            rest = &rest[consumed..];
        }
        prop_assert!(rest.is_empty());
        prop_assert_eq!(got, want);
    }
}
