//! The `TRACE` verb end to end: a client-minted trace id crosses the
//! wire, the server roots its own span tree under it (frame decode,
//! queue wait, handler, and — for a durable cross-shard commit — the
//! full 2PC breakdown per participant), and a loopback `TRACE` fetch
//! returns both trees correlated by that id. Also the negative space:
//! sampled-out and legacy-text requests must allocate no spans at all.

use std::path::PathBuf;

use esm_engine::testkit::seed_db;
use esm_engine::{
    ArcEngine, DurabilityConfig, Engine, EngineServer, Session, ShardRouter, ShardedEngineServer,
};
use esm_net::{NetServer, NetServerConfig, RemoteEngine, Request, Response};
use esm_obs::{TelemetryConfig, TraceRecord};
use esm_store::row;
use esm_store::Database;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esm-trace-wire-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve(engine: ArcEngine) -> (NetServer, std::net::SocketAddr) {
    let config = NetServerConfig::default()
        .telemetry_config(TelemetryConfig::default().trace_sample_every(1));
    let server = NetServer::bind(engine, "127.0.0.1:0", config).expect("loopback bind");
    let addr = server.local_addr();
    (server, addr)
}

/// The spans under `parent` (direct children only).
fn child_names(rec: &TraceRecord, parent: u32) -> Vec<&str> {
    rec.children(parent).map(|s| s.name.as_str()).collect()
}

#[test]
fn cross_shard_commit_traces_causally_over_loopback() {
    let dir = tmp_dir("twopc");
    let host = ShardedEngineServer::with_durability(
        seed_db(),
        ShardRouter::uniform_int(2, 0, esm_engine::testkit::KEYS).expect("router"),
        DurabilityConfig::new(&dir)
            .telemetry_config(TelemetryConfig::default().trace_sample_every(1)),
    )
    .expect("durable sharded engine");
    let (server, addr) = serve(host.as_engine());
    let remote = RemoteEngine::connect(addr).expect("loopback connect");
    remote.telemetry_registry().set_trace_sample_every(1);

    // One commit touching both shards (ids 1 and KEYS-1 land on
    // different sides of the uniform split) — a genuine 2PC.
    let session = Session::new(remote.as_engine());
    let receipt = session
        .transact(|db: &mut Database| {
            db.table_mut("t")?.upsert(row![1, "g1", 10])?;
            db.table_mut("t")?
                .upsert(row![esm_engine::testkit::KEYS - 1, "g2", 20])?;
            Ok(())
        })
        .expect("cross-shard commit");
    assert_eq!(receipt.shards.len(), 2, "commit did not span two shards");

    let report = remote.traces().expect("TRACE over the wire");

    // Client side: the session minted the trace, and its round trips
    // are spans on the client-local record.
    let client_rec = report
        .recent
        .iter()
        .find(|r| r.root == "session:transact")
        .expect("client-side transact trace missing");
    assert!(
        client_rec.find("net_round_trip").is_some(),
        "round trips did not become spans on the client record"
    );

    // Server side: a `net:commit` tree under the SAME trace id.
    let server_rec = report
        .recent
        .iter()
        .find(|r| r.root == "net:commit" && r.id == client_rec.id)
        .expect("server-side commit tree missing or not correlated by trace id");

    // The wire plumbing filed its backdated spans.
    for name in ["net_frame_decode", "net_queue_wait", "net_handler"] {
        assert!(
            server_rec.find(name).is_some(),
            "server tree lost its {name} span"
        );
    }

    // The 2PC breakdown: one umbrella per participant, each holding at
    // least a prepare and an fsync child, causally contained (the
    // umbrella lasts at least as long as the sum of its children —
    // prepare, fsync, resolve are sequential within one participant).
    let umbrellas: Vec<_> = server_rec
        .spans
        .iter()
        .filter(|s| s.name == "twopc_participant")
        .collect();
    assert_eq!(umbrellas.len(), 2, "expected one umbrella per shard");
    let mut tags: Vec<&str> = umbrellas.iter().map(|s| s.tag.as_str()).collect();
    tags.sort_unstable();
    assert_eq!(tags, ["shard:0", "shard:1"]);
    for umbrella in &umbrellas {
        let names = child_names(server_rec, umbrella.id);
        assert!(
            names.contains(&"twopc_prepare"),
            "participant {} lost its prepare span ({names:?})",
            umbrella.tag
        );
        assert!(
            names.contains(&"twopc_fsync"),
            "participant {} lost its fsync span ({names:?})",
            umbrella.tag
        );
        let child_sum: u64 = server_rec
            .children(umbrella.id)
            .map(|s| s.duration_ns)
            .sum();
        assert!(
            umbrella.duration_ns >= child_sum,
            "umbrella {} ({}ns) shorter than its children ({child_sum}ns)",
            umbrella.tag,
            umbrella.duration_ns
        );
    }

    // Causal ordering: every span's parent exists and starts no later
    // than the span itself (the root is span 1 with parent 0).
    for span in &server_rec.spans {
        if span.parent == 0 {
            assert_eq!(span.id, 1, "non-root span without a parent");
            continue;
        }
        let parent = server_rec
            .span(span.parent)
            .unwrap_or_else(|| panic!("span {} orphaned (parent {})", span.name, span.parent));
        assert!(
            parent.start_ns <= span.start_ns,
            "span {} starts before its parent {}",
            span.name,
            parent.name
        );
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn untraced_requests_allocate_no_spans() {
    let host = EngineServer::new(seed_db()).as_engine();
    // Engine-side head sampling off: the only way a trace could exist
    // is a wire context, and none of the requests below carry one.
    host.telemetry_handle()
        .expect("in-process engines expose their registry")
        .set_trace_sample_every(0);
    let (server, addr) = serve(host);
    let remote = RemoteEngine::connect(addr).expect("loopback connect");
    remote.telemetry_registry().set_trace_sample_every(0);

    // Sampled-out binary requests.
    let session = Session::new(remote.as_engine());
    session
        .define_view("all", "t", &esm_relational::ViewDef::base())
        .expect("view compiles");
    for i in 0..4i64 {
        session
            .transact(move |db: &mut Database| {
                db.table_mut("t")?.upsert(row![500 + i, "g1", i])?;
                Ok(())
            })
            .expect("commits");
        session.read("all").expect("readable");
    }

    // A legacy text-framed request never carries a trace context.
    {
        use std::io::{Read as _, Write as _};
        let mut stream = std::net::TcpStream::connect(addr).expect("text client connects");
        let frame = esm_net::encode_frame(&Request::Ping.encode_text());
        stream.write_all(&frame).expect("text frame written");
        let mut header = [0u8; 8];
        stream.read_exact(&mut header).expect("response header");
    }

    let report = remote.traces().expect("TRACE over the wire");
    assert!(
        report.recent.is_empty() && report.slow.is_empty(),
        "untraced requests still allocated spans: {report:?}"
    );
    server.shutdown();
}

#[test]
fn server_ping_answers_without_the_engine() {
    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    let remote = RemoteEngine::connect(addr).expect("loopback connect");
    let (uptime_ms, protocol_rev, workers) = remote.server_ping().expect("pong");
    assert_eq!(protocol_rev, esm_net::PROTOCOL_REV);
    assert!(workers >= 1, "worker pool cannot be empty");
    // Uptime only moves forward.
    let (later, _, _) = remote.server_ping().expect("pong again");
    assert!(later >= uptime_ms);
    // The response shape is ServerInfo, not Unit — a plain PING still
    // answers Unit (the two probes are distinct verbs).
    assert!(matches!(
        Response::decode(
            &Response::ServerInfo {
                uptime_ms,
                protocol_rev,
                workers
            }
            .encode()
        )
        .expect("decodes"),
        Response::ServerInfo { .. }
    ));
    server.shutdown();
}
