//! Protocol rev 4 end to end: a replica that has **never shared a
//! disk** with its primary feeds over a real loopback socket
//! (`repl_manifest` / `repl_fetch` via [`RemoteWalSource`]), serves
//! reads behind its own [`NetServer`], rejects writes with the
//! `not_primary` redirect, and the client follows the redirect back to
//! the primary and commits.

use std::path::PathBuf;
use std::sync::Arc;

use esm_engine::{
    DurabilityConfig, Engine, EngineError, EngineServer, ReplicaConfig, ReplicaEngine, ShardRouter,
    ShardedEngineServer,
};
use esm_net::{redirect_addr, NetServer, NetServerConfig, RemoteEngine};
use esm_store::{row, Database, Delta, Schema, Table, ValueType};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esm-replwire-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed() -> Database {
    let schema = Schema::build(
        &[("id", ValueType::Int), ("balance", ValueType::Int)],
        &["id"],
    )
    .expect("valid schema");
    let rows: Vec<_> = (0..100i64).map(|i| row![i * 10, 100]).collect();
    let mut db = Database::new();
    db.create_table("accounts", Table::from_rows(schema, rows).expect("rows"))
        .expect("fresh");
    db
}

fn bump(engine: &dyn Engine, key: i64, by: i64) -> Result<(), EngineError> {
    let old = engine.table("accounts")?.get_by_key(&row![key]).cloned();
    let cur = old
        .as_ref()
        .map(|r| r[1].as_int().expect("int"))
        .unwrap_or(0);
    engine
        .commit_checked(&[(
            "accounts".to_string(),
            Delta {
                inserted: vec![row![key, cur + by]],
                deleted: old.into_iter().collect(),
            },
        )])
        .map(|_| ())
}

#[test]
fn replica_feeds_over_the_wire_and_redirects_writes_to_the_primary() {
    let dir = fresh_dir("primary");
    let mirror = fresh_dir("mirror");
    let primary = ShardedEngineServer::with_durability(
        seed(),
        ShardRouter::uniform_int(2, 0, 1000).expect("router"),
        DurabilityConfig::new(&dir)
            .group_commit(1)
            .checkpoint_every(0)
            .maintenance_interval_ms(0),
    )
    .expect("durable primary");

    let primary_front = NetServer::bind(
        primary.as_engine(),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("primary bind");
    let primary_addr = primary_front.local_addr();
    primary.advertise(primary_addr.to_string());

    for i in 0..8 {
        bump(&primary, i * 10, i + 1).expect("primary takes writes");
    }
    primary.sync_wal().expect("sync");

    // The replica's only connection to the primary is the socket.
    let feed = RemoteEngine::connect(primary_addr).expect("feed connects");
    let replica = ReplicaEngine::bootstrap(
        Arc::new(feed.wal_source()),
        ReplicaConfig::new(&mirror).poll_interval_ms(0),
    )
    .expect("replica bootstraps over the wire");
    replica.sync_once().expect("ships");
    assert_eq!(
        replica.serving().snapshot(),
        primary.snapshot(),
        "replica converges over the socket"
    );

    // New commits ship incrementally.
    bump(&primary, 990, 5).expect("primary takes writes");
    primary.sync_wal().expect("sync");
    replica.sync_once().expect("ships the tail");
    assert_eq!(replica.serving().snapshot(), primary.snapshot());

    // Serve the replica behind its own front end: reads work, writes
    // come back as a typed redirect carrying the primary's address.
    let replica_front = NetServer::bind(
        replica.as_engine(),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("replica bind");
    let reader = RemoteEngine::connect(replica_front.local_addr()).expect("reader connects");
    assert_eq!(
        reader
            .table("accounts")
            .expect("replica serves reads")
            .get_by_key(&row![990])
            .expect("shipped row")[1],
        esm_store::Value::Int(105)
    );
    let err = bump(&reader, 990, 1).expect_err("replicas take no writes");
    assert_eq!(redirect_addr(&err), Some(primary_addr.to_string().as_str()));

    // Follow the redirect and the same write succeeds on the primary.
    let promoted_client = RemoteEngine::follow_redirect(&err)
        .expect("redirect carries an address")
        .expect("primary reachable");
    bump(&promoted_client, 990, 1).expect("primary commits after redirect");
    primary.sync_wal().expect("sync");
    replica.sync_once().expect("ships");
    assert_eq!(replica.serving().snapshot(), primary.snapshot());

    replica_front.shutdown();
    primary_front.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&mirror);
}

#[test]
fn repl_manifest_refuses_on_a_memory_only_engine() {
    let server = NetServer::bind(
        EngineServer::new(seed()).as_engine(),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("bind");
    let remote = RemoteEngine::connect(server.local_addr()).expect("connect");
    let err = remote.repl_manifest().expect_err("nothing durable to ship");
    assert!(
        matches!(err, EngineError::Io(ref m) if m.contains("not durable")),
        "unexpected error: {err:?}"
    );
    server.shutdown();
}
