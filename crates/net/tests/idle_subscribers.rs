//! The idle-cost gate for the epoll readiness loop: a thousand open,
//! subscribed, silent connections must cost (approximately) zero CPU.
//! The pre-epoll poller swept every connection with non-blocking reads
//! a few thousand times a second; with real readiness the poller parks
//! in the kernel and idle subscribers never wake it.
//!
//! Linux-only: the gate measures this process's CPU time via
//! `/proc/self/stat`, and only the epoll backend makes the claim.

#![cfg(target_os = "linux")]

use std::time::Duration;

use esm_engine::testkit::seed_db;
use esm_engine::{Engine, EngineServer};
use esm_net::{NetServer, NetServerConfig, RemoteEngine, SubscriptionClient};
use esm_relational::ViewDef;

/// This process's consumed CPU seconds (user + system), from
/// `/proc/self/stat` fields 14/15. Assumes the standard 100 Hz
/// `USER_HZ`, true on every mainstream Linux.
fn process_cpu_seconds() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("/proc/self/stat readable");
    // comm (field 2) may contain spaces; everything after the closing
    // paren is whitespace-separated.
    let after = stat.rsplit(')').next().expect("stat has a comm field");
    let fields: Vec<&str> = after.split_whitespace().collect();
    // After the paren: state is index 0, so utime/stime (fields 14/15
    // overall) are indices 11/12.
    let utime: u64 = fields[11].parse().expect("utime parses");
    let stime: u64 = fields[12].parse().expect("stime parses");
    (utime + stime) as f64 / 100.0
}

#[test]
fn a_thousand_idle_subscribers_cost_no_cpu() {
    let server = NetServer::bind(
        EngineServer::new(seed_db()).as_engine(),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("loopback bind");
    let addr = server.local_addr();
    let writer = RemoteEngine::connect(addr).expect("writer connects");
    writer
        .define_view("all", "t", &ViewDef::base())
        .expect("view defined");

    let mut subs: Vec<SubscriptionClient> = Vec::with_capacity(1000);
    for _ in 0..1000 {
        let mut s = SubscriptionClient::connect(addr).expect("subscriber connects");
        s.subscribe("all", None).expect("suback");
        // Drain the initial resync so the quiet window is truly quiet.
        s.next_push(Duration::from_secs(10))
            .expect("stream healthy")
            .expect("initial resync");
        subs.push(s);
    }

    // Let accept/subscribe churn settle, then measure a quiet window.
    std::thread::sleep(Duration::from_millis(300));
    let before = process_cpu_seconds();
    std::thread::sleep(Duration::from_secs(2));
    let spent = process_cpu_seconds() - before;

    // The epoll poller is parked in the kernel; the push pump wakes at
    // 20 Hz to check a condvar. A full-sweep poller over 1000
    // connections burns well over a second of CPU here; allow a small
    // allowance for the pump ticks and CI noise.
    assert!(
        spent < 0.25,
        "1000 idle subscribers burned {spent:.3}s CPU over a 2s window"
    );
    drop(subs);
    server.shutdown();
}
