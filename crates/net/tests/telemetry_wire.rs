//! The `STATS` verb end to end: the telemetry codec round-trips a
//! snapshot bit-identically, and a loopback fetch returns exactly the
//! engine-side phase breakdown a direct `Engine::telemetry()` call
//! sees — plus the server's own net-layer phases, which exist *only*
//! in the wire-fetched copy (the engine registry never records them).

use esm_engine::testkit::seed_db;
use esm_engine::{ArcEngine, Engine, EngineServer, ShardRouter, ShardedEngineServer};
use esm_net::{NetServer, NetServerConfig, RemoteEngine, Request, Response};
use esm_obs::{Phase, SlowOp, Telemetry, TelemetrySnapshot};
use esm_store::{row, Database};

fn serve(engine: ArcEngine) -> (NetServer, std::net::SocketAddr) {
    let server =
        NetServer::bind(engine, "127.0.0.1:0", NetServerConfig::default()).expect("loopback bind");
    let addr = server.local_addr();
    (server, addr)
}

/// A snapshot exercising the codec's whole surface: sparse bins across
/// the full value range, a max that caps quantiles, slow ops with and
/// without phase breakdowns, escapes in op names.
fn exercised_snapshot() -> TelemetrySnapshot {
    let tel = Telemetry::new();
    for phase in Phase::ALL {
        for v in [0u64, 1, 3, 4, 5, 1023, 1024, 1 << 33, u64::MAX] {
            tel.record(phase, v);
        }
    }
    tel.set_slow_threshold_ns(123_456_789);
    tel.record_slow(
        "read_view:ta\tb\\new\nline".to_string(),
        500_000_000,
        &[(Phase::ViewDrain, 100), (Phase::ViewDeltaFold, 400_000_000)],
    );
    tel.record_slow("bare".to_string(), 200_000_000, &[]);
    tel.snapshot()
}

#[test]
fn the_stats_payload_round_trips_bit_identically() {
    let snap = exercised_snapshot();
    let encoded = Response::Stats(snap.clone()).encode();
    let Response::Stats(back) = Response::decode(&encoded).expect("decodes") else {
        panic!("stats decoded to a different shape");
    };
    assert_eq!(back.slow_threshold_ns, snap.slow_threshold_ns);
    assert_eq!(back.phases, snap.phases, "histograms mutated in flight");
    assert_eq!(
        back.slow_ops
            .iter()
            .map(|s: &SlowOp| (s.op.clone(), s.total_ns, s.phases.clone()))
            .collect::<Vec<_>>(),
        snap.slow_ops
            .iter()
            .map(|s| (s.op.clone(), s.total_ns, s.phases.clone()))
            .collect::<Vec<_>>(),
    );
    // And the request side is a plain verb.
    assert_eq!(
        Request::decode(&Request::Stats.encode()).expect("decodes"),
        Request::Stats
    );
}

/// Drive commits + reads through the wire, then compare the remote
/// `STATS` fetch against the host's direct snapshot.
fn check_loopback_stats(host: ArcEngine) {
    let direct_host = host.clone();
    let (server, addr) = serve(host);
    let remote = RemoteEngine::connect(addr).expect("loopback connect");

    remote
        .define_view("all", "t", &esm_relational::ViewDef::base())
        .expect("view compiles");
    for i in 0..6i64 {
        remote
            .transact(4, &move |db: &mut Database| {
                db.table_mut("t")?.upsert(row![500 + i, "g1", i])?;
                Ok(())
            })
            .expect("commits");
        remote.read_view("all").expect("readable");
    }

    // Fetch over the wire FIRST: the STATS handler only reads the
    // engine's atomics, so the later direct snapshot sees identical
    // engine-phase state (nothing commits in between).
    let wire = remote.telemetry().expect("stats over the wire");
    let direct = direct_host.telemetry().expect("direct telemetry");

    // Engine-side phases: bit-identical between the two views.
    for (phase, hist) in &direct.phases {
        assert!(!phase.is_net(), "engine registry recorded a net phase");
        let over_wire = wire
            .phase(*phase)
            .unwrap_or_else(|| panic!("phase {} lost over the wire", phase.name()));
        assert_eq!(
            over_wire,
            hist,
            "phase {} diverged between wire and direct",
            phase.name()
        );
    }

    // Net-side phases: present only in the wire-fetched snapshot.
    for phase in [
        Phase::NetFrameDecode,
        Phase::NetQueueWait,
        Phase::NetHandler,
    ] {
        assert!(
            wire.count(phase) > 0,
            "wire snapshot missing net phase {}",
            phase.name()
        );
        assert_eq!(
            direct.count(phase),
            0,
            "net phase {} leaked into the engine registry",
            phase.name()
        );
    }
    // Commits above ran through the engine: its phases made the trip.
    assert!(wire.count(Phase::CommitLockHold) >= 6);
    server.shutdown();
}

#[test]
fn loopback_stats_match_direct_telemetry_unsharded() {
    check_loopback_stats(EngineServer::new(seed_db()).as_engine());
}

#[test]
fn loopback_stats_match_direct_telemetry_sharded() {
    let host = ShardedEngineServer::with_router(
        seed_db(),
        ShardRouter::uniform_int(4, 0, esm_engine::testkit::KEYS).expect("router"),
    )
    .expect("sharded engine");
    check_loopback_stats(host.as_engine());
}

#[test]
fn the_server_counts_bytes_both_ways() {
    let (server, addr) = serve(EngineServer::new(seed_db()).as_engine());
    let remote = RemoteEngine::connect(addr).expect("loopback connect");
    remote.ping().expect("pong");
    let _ = remote.table("t").expect("exists");
    // Poller-side counters lag the client's receipt of the response by
    // at most one flush; ping+table both completed, so both directions
    // have moved real bytes.
    let stats = server.stats();
    assert!(stats.bytes_read > 0, "no request bytes counted");
    assert!(stats.bytes_written > 0, "no response bytes counted");
    assert!(stats.requests >= 2);
    // The server's own registry has net phases and nothing else.
    let net_tel = server.telemetry();
    assert!(net_tel.count(Phase::NetHandler) >= 2);
    assert!(
        net_tel.phases.iter().all(|(p, _)| p.is_net()),
        "engine phase in the net registry"
    );
    server.shutdown();
}
