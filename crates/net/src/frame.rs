//! Length-prefixed, CRC-checked wire frames.
//!
//! One frame carries one protocol message:
//!
//! ```text
//! [4 bytes big-endian payload length][4 bytes big-endian CRC32][payload]
//! ```
//!
//! The CRC covers the payload bytes and uses the same polynomial as the
//! engine's WAL segment framing ([`esm_engine::crc32`]): a torn prefix
//! (connection cut mid-frame) is *incomplete* and the reader waits for
//! more bytes, while a bit flip inside a complete frame is *corrupt*
//! and the connection is refused — the same torn-vs-rot classification
//! the durable log applies to segment files.

use std::io::{Read, Write};

use esm_engine::crc32;

/// Frame header size: 4 length bytes + 4 CRC bytes.
pub const HEADER_BYTES: usize = 8;

/// Hard per-frame payload cap (a whole-database snapshot fits; a
/// corrupt length prefix claiming gigabytes does not).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Why a complete-looking frame was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The CRC over the payload did not match the header.
    Corrupt {
        /// CRC the header claimed.
        want: u32,
        /// CRC the payload hashed to.
        got: u32,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Corrupt { want, got } => {
                write!(
                    f,
                    "frame CRC mismatch: header {want:#010x}, payload {got:#010x}"
                )
            }
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Wrap a payload in a frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() as u64 <= MAX_FRAME_BYTES as u64,
        "payload exceeds the frame cap"
    );
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(None)` — incomplete: the buffer holds a (possibly empty)
///   proper prefix of a frame; read more bytes and try again. A torn
///   prefix is never an error.
/// * `Ok(Some((payload, consumed)))` — one whole frame; the caller
///   drains `consumed` bytes.
/// * `Err(_)` — the frame is structurally complete but corrupt (CRC
///   mismatch) or its claimed length is absurd; the connection should
///   be dropped.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>, FrameError> {
    if buf.len() < HEADER_BYTES {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[0..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let want = u32::from_be_bytes(buf[4..8].try_into().expect("4 bytes"));
    let total = HEADER_BYTES + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[HEADER_BYTES..total];
    let got = crc32(payload);
    if got != want {
        return Err(FrameError::Corrupt { want, got });
    }
    Ok(Some((payload.to_vec(), total)))
}

/// Blocking write of one frame (the synchronous client path).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

/// Blocking read of one frame (the synchronous client path). An EOF
/// mid-frame or a corrupt frame maps to `io::Error`.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            FrameError::TooLarge(len).to_string(),
        ));
    }
    let want = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let got = crc32(&payload);
    if got != want {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            FrameError::Corrupt { want, got }.to_string(),
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for payload in [
            &b""[..],
            b"x",
            b"hello \xf0\x9f\xa6\x80 frames\n\twith bytes",
        ] {
            let framed = encode_frame(payload);
            let (back, consumed) = decode_frame(&framed).unwrap().expect("complete");
            assert_eq!(back, payload);
            assert_eq!(consumed, framed.len());
        }
    }

    #[test]
    fn torn_prefixes_are_incomplete_not_errors() {
        let framed = encode_frame(b"some payload");
        for cut in 0..framed.len() {
            assert_eq!(
                decode_frame(&framed[..cut]).unwrap(),
                None,
                "cut at {cut} must read as incomplete"
            );
        }
    }

    #[test]
    fn bit_rot_is_corruption() {
        let mut framed = encode_frame(b"some payload");
        let last = framed.len() - 1;
        framed[last] ^= 0x40;
        assert!(matches!(
            decode_frame(&framed),
            Err(FrameError::Corrupt { .. })
        ));
    }

    #[test]
    fn absurd_lengths_are_refused() {
        let mut framed = encode_frame(b"x");
        framed[0] = 0xff; // claim a ~4GB payload
        assert!(matches!(
            decode_frame(&framed),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let mut buf = encode_frame(b"first");
        buf.extend_from_slice(&encode_frame(b"second"));
        let (one, n) = decode_frame(&buf).unwrap().expect("complete");
        assert_eq!(one, b"first");
        let (two, m) = decode_frame(&buf[n..]).unwrap().expect("complete");
        assert_eq!(two, b"second");
        assert_eq!(n + m, buf.len());
    }
}
