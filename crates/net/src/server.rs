//! [`NetServer`]: a readiness-driven, thread-pooled socket front end
//! with real-time subscription push.
//!
//! One poller thread owns every connection in non-blocking mode. On
//! Linux it parks in raw `epoll_wait` ([`crate::poll`]) and touches
//! only the connections the kernel reports ready — a thousand idle
//! subscribers cost zero wake-ups, and a request's first byte wakes
//! the loop in microseconds instead of waiting out an idle sleep. On
//! other platforms the same loop runs against the portable fallback
//! poller (interruptible sleep + full non-blocking sweep), the
//! pre-epoll behavior behind the same API.
//!
//! Complete request frames are handed to a small worker pool that
//! executes them against the shared [`Engine`](esm_engine::Engine)
//! through each connection's own [`Session`] (per-client view
//! registrations, commit stamps, retry policy). Workers write their
//! response **directly** to the client socket (non-blocking, under the
//! connection's output lock); only the rare partial write leaves bytes
//! behind for the poller to flush on write-readiness.
//!
//! ## The subscribe → commit → drain → push lifecycle
//!
//! A `SUBSCRIBE view` frame registers the connection against a named
//! view with a cursor — the engine commit position the subscriber has
//! seen ([`esm_engine::Engine::view_cursor`]). As commits settle, the
//! server drains each subscribed view's committed deltas **past each
//! subscriber's cursor** ([`esm_engine::Engine::view_deltas_since`],
//! O(changes), coalesced) and pushes one `PUSH` frame per subscriber,
//! advancing its cursor. Fan-out is driven twice: synchronously by the
//! worker that just committed (so the `sub_drain` / `net_push_write`
//! spans land under the committing request's trace), and by a
//! background pump parked on the engine's
//! [`CommitNotifier`](esm_engine::CommitNotifier) for commits that
//! arrive outside this server (and for retrying stalled subscribers).
//! Subscribers sharing a cursor share one drain and one encoded frame.
//!
//! ## Per-connection backpressure
//!
//! Output buffers are bounded. A subscriber that stops reading stalls
//! **only itself**: once its buffered output crosses the push
//! high-water mark the pump skips it (its cursor freezes — nothing is
//! queued on its behalf), and the commit path never waits on any
//! subscriber. On resume the subscription is marked for resync: the
//! next push carries the full current window instead of the deltas the
//! stall dropped. A connection whose buffer exceeds the hard limit is
//! dropped outright.
//!
//! Connection hygiene follows the WAL's torn-vs-rot discipline
//! ([`crate::frame`]): a half-received frame waits for more bytes; a
//! corrupt frame (CRC mismatch, absurd length) drops the connection.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use esm_engine::{ArcEngine, Session};
use esm_obs::{Phase, Span, Telemetry, TelemetryConfig, TelemetrySnapshot, TraceId};
use esm_store::Delta;

use crate::frame::{decode_frame, encode_frame};
use crate::poll::{poll_fd, PollFd, PollOutcome, Poller, LISTENER_TOKEN};
use crate::proto::{handle, Request, Response, WireError, PROTOCOL_REV};

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Worker threads executing requests (the poller is extra). Defaults
    /// to the machine's available parallelism, floored at 8 so small
    /// containers still overlap enough requests to batch group commits.
    pub workers: usize,
    /// Upper bound on the poller's sleep between forced wake-ups. On
    /// Linux the poller wakes on real readiness and this only bounds
    /// shutdown latency; on the portable fallback it caps the idle
    /// backoff between full sweeps (which starts at 2µs and doubles).
    pub idle_sleep: Duration,
    /// Hard cap on one connection's buffered output. Crossing half of
    /// it (the push high-water mark) stalls that connection's
    /// subscription pushes; crossing all of it drops the connection.
    pub outbuf_limit: usize,
    /// Knobs for the server's own telemetry registry: slow-op
    /// threshold, ring capacities, trace sampling. The default keeps
    /// zero-config behavior identical to before the knob existed.
    pub telemetry: TelemetryConfig,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            workers: std::thread::available_parallelism().map_or(8, |n| n.get().max(8)),
            idle_sleep: Duration::from_millis(100),
            outbuf_limit: 8 * 1024 * 1024,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl NetServerConfig {
    /// Override the worker pool size (floored at 1).
    pub fn workers(mut self, workers: usize) -> NetServerConfig {
        self.workers = workers.max(1);
        self
    }

    /// Override the poller's idle-sleep cap.
    pub fn idle_sleep(mut self, idle_sleep: Duration) -> NetServerConfig {
        self.idle_sleep = idle_sleep;
        self
    }

    /// Override the per-connection output-buffer hard limit (floored at
    /// 64 KiB; the push high-water mark is half of it).
    pub fn outbuf_limit(mut self, outbuf_limit: usize) -> NetServerConfig {
        self.outbuf_limit = outbuf_limit.max(64 * 1024);
        self
    }

    /// Override the net-layer telemetry knobs (slow threshold, ring
    /// capacities, trace sampling).
    pub fn telemetry_config(mut self, telemetry: TelemetryConfig) -> NetServerConfig {
        self.telemetry = telemetry;
        self
    }
}

/// What `SERVER_PING` answers with: facts the network layer knows
/// about itself without consulting the engine.
#[derive(Debug)]
struct ServerIdentity {
    started: Instant,
    workers: u32,
}

/// Counters the server keeps about itself (the engine keeps its own).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections dropped (EOF, I/O error, protocol corruption, or an
    /// output buffer past its hard limit).
    pub dropped: u64,
    /// Request frames executed.
    pub requests: u64,
    /// Subscription `PUSH` frames sent.
    pub pushes: u64,
    /// Bytes read off client sockets.
    pub bytes_read: u64,
    /// Bytes written back to client sockets.
    pub bytes_written: u64,
}

#[derive(Debug, Default)]
struct NetCounters {
    accepted: AtomicU64,
    dropped: AtomicU64,
    requests: AtomicU64,
    pushes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// One connection's buffered output plus the write-interest latch.
#[derive(Debug, Default)]
struct OutBuf {
    buf: Vec<u8>,
    /// Whether write readiness is currently armed with the poller —
    /// toggled only under the [`ConnShared::out`] lock, so the latch
    /// and the buffer's emptiness never disagree.
    armed: bool,
}

/// State shared between the poller (reads, flush-on-writable), the
/// workers (responses) and the push pump (subscription pushes).
struct ConnShared {
    token: u64,
    session: Session,
    /// A dup of the poller's stream, used only for writing. Both
    /// handles share the open file description, so non-blocking mode
    /// set once applies to both.
    stream: TcpStream,
    fd: PollFd,
    out: Mutex<OutBuf>,
    /// Set on any write failure; the writer also queues the token on
    /// [`SubRegistry::dead`] so the poller reaps the connection.
    dead: AtomicBool,
}

impl ConnShared {
    /// Bytes currently queued for this connection.
    fn buffered(&self) -> usize {
        self.out.lock().map_or(usize::MAX, |o| o.buf.len())
    }

    /// Append `bytes` and flush as much as the socket accepts right
    /// now. Returns false when the connection is (or just became)
    /// dead. Never blocks: a partial write arms write interest and the
    /// poller finishes the job on readiness.
    fn send(&self, bytes: &[u8], poller: &Poller, counters: &NetCounters) -> bool {
        let Ok(mut out) = self.out.lock() else {
            return false;
        };
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        out.buf.extend_from_slice(bytes);
        self.flush_locked(&mut out, poller, counters)
    }

    /// Flush buffered bytes (for the poller's write-readiness path).
    fn flush(&self, poller: &Poller, counters: &NetCounters) -> bool {
        let Ok(mut out) = self.out.lock() else {
            return false;
        };
        self.flush_locked(&mut out, poller, counters)
    }

    fn flush_locked(&self, out: &mut OutBuf, poller: &Poller, counters: &NetCounters) -> bool {
        while !out.buf.is_empty() {
            match (&self.stream).write(&out.buf) {
                Ok(0) => {
                    self.dead.store(true, Ordering::Relaxed);
                    return false;
                }
                Ok(n) => {
                    counters
                        .bytes_written
                        .fetch_add(n as u64, Ordering::Relaxed);
                    out.buf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead.store(true, Ordering::Relaxed);
                    return false;
                }
            }
        }
        if out.buf.is_empty() {
            if out.armed {
                out.armed = false;
                let _ = poller.set_writable(self.fd, self.token, false);
            }
        } else if !out.armed {
            out.armed = true;
            let _ = poller.set_writable(self.fd, self.token, true);
        }
        true
    }
}

/// One subscription: where to push and from which cursor.
struct SubEntry {
    shared: Arc<ConnShared>,
    cursor: u64,
    /// Set when a backpressure stall skipped this subscriber: the
    /// deltas it missed are dropped and its next push is a full-window
    /// resync (the drop-with-resync-marker discipline).
    resync_on_resume: bool,
}

/// Every live subscription, keyed view → connection token. The outer
/// mutex also serializes fan-out rounds, so two pumps never drain the
/// same cursor twice.
#[derive(Default)]
struct SubRegistry {
    subs: Mutex<BTreeMap<String, BTreeMap<u64, SubEntry>>>,
    /// Any subscriber skipped for backpressure in the last round? The
    /// background pump retries on its tick only while this is set.
    any_stalled: AtomicBool,
    /// Tokens whose connection died outside the poller (a failed push
    /// or response write); the poller drains and reaps them.
    dead: Mutex<Vec<u64>>,
}

impl SubRegistry {
    fn insert(&self, token: u64, view: String, cursor: u64, shared: Arc<ConnShared>) {
        if let Ok(mut subs) = self.subs.lock() {
            subs.entry(view).or_default().insert(
                token,
                SubEntry {
                    shared,
                    cursor,
                    resync_on_resume: false,
                },
            );
        }
    }

    fn remove(&self, token: u64, view: &str) {
        if let Ok(mut subs) = self.subs.lock() {
            if let Some(entries) = subs.get_mut(view) {
                entries.remove(&token);
                if entries.is_empty() {
                    subs.remove(view);
                }
            }
        }
    }

    fn remove_conn(&self, token: u64) {
        if let Ok(mut subs) = self.subs.lock() {
            subs.retain(|_, entries| {
                entries.remove(&token);
                !entries.is_empty()
            });
        }
    }

    fn mark_dead(&self, token: u64) {
        if let Ok(mut dead) = self.dead.lock() {
            dead.push(token);
        }
    }

    fn take_dead(&self) -> Vec<u64> {
        self.dead
            .lock()
            .map_or_else(|_| Vec::new(), |mut d| std::mem::take(&mut *d))
    }
}

/// The O(delta) fan-out engine: drains each subscribed view past each
/// subscriber's cursor and pushes the result. Invoked synchronously by
/// the worker that committed and asynchronously by the background pump.
struct PushPump {
    engine: ArcEngine,
    registry: Arc<SubRegistry>,
    telemetry: Arc<Telemetry>,
    push_highwater: usize,
}

/// One entry in `fan_out`'s per-view drain memo, keyed by cursor:
/// `None` records an engine error (skip everyone at that cursor this
/// round); `Some((frame, to_seq))` carries the shared pre-encoded PUSH
/// frame (`None` when the batch was empty and there is nothing to send)
/// plus the cursor every rider advances to.
type DrainMemoEntry = Option<(Option<Arc<Vec<u8>>>, u64)>;

impl PushPump {
    /// One fan-out round over every subscription. Holding the registry
    /// lock for the round serializes concurrent pumps (worker-driven
    /// and background), so a cursor is never drained twice.
    fn fan_out(&self, poller: &Poller, counters: &NetCounters) {
        let Ok(mut subs) = self.registry.subs.lock() else {
            return;
        };
        if subs.is_empty() {
            return;
        }
        self.registry.any_stalled.store(false, Ordering::Relaxed);
        for (view, entries) in subs.iter_mut() {
            // Subscribers at the same cursor share one drain and one
            // encoded frame — the common caught-up case costs one
            // engine call for the whole view.
            let mut memo: HashMap<u64, DrainMemoEntry> = HashMap::new();
            for (token, entry) in entries.iter_mut() {
                if entry.shared.dead.load(Ordering::Relaxed) {
                    continue;
                }
                if entry.shared.buffered() > self.push_highwater {
                    // Backpressure: freeze this subscriber's cursor,
                    // drop what it would have been sent, resync later.
                    entry.resync_on_resume = true;
                    self.registry.any_stalled.store(true, Ordering::Relaxed);
                    continue;
                }
                // A stalled subscriber that drained its buffer resumes
                // with a full-window resync (cursor u64::MAX forces the
                // engine's clamp-to-resync path).
                let drain_cursor = if entry.resync_on_resume {
                    u64::MAX
                } else {
                    entry.cursor
                };
                let batch = match memo.get(&drain_cursor) {
                    Some(hit) => hit.clone(),
                    None => {
                        let computed = match self.engine.view_deltas_since(view, drain_cursor) {
                            Ok(b) if b.is_empty() => Some((None, b.to_seq)),
                            Ok(b) => {
                                // A resync replaces state rather than
                                // spanning a delta range, so its
                                // from_seq is normalized to to_seq (the
                                // engine echoes whatever cursor was
                                // asked for, including the forced
                                // u64::MAX sentinel).
                                let from_seq = if b.resync.is_some() {
                                    b.to_seq
                                } else {
                                    b.from_seq
                                };
                                let resp = Response::Push {
                                    view: view.clone(),
                                    from_seq,
                                    to_seq: b.to_seq,
                                    delta: b.delta,
                                    resync: b.resync,
                                };
                                Some((Some(Arc::new(encode_frame(&resp.encode()))), b.to_seq))
                            }
                            // The view vanished (or the engine is
                            // wedged): leave the cursor; a later round
                            // retries or the unsubscribe cleans up.
                            Err(_) => None,
                        };
                        memo.insert(drain_cursor, computed.clone());
                        computed
                    }
                };
                let Some((frame, to_seq)) = batch else {
                    continue;
                };
                let Some(frame) = frame else {
                    // Nothing settled past the cursor: nothing to push.
                    if !entry.resync_on_resume {
                        entry.cursor = entry.cursor.max(to_seq);
                    }
                    continue;
                };
                let write_span = Span::start();
                let mut tspan = esm_obs::trace::span_tagged("net_push_write", view.clone());
                if let Some(s) = tspan.as_mut() {
                    s.set_bytes(frame.len() as u64);
                }
                let ok = entry.shared.send(&frame, poller, counters);
                drop(tspan);
                self.telemetry
                    .record(Phase::NetPushWrite, write_span.elapsed_ns());
                if ok {
                    counters.pushes.fetch_add(1, Ordering::Relaxed);
                    entry.cursor = to_seq;
                    entry.resync_on_resume = false;
                } else {
                    self.registry.mark_dead(*token);
                    poller.notify();
                }
            }
        }
    }
}

struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    inbuf: Vec<u8>,
    /// Complete frames waiting their turn, each with its decode time.
    pending: VecDeque<(Vec<u8>, u64)>,
    busy: bool,
}

struct Job {
    /// Unique connection id (never reused, so a completion for a dead
    /// connection can never un-busy a later one).
    token: u64,
    shared: Arc<ConnShared>,
    payload: Vec<u8>,
    /// When the poller handed the frame to the pool (queue-wait clock).
    enqueued: Instant,
    /// How long the poller spent extracting this frame — a traced
    /// request backdates its server-side root by this much so the
    /// trace's origin sits where the bytes became a frame.
    decode_ns: u64,
}

/// A running network front end. Dropping it shuts the server down and
/// joins every thread.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    telemetry: Arc<Telemetry>,
    poller: Arc<Poller>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `engine` until shutdown.
    pub fn bind(
        engine: ArcEngine,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        NetServer::serve(engine, TcpListener::bind(addr)?, config)
    }

    /// Serve `engine` on an already-bound listener.
    pub fn serve(
        engine: ArcEngine,
        listener: TcpListener,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        let telemetry = Arc::new(Telemetry::with_config(config.telemetry.clone()));
        let identity = Arc::new(ServerIdentity {
            started: Instant::now(),
            workers: u32::try_from(config.workers.max(1)).unwrap_or(u32::MAX),
        });
        let poller = Arc::new(Poller::new()?);
        poller.register(poll_fd(&listener), LISTENER_TOKEN)?;
        let registry = Arc::new(SubRegistry::default());
        let pump = Arc::new(PushPump {
            engine: engine.as_engine(),
            registry: Arc::clone(&registry),
            telemetry: Arc::clone(&telemetry),
            push_highwater: config.outbuf_limit / 2,
        });

        let (jobs_tx, jobs_rx) = channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let (done_tx, done_rx) = channel::<u64>();

        let mut threads = Vec::with_capacity(config.workers.max(1) + 2);
        for _ in 0..config.workers.max(1) {
            let jobs_rx = Arc::clone(&jobs_rx);
            let done_tx = done_tx.clone();
            let counters = Arc::clone(&counters);
            let telemetry = Arc::clone(&telemetry);
            let identity = Arc::clone(&identity);
            let poller = Arc::clone(&poller);
            let registry = Arc::clone(&registry);
            let pump = Arc::clone(&pump);
            threads.push(std::thread::spawn(move || {
                worker_loop(
                    &jobs_rx, &done_tx, &counters, &telemetry, &identity, &poller, &registry, &pump,
                );
            }));
        }
        drop(done_tx);

        // The background push pump: parks on the engine's commit signal
        // and fans out pushes for commits this server didn't execute
        // (in-process sessions, other fronts) plus stalled-subscriber
        // retries. Worker threads fan out synchronously for their own
        // commits, so the pump is the safety net, not the hot path.
        {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let poller = Arc::clone(&poller);
            let pump = Arc::clone(&pump);
            let notifier = engine.commit_notifier();
            threads.push(std::thread::spawn(move || {
                let mut seen = 0u64;
                while !shutdown.load(Ordering::SeqCst) {
                    match &notifier {
                        Some(n) => {
                            let cur = n.wait_past(seen, Duration::from_millis(50));
                            if shutdown.load(Ordering::SeqCst) {
                                return;
                            }
                            let stalled = pump.registry.any_stalled.load(Ordering::Relaxed);
                            if cur > seen || stalled {
                                seen = cur;
                                pump.fan_out(&poller, &counters);
                            }
                        }
                        None => {
                            // No commit signal (a proxied engine):
                            // tick. Coarse, but correct — drains always
                            // start from stored cursors.
                            std::thread::sleep(Duration::from_millis(50));
                            if shutdown.load(Ordering::SeqCst) {
                                return;
                            }
                            pump.fan_out(&poller, &counters);
                        }
                    }
                }
            }));
        }

        {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let telemetry = Arc::clone(&telemetry);
            let poller = Arc::clone(&poller);
            let registry = Arc::clone(&registry);
            threads.push(std::thread::spawn(move || {
                poller_loop(
                    engine, listener, config, &shutdown, &counters, &telemetry, &poller, &registry,
                    jobs_tx, done_rx,
                );
            }));
        }

        Ok(NetServer {
            addr,
            shutdown,
            counters,
            telemetry,
            poller,
            threads,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime connection/request counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            pushes: self.counters.pushes.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// The server's own phase-latency snapshot: frame decode, queue
    /// wait, handler execution, response write, push write. Engine
    /// phases live on the engine's [`esm_engine::Engine::telemetry`];
    /// the `STATS` verb returns both, merged.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// Stop accepting, drop every connection, and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.poller.notify();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetServer {{ addr: {} }}", self.addr)
    }
}

/// A short stable name for the server-side trace root of one request.
fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Ping => "net:ping",
        Request::TableNames => "net:table_names",
        Request::Table(_) => "net:table",
        Request::Snapshot => "net:snapshot",
        Request::DefineView { .. } => "net:define_view",
        Request::OpenView(_) => "net:open_view",
        Request::ViewNames => "net:view_names",
        Request::ReadView(_) => "net:read_view",
        Request::WriteView { .. } => "net:write_view",
        Request::EditViewCas { .. } => "net:edit_view_cas",
        Request::Commit { .. } => "net:commit",
        Request::Metrics => "net:metrics",
        Request::Stats => "net:stats",
        Request::Checkpoint => "net:checkpoint",
        Request::SyncWal => "net:sync_wal",
        Request::ServerPing => "net:server_ping",
        Request::Traces => "net:traces",
        Request::Subscribe { .. } => "net:subscribe",
        Request::Unsubscribe(_) => "net:unsubscribe",
        Request::ReplManifest => "net:repl_manifest",
        Request::ReplFetch { .. } => "net:repl_fetch",
    }
}

/// Deferred work a worker performs after its response frame is on the
/// wire, so frame order on the connection is deterministic.
enum Post {
    None,
    /// Register the subscription (after the `SubAck` and the optional
    /// initial resync push are buffered) and run a catch-up fan-out.
    Subscribe {
        view: String,
        cursor: u64,
        initial: Option<Vec<u8>>,
    },
}

/// Build the `SUBSCRIBE` reply: validate the view, resolve the cursor,
/// and for a "from now" subscription pre-encode the initial full-window
/// resync push. Registration itself is deferred ([`Post::Subscribe`]).
fn subscribe_prep(
    engine: &dyn esm_engine::Engine,
    view: &str,
    cursor: Option<u64>,
) -> (Response, Post) {
    match cursor {
        Some(c) => match engine.view_cursor(view) {
            // An explicit cursor resumes a previous session; the
            // catch-up fan-out after registration delivers (or resyncs)
            // everything settled past it.
            Ok(_) => (
                Response::SubAck { cursor: c },
                Post::Subscribe {
                    view: view.to_string(),
                    cursor: c,
                    initial: None,
                },
            ),
            Err(e) => (Response::Err(e), Post::None),
        },
        None => {
            // "From now": ack the current cursor and seed the client
            // with the full current window. The window is read after
            // the cursor, so it may already reflect later commits —
            // those deltas are re-delivered and apply idempotently
            // (upserts and tolerant deletes).
            let prepared = engine
                .view_cursor(view)
                .and_then(|c| engine.read_view(view).map(|w| (c, w)));
            match prepared {
                Ok((c, window)) => {
                    let push = Response::Push {
                        view: view.to_string(),
                        from_seq: c,
                        to_seq: c,
                        delta: Delta::empty(),
                        resync: Some(window),
                    };
                    (
                        Response::SubAck { cursor: c },
                        Post::Subscribe {
                            view: view.to_string(),
                            cursor: c,
                            initial: Some(encode_frame(&push.encode())),
                        },
                    )
                }
                Err(e) => (Response::Err(e), Post::None),
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    jobs: &Mutex<Receiver<Job>>,
    done: &Sender<u64>,
    counters: &NetCounters,
    telemetry: &Telemetry,
    identity: &ServerIdentity,
    poller: &Poller,
    registry: &SubRegistry,
    pump: &PushPump,
) {
    loop {
        // Take the receiver lock only to fetch the next job, never
        // while executing one.
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        let queue_ns = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry.record(Phase::NetQueueWait, queue_ns);
        // Panic containment: a request that panics its handler must
        // cost an error response, not this worker thread (a dead worker
        // shrinks the pool and wedges the connection whose completion
        // token it never sent).
        let handler_span = Span::start();
        let (mut response, trace_root, post) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match Request::decode_with_trace(&job.payload) {
                    Ok((req, ctx)) => {
                        // A wire trace context roots a server-side tree
                        // under the client's trace id, unconditionally
                        // (the client already made the sampling call).
                        // Its origin is backdated to when the poller
                        // started extracting the frame, so the already-
                        // measured decode and queue-wait phases file as
                        // proper spans instead of vanishing into the
                        // root's leading edge.
                        let root = ctx.map(|(id, _parent)| {
                            let origin = job
                                .enqueued
                                .checked_sub(Duration::from_nanos(job.decode_ns))
                                .unwrap_or(job.enqueued);
                            let root =
                                telemetry.start_trace_with_id(TraceId(id), op_name(&req), origin);
                            root.record_span(
                                "net_frame_decode",
                                "",
                                0,
                                job.decode_ns,
                                job.payload.len() as u64,
                            );
                            root.record_span("net_queue_wait", "", job.decode_ns, queue_ns, 0);
                            root
                        });
                        match req {
                            // SERVER_PING is answered right here: no
                            // engine call, no engine lock — it stays
                            // honest even while the engine is wedged.
                            Request::ServerPing => (
                                Response::ServerInfo {
                                    uptime_ms: u64::try_from(
                                        identity.started.elapsed().as_millis(),
                                    )
                                    .unwrap_or(u64::MAX),
                                    protocol_rev: PROTOCOL_REV,
                                    workers: identity.workers,
                                },
                                root,
                                Post::None,
                            ),
                            // Subscribe/Unsubscribe are connection
                            // state, so the net layer owns them.
                            Request::Subscribe { view, cursor } => {
                                let (resp, post) =
                                    subscribe_prep(job.shared.session.engine(), &view, cursor);
                                (resp, root, post)
                            }
                            Request::Unsubscribe(view) => {
                                registry.remove(job.token, &view);
                                (Response::Unit, root, Post::None)
                            }
                            req => {
                                let commitish = matches!(
                                    req,
                                    Request::WriteView { .. }
                                        | Request::EditViewCas { .. }
                                        | Request::Commit { .. }
                                );
                                let hspan = esm_obs::trace::span("net_handler");
                                let resp = handle(&job.shared.session, req);
                                drop(hspan);
                                // Fan out this commit's pushes NOW,
                                // inside the request's trace, so the
                                // sub_drain / net_push_write spans hang
                                // off the commit that caused them.
                                if commitish && !matches!(resp, Response::Err(_)) {
                                    pump.fan_out(poller, counters);
                                }
                                (resp, root, Post::None)
                            }
                        }
                    }
                    Err(WireError(msg)) => (
                        Response::Err(esm_engine::EngineError::Io(format!("bad request: {msg}"))),
                        None,
                        Post::None,
                    ),
                }
            }))
            .unwrap_or_else(|_| {
                (
                    Response::Err(esm_engine::EngineError::Io(
                        "internal error while handling the request".into(),
                    )),
                    None,
                    Post::None,
                )
            });
        telemetry.record(Phase::NetHandler, handler_span.elapsed_ns());
        // A STATS response carries the engine's phases; fold in the
        // server's own net-layer phases (disjoint sets — the engine
        // never records `net_*`, the server never records engine
        // phases — so the merge changes no engine histogram). TRACE
        // gets the same treatment: the net layer's wire-rooted trees
        // ride along with the engine's session-rooted ones.
        if let Response::Stats(snap) = &mut response {
            snap.merge(&telemetry.snapshot());
        }
        if let Response::Traces(report) = &mut response {
            report.merge(&telemetry.traces_report());
        }
        let write_span = Span::start();
        let mut wspan = esm_obs::trace::span("net_response_write");
        let framed = encode_frame(&response.encode());
        if let Some(s) = wspan.as_mut() {
            s.set_bytes(framed.len() as u64);
        }
        // Direct write: the response goes to the socket from this
        // thread; only a partial write leaves bytes for the poller.
        let mut alive = job.shared.send(&framed, poller, counters);
        drop(wspan);
        // Files the trace (the root drop snapshots every span recorded
        // under it, response write included).
        drop(trace_root);
        telemetry.record(Phase::NetResponseWrite, write_span.elapsed_ns());
        if alive {
            if let Post::Subscribe {
                view,
                cursor,
                initial,
            } = post
            {
                if let Some(push) = initial {
                    counters.pushes.fetch_add(1, Ordering::Relaxed);
                    alive = job.shared.send(&push, poller, counters);
                }
                if alive {
                    // Register only after the ack (and initial window)
                    // are buffered, so no pump round can interleave a
                    // delta push before them; the catch-up fan-out then
                    // closes the registration gap.
                    registry.insert(job.token, view, cursor, Arc::clone(&job.shared));
                    pump.fan_out(poller, counters);
                }
            }
        }
        if !alive {
            registry.mark_dead(job.token);
        }
        // The poller re-arms the connection (or reaps it); the wake-up
        // makes that immediate instead of waiting out a sleep.
        let _ = done.send(job.token);
        poller.notify();
    }
}

#[allow(clippy::too_many_arguments)]
fn poller_loop(
    engine: ArcEngine,
    listener: TcpListener,
    config: NetServerConfig,
    shutdown: &AtomicBool,
    counters: &NetCounters,
    telemetry: &Telemetry,
    poller: &Poller,
    registry: &SubRegistry,
    jobs: Sender<Job>,
    done: Receiver<u64>,
) {
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut next_token: u64 = 0;
    let mut read_chunk = [0u8; 16 * 1024];
    // The fallback poller has no readiness facts, so between sweeps it
    // backs off adaptively: near-spinning right after activity, up to
    // the configured cap during a lull. The epoll poller ignores this
    // and blocks until real readiness (or the cap, for shutdown).
    let min_sleep = Duration::from_micros(2);
    let mut backoff = min_sleep;
    while !shutdown.load(Ordering::SeqCst) {
        let timeout = backoff.min(config.idle_sleep.max(min_sleep)).max(min_sleep);
        let outcome = match poller.wait(config.idle_sleep.max(timeout).min(config.idle_sleep)) {
            Ok(o) => o,
            Err(_) => PollOutcome::ScanAll,
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut active = false;

        // Reap connections whose writer (worker or pump) hit an error.
        for token in registry.take_dead() {
            drop_conn(&mut conns, token, poller, registry, counters);
        }

        // Completions: connections whose in-flight request finished.
        loop {
            match done.try_recv() {
                Ok(token) => {
                    active = true;
                    if let Some(conn) = conns.get_mut(&token) {
                        conn.busy = false;
                        if conn.shared.dead.load(Ordering::Relaxed)
                            || dispatch_next(token, conn, &jobs)
                        {
                            drop_conn(&mut conns, token, poller, registry, counters);
                        }
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }

        match outcome {
            PollOutcome::Ready(events) => {
                for ev in events {
                    if ev.token == LISTENER_TOKEN {
                        active |= accept_loop(
                            &listener,
                            &engine,
                            &mut conns,
                            &mut next_token,
                            poller,
                            counters,
                        );
                        continue;
                    }
                    let Some(conn) = conns.get_mut(&ev.token) else {
                        continue;
                    };
                    let mut dead = false;
                    if ev.readable {
                        active = true;
                        dead = service_readable(
                            ev.token,
                            conn,
                            &mut read_chunk,
                            telemetry,
                            counters,
                            &jobs,
                        );
                    }
                    if !dead && ev.writable {
                        active = true;
                        dead = !conn.shared.flush(poller, counters);
                    }
                    if !dead {
                        dead = conn.shared.buffered() > config.outbuf_limit;
                    }
                    if dead {
                        drop_conn(&mut conns, ev.token, poller, registry, counters);
                    }
                }
            }
            PollOutcome::ScanAll => {
                // No readiness facts: accept, then sweep every
                // connection with non-blocking reads and flushes.
                active |= accept_loop(
                    &listener,
                    &engine,
                    &mut conns,
                    &mut next_token,
                    poller,
                    counters,
                );
                let tokens: Vec<u64> = conns.keys().copied().collect();
                for token in tokens {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let had_bytes = !conn.inbuf.is_empty() || !conn.pending.is_empty();
                    let mut dead =
                        service_readable(token, conn, &mut read_chunk, telemetry, counters, &jobs);
                    if !dead {
                        dead = !conn.shared.flush(poller, counters)
                            || conn.shared.buffered() > config.outbuf_limit;
                    }
                    active |= had_bytes != (!conn.inbuf.is_empty() || !conn.pending.is_empty());
                    if dead {
                        drop_conn(&mut conns, token, poller, registry, counters);
                        active = true;
                    }
                }
            }
        }

        backoff = if active {
            min_sleep
        } else {
            (backoff * 2).min(config.idle_sleep.max(min_sleep))
        };
    }
    // Shutdown: dropping `jobs` ends the workers once the queue drains;
    // dropping the connections closes every socket.
    for (_, conn) in conns.iter() {
        poller.deregister(poll_fd(&conn.stream));
    }
}

/// Accept every pending connection; returns whether any arrived.
fn accept_loop(
    listener: &TcpListener,
    engine: &ArcEngine,
    conns: &mut BTreeMap<u64, Conn>,
    next_token: &mut u64,
    poller: &Poller,
    counters: &NetCounters,
) -> bool {
    let mut any = false;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                any = true;
                let token = *next_token;
                *next_token += 1;
                let fd = poll_fd(&stream);
                if poller.register(fd, token).is_err() {
                    counters.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let conn = Conn {
                    stream,
                    shared: Arc::new(ConnShared {
                        token,
                        session: Session::new(engine.as_engine()),
                        stream: write_half,
                        fd,
                        out: Mutex::new(OutBuf::default()),
                        dead: AtomicBool::new(false),
                    }),
                    inbuf: Vec::new(),
                    pending: VecDeque::new(),
                    busy: false,
                };
                conns.insert(token, conn);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
    any
}

/// Drain readable bytes, extract frames, dispatch if idle. Returns
/// true when the connection must drop (EOF, I/O error, corruption).
fn service_readable(
    token: u64,
    conn: &mut Conn,
    read_chunk: &mut [u8],
    telemetry: &Telemetry,
    counters: &NetCounters,
    jobs: &Sender<Job>,
) -> bool {
    loop {
        match conn.stream.read(read_chunk) {
            Ok(0) => return true,
            Ok(n) => {
                counters.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                conn.inbuf.extend_from_slice(&read_chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    // Extract complete frames (torn prefixes wait; corruption drops
    // the connection).
    loop {
        let decode_span = Span::start();
        match decode_frame(&conn.inbuf) {
            Ok(Some((payload, consumed))) => {
                let decode_ns = decode_span.elapsed_ns();
                telemetry.record(Phase::NetFrameDecode, decode_ns);
                conn.inbuf.drain(..consumed);
                conn.pending.push_back((payload, decode_ns));
            }
            Ok(None) => break,
            Err(_) => return true,
        }
    }
    if !conn.busy {
        return dispatch_next(token, conn, jobs);
    }
    false
}

/// Hand the next pending frame to the pool, preserving the ≤1-in-flight
/// per-connection ordering invariant. Returns true when the pool is
/// gone (shutdown) and the connection should drop.
fn dispatch_next(token: u64, conn: &mut Conn, jobs: &Sender<Job>) -> bool {
    if conn.busy {
        return false;
    }
    if let Some((payload, decode_ns)) = conn.pending.pop_front() {
        conn.busy = true;
        if jobs
            .send(Job {
                token,
                shared: Arc::clone(&conn.shared),
                payload,
                enqueued: Instant::now(),
                decode_ns,
            })
            .is_err()
        {
            return true;
        }
    }
    false
}

fn drop_conn(
    conns: &mut BTreeMap<u64, Conn>,
    token: u64,
    poller: &Poller,
    registry: &SubRegistry,
    counters: &NetCounters,
) {
    if let Some(conn) = conns.remove(&token) {
        conn.shared.dead.store(true, Ordering::Relaxed);
        poller.deregister(poll_fd(&conn.stream));
        registry.remove_conn(token);
        counters.dropped.fetch_add(1, Ordering::Relaxed);
    }
}
