//! [`NetServer`]: a non-blocking, thread-pooled socket front end.
//!
//! One poller thread owns every connection in non-blocking mode and
//! runs a readiness loop — accept, read, frame, dispatch, flush — so
//! thousands of idle connections cost no threads (the std-only
//! equivalent of a hand-rolled epoll loop, consistent with the offline
//! no-new-runtime-dependency policy). Complete request frames are
//! handed to a small worker pool that executes them against the shared
//! [`Engine`] through each connection's own [`Session`] (per-client
//! view registrations, commit stamps, retry policy) — this is the
//! multiplexing: N connections, K worker threads, one engine, with the
//! engine's stripe/shard pipelines providing the real commit
//! parallelism underneath.
//!
//! Per-connection ordering is preserved: a connection has at most one
//! request in flight in the pool; further pipelined frames queue on the
//! poller until the previous response is written. Responses travel
//! back through a per-connection output buffer the poller flushes
//! opportunistically.
//!
//! Connection hygiene follows the WAL's torn-vs-rot discipline
//! ([`crate::frame`]): a half-received frame waits for more bytes; a
//! corrupt frame (CRC mismatch, absurd length) drops the connection.

use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use esm_engine::{ArcEngine, Session};
use esm_obs::{Phase, Span, Telemetry, TelemetrySnapshot};

use crate::frame::{decode_frame, encode_frame};
use crate::proto::{handle, Request, Response, WireError};

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Worker threads executing requests (the poller is extra). Defaults
    /// to the machine's available parallelism, floored at 8 so small
    /// containers still overlap enough requests to batch group commits.
    pub workers: usize,
    /// Upper bound on the poller's idle sleep. The poller normally
    /// wakes on a worker-completion signal; this cap only decides how
    /// stale a *new connection or request* can go unnoticed while every
    /// existing connection is quiet, and how long the idle backoff
    /// (which starts at 2µs and doubles) is allowed to grow.
    pub idle_sleep: Duration,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            workers: std::thread::available_parallelism().map_or(8, |n| n.get().max(8)),
            idle_sleep: Duration::from_micros(200),
        }
    }
}

impl NetServerConfig {
    /// Override the worker pool size (floored at 1).
    pub fn workers(mut self, workers: usize) -> NetServerConfig {
        self.workers = workers.max(1);
        self
    }

    /// Override the poller's idle-sleep cap.
    pub fn idle_sleep(mut self, idle_sleep: Duration) -> NetServerConfig {
        self.idle_sleep = idle_sleep;
        self
    }
}

/// Wakes the poller the moment a worker finishes a request, so a ready
/// response is flushed immediately instead of waiting out the poller's
/// idle sleep (at 256 clients those lost sleeps were the collapse: the
/// poller was asleep while every worker had a response buffered).
#[derive(Debug, Default)]
struct PollerWake {
    /// Bumped on every notification; the poller skips the wait entirely
    /// when the generation moved while it was scanning connections.
    generation: Mutex<u64>,
    cv: Condvar,
}

impl PollerWake {
    fn notify(&self) {
        let mut generation = self.generation.lock().expect("poller wake lock");
        *generation = generation.wrapping_add(1);
        self.cv.notify_one();
    }

    /// Sleep until the generation moves past `seen` or `timeout`
    /// elapses; returns the generation observed on wake-up.
    fn wait(&self, seen: u64, timeout: Duration) -> u64 {
        let mut generation = self.generation.lock().expect("poller wake lock");
        while *generation == seen {
            let (guard, result) = self
                .cv
                .wait_timeout(generation, timeout)
                .expect("poller wake lock");
            generation = guard;
            if result.timed_out() {
                break;
            }
        }
        *generation
    }
}

/// Counters the server keeps about itself (the engine keeps its own).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections dropped (EOF, I/O error, or protocol corruption).
    pub dropped: u64,
    /// Request frames executed.
    pub requests: u64,
    /// Bytes read off client sockets.
    pub bytes_read: u64,
    /// Bytes written back to client sockets.
    pub bytes_written: u64,
}

#[derive(Debug, Default)]
struct NetCounters {
    accepted: AtomicU64,
    dropped: AtomicU64,
    requests: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// State a worker needs to answer one connection's requests.
struct ConnShared {
    session: Session,
    outbuf: Mutex<Vec<u8>>,
}

struct Job {
    /// Unique connection id (never reused, so a completion for a dead
    /// connection can never un-busy a later one).
    token: u64,
    shared: Arc<ConnShared>,
    payload: Vec<u8>,
    /// When the poller handed the frame to the pool (queue-wait clock).
    enqueued: Instant,
}

struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    inbuf: Vec<u8>,
    pending: VecDeque<Vec<u8>>,
    busy: bool,
}

/// A running network front end. Dropping it shuts the server down and
/// joins every thread.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    telemetry: Arc<Telemetry>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `engine` until shutdown.
    pub fn bind(
        engine: ArcEngine,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        NetServer::serve(engine, TcpListener::bind(addr)?, config)
    }

    /// Serve `engine` on an already-bound listener.
    pub fn serve(
        engine: ArcEngine,
        listener: TcpListener,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        let telemetry = Arc::new(Telemetry::new());

        let (jobs_tx, jobs_rx) = channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let (done_tx, done_rx) = channel::<u64>();
        let wake = Arc::new(PollerWake::default());

        let mut threads = Vec::with_capacity(config.workers.max(1) + 1);
        for _ in 0..config.workers.max(1) {
            let jobs_rx = Arc::clone(&jobs_rx);
            let done_tx = done_tx.clone();
            let counters = Arc::clone(&counters);
            let telemetry = Arc::clone(&telemetry);
            let wake = Arc::clone(&wake);
            threads.push(std::thread::spawn(move || {
                worker_loop(&jobs_rx, &done_tx, &counters, &telemetry, &wake);
            }));
        }
        drop(done_tx);

        {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let telemetry = Arc::clone(&telemetry);
            threads.push(std::thread::spawn(move || {
                poller_loop(
                    engine, listener, config, &shutdown, &counters, &telemetry, jobs_tx, done_rx,
                    &wake,
                );
            }));
        }

        Ok(NetServer {
            addr,
            shutdown,
            counters,
            telemetry,
            threads,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime connection/request counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// The server's own phase-latency snapshot: frame decode, queue
    /// wait, handler execution, response write. Engine phases live on
    /// the engine's [`esm_engine::Engine::telemetry`]; the `STATS` verb
    /// returns both, merged.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// Stop accepting, drop every connection, and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetServer {{ addr: {} }}", self.addr)
    }
}

fn worker_loop(
    jobs: &Mutex<Receiver<Job>>,
    done: &Sender<u64>,
    counters: &NetCounters,
    telemetry: &Telemetry,
    wake: &PollerWake,
) {
    loop {
        // Take the receiver lock only to fetch the next job, never
        // while executing one.
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        telemetry.record(
            Phase::NetQueueWait,
            u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        // Panic containment: a request that panics its handler must
        // cost an error response, not this worker thread (a dead worker
        // shrinks the pool and wedges the connection whose completion
        // token it never sent).
        let handler_span = Span::start();
        let mut response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match Request::decode(&job.payload) {
                Ok(req) => handle(&job.shared.session, req),
                Err(WireError(msg)) => {
                    Response::Err(esm_engine::EngineError::Io(format!("bad request: {msg}")))
                }
            }
        }))
        .unwrap_or_else(|_| {
            Response::Err(esm_engine::EngineError::Io(
                "internal error while handling the request".into(),
            ))
        });
        telemetry.record(Phase::NetHandler, handler_span.elapsed_ns());
        // A STATS response carries the engine's phases; fold in the
        // server's own net-layer phases (disjoint sets — the engine
        // never records `net_*`, the server never records engine
        // phases — so the merge changes no engine histogram).
        if let Response::Stats(snap) = &mut response {
            snap.merge(&telemetry.snapshot());
        }
        let write_span = Span::start();
        let framed = encode_frame(&response.encode());
        if let Ok(mut out) = job.shared.outbuf.lock() {
            out.extend_from_slice(&framed);
        }
        telemetry.record(Phase::NetResponseWrite, write_span.elapsed_ns());
        // The poller flushes and re-arms the connection; if it is gone,
        // so is the connection. The wake-up makes the flush immediate
        // instead of waiting out the poller's idle sleep.
        let _ = done.send(job.token);
        wake.notify();
    }
}

#[allow(clippy::too_many_arguments)]
fn poller_loop(
    engine: ArcEngine,
    listener: TcpListener,
    config: NetServerConfig,
    shutdown: &AtomicBool,
    counters: &NetCounters,
    telemetry: &Telemetry,
    jobs: Sender<Job>,
    done: Receiver<u64>,
    wake: &PollerWake,
) {
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut next_token: u64 = 0;
    let mut read_chunk = [0u8; 16 * 1024];
    // Adaptive idle backoff: start near-spinning when activity just
    // stopped (a client is mid-burst and the next request is µs away),
    // double toward the configured cap as the lull stretches.
    let min_sleep = Duration::from_micros(2);
    let mut backoff = min_sleep;
    let mut seen_wake: u64 = 0;
    while !shutdown.load(Ordering::SeqCst) {
        let mut active = false;

        // Accept.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    counters.accepted.fetch_add(1, Ordering::Relaxed);
                    active = true;
                    let conn = Conn {
                        stream,
                        shared: Arc::new(ConnShared {
                            session: Session::new(engine.as_engine()),
                            outbuf: Mutex::new(Vec::new()),
                        }),
                        inbuf: Vec::new(),
                        pending: VecDeque::new(),
                        busy: false,
                    };
                    conns.insert(next_token, conn);
                    next_token += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Completions: connections whose in-flight request finished.
        loop {
            match done.try_recv() {
                Ok(token) => {
                    active = true;
                    if let Some(conn) = conns.get_mut(&token) {
                        conn.busy = false;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }

        // Read, frame, dispatch, flush — per connection.
        let tokens: Vec<u64> = conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let mut drop_conn = false;

            // Drain readable bytes.
            loop {
                match conn.stream.read(&mut read_chunk) {
                    Ok(0) => {
                        drop_conn = true;
                        break;
                    }
                    Ok(n) => {
                        active = true;
                        counters.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                        conn.inbuf.extend_from_slice(&read_chunk[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        drop_conn = true;
                        break;
                    }
                }
            }

            // Extract complete frames (torn prefixes wait; corruption
            // drops the connection).
            if !drop_conn {
                loop {
                    let decode_span = Span::start();
                    match decode_frame(&conn.inbuf) {
                        Ok(Some((payload, consumed))) => {
                            telemetry.record(Phase::NetFrameDecode, decode_span.elapsed_ns());
                            conn.inbuf.drain(..consumed);
                            conn.pending.push_back(payload);
                        }
                        Ok(None) => break,
                        Err(_) => {
                            drop_conn = true;
                            break;
                        }
                    }
                }
            }

            // Dispatch at most one in-flight request per connection so
            // responses keep request order.
            if !drop_conn && !conn.busy {
                if let Some(payload) = conn.pending.pop_front() {
                    conn.busy = true;
                    active = true;
                    if jobs
                        .send(Job {
                            token,
                            shared: Arc::clone(&conn.shared),
                            payload,
                            enqueued: Instant::now(),
                        })
                        .is_err()
                    {
                        drop_conn = true;
                    }
                }
            }

            // Flush buffered response bytes.
            if !drop_conn {
                if let Ok(mut out) = conn.shared.outbuf.lock() {
                    while !out.is_empty() {
                        match conn.stream.write(&out) {
                            Ok(0) => {
                                drop_conn = true;
                                break;
                            }
                            Ok(n) => {
                                active = true;
                                counters
                                    .bytes_written
                                    .fetch_add(n as u64, Ordering::Relaxed);
                                out.drain(..n);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                            Err(_) => {
                                drop_conn = true;
                                break;
                            }
                        }
                    }
                }
            }

            if drop_conn {
                counters.dropped.fetch_add(1, Ordering::Relaxed);
                conns.remove(&token);
            }
        }

        if active {
            backoff = min_sleep;
        } else {
            // Park until a worker finishes (the condvar fires the
            // instant a response is buffered) or the backoff elapses —
            // the timeout exists for events no worker signals: a new
            // connection, or request bytes on an idle socket. A
            // notification that arrived while this pass was scanning
            // moves the generation past `seen_wake`, and the wait
            // returns immediately instead of sleeping on a stale count.
            seen_wake = wake.wait(seen_wake, backoff);
            backoff = (backoff * 2).min(config.idle_sleep.max(min_sleep));
        }
    }
    // Shutdown: dropping `jobs` ends the workers once the queue drains;
    // dropping the connections closes every socket.
}
