//! [`NetServer`]: a non-blocking, thread-pooled socket front end.
//!
//! One poller thread owns every connection in non-blocking mode and
//! runs a readiness loop — accept, read, frame, dispatch, flush — so
//! thousands of idle connections cost no threads (the std-only
//! equivalent of a hand-rolled epoll loop, consistent with the offline
//! no-new-runtime-dependency policy). Complete request frames are
//! handed to a small worker pool that executes them against the shared
//! [`Engine`] through each connection's own [`Session`] (per-client
//! view registrations, commit stamps, retry policy) — this is the
//! multiplexing: N connections, K worker threads, one engine, with the
//! engine's stripe/shard pipelines providing the real commit
//! parallelism underneath.
//!
//! Per-connection ordering is preserved: a connection has at most one
//! request in flight in the pool; further pipelined frames queue on the
//! poller until the previous response is written. Responses travel
//! back through a per-connection output buffer the poller flushes
//! opportunistically.
//!
//! Connection hygiene follows the WAL's torn-vs-rot discipline
//! ([`crate::frame`]): a half-received frame waits for more bytes; a
//! corrupt frame (CRC mismatch, absurd length) drops the connection.

use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use esm_engine::{ArcEngine, Session};
use esm_obs::{Phase, Span, Telemetry, TelemetryConfig, TelemetrySnapshot, TraceId};

use crate::frame::{decode_frame, encode_frame};
use crate::proto::{handle, Request, Response, WireError, PROTOCOL_REV};

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Worker threads executing requests (the poller is extra). Defaults
    /// to the machine's available parallelism, floored at 8 so small
    /// containers still overlap enough requests to batch group commits.
    pub workers: usize,
    /// Upper bound on the poller's idle sleep. The poller normally
    /// wakes on a worker-completion signal; this cap only decides how
    /// stale a *new connection or request* can go unnoticed while every
    /// existing connection is quiet, and how long the idle backoff
    /// (which starts at 2µs and doubles) is allowed to grow.
    pub idle_sleep: Duration,
    /// Knobs for the server's own telemetry registry: slow-op
    /// threshold, ring capacities, trace sampling. The default keeps
    /// zero-config behavior identical to before the knob existed.
    pub telemetry: TelemetryConfig,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            workers: std::thread::available_parallelism().map_or(8, |n| n.get().max(8)),
            idle_sleep: Duration::from_micros(200),
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl NetServerConfig {
    /// Override the worker pool size (floored at 1).
    pub fn workers(mut self, workers: usize) -> NetServerConfig {
        self.workers = workers.max(1);
        self
    }

    /// Override the poller's idle-sleep cap.
    pub fn idle_sleep(mut self, idle_sleep: Duration) -> NetServerConfig {
        self.idle_sleep = idle_sleep;
        self
    }

    /// Override the net-layer telemetry knobs (slow threshold, ring
    /// capacities, trace sampling).
    pub fn telemetry_config(mut self, telemetry: TelemetryConfig) -> NetServerConfig {
        self.telemetry = telemetry;
        self
    }
}

/// What `SERVER_PING` answers with: facts the network layer knows
/// about itself without consulting the engine.
#[derive(Debug)]
struct ServerIdentity {
    started: Instant,
    workers: u32,
}

/// Wakes the poller the moment a worker finishes a request, so a ready
/// response is flushed immediately instead of waiting out the poller's
/// idle sleep (at 256 clients those lost sleeps were the collapse: the
/// poller was asleep while every worker had a response buffered).
#[derive(Debug, Default)]
struct PollerWake {
    /// Bumped on every notification; the poller skips the wait entirely
    /// when the generation moved while it was scanning connections.
    generation: Mutex<u64>,
    cv: Condvar,
}

impl PollerWake {
    fn notify(&self) {
        let mut generation = self.generation.lock().expect("poller wake lock");
        *generation = generation.wrapping_add(1);
        self.cv.notify_one();
    }

    /// Sleep until the generation moves past `seen` or `timeout`
    /// elapses; returns the generation observed on wake-up.
    fn wait(&self, seen: u64, timeout: Duration) -> u64 {
        let mut generation = self.generation.lock().expect("poller wake lock");
        while *generation == seen {
            let (guard, result) = self
                .cv
                .wait_timeout(generation, timeout)
                .expect("poller wake lock");
            generation = guard;
            if result.timed_out() {
                break;
            }
        }
        *generation
    }
}

/// Counters the server keeps about itself (the engine keeps its own).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections dropped (EOF, I/O error, or protocol corruption).
    pub dropped: u64,
    /// Request frames executed.
    pub requests: u64,
    /// Bytes read off client sockets.
    pub bytes_read: u64,
    /// Bytes written back to client sockets.
    pub bytes_written: u64,
}

#[derive(Debug, Default)]
struct NetCounters {
    accepted: AtomicU64,
    dropped: AtomicU64,
    requests: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// State a worker needs to answer one connection's requests.
struct ConnShared {
    session: Session,
    outbuf: Mutex<Vec<u8>>,
}

struct Job {
    /// Unique connection id (never reused, so a completion for a dead
    /// connection can never un-busy a later one).
    token: u64,
    shared: Arc<ConnShared>,
    payload: Vec<u8>,
    /// When the poller handed the frame to the pool (queue-wait clock).
    enqueued: Instant,
    /// How long the poller spent extracting this frame — a traced
    /// request backdates its server-side root by this much so the
    /// trace's origin sits where the bytes became a frame.
    decode_ns: u64,
}

struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    inbuf: Vec<u8>,
    /// Complete frames waiting their turn, each with its decode time.
    pending: VecDeque<(Vec<u8>, u64)>,
    busy: bool,
}

/// A running network front end. Dropping it shuts the server down and
/// joins every thread.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    telemetry: Arc<Telemetry>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `engine` until shutdown.
    pub fn bind(
        engine: ArcEngine,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        NetServer::serve(engine, TcpListener::bind(addr)?, config)
    }

    /// Serve `engine` on an already-bound listener.
    pub fn serve(
        engine: ArcEngine,
        listener: TcpListener,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        let telemetry = Arc::new(Telemetry::with_config(config.telemetry.clone()));
        let identity = Arc::new(ServerIdentity {
            started: Instant::now(),
            workers: u32::try_from(config.workers.max(1)).unwrap_or(u32::MAX),
        });

        let (jobs_tx, jobs_rx) = channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let (done_tx, done_rx) = channel::<u64>();
        let wake = Arc::new(PollerWake::default());

        let mut threads = Vec::with_capacity(config.workers.max(1) + 1);
        for _ in 0..config.workers.max(1) {
            let jobs_rx = Arc::clone(&jobs_rx);
            let done_tx = done_tx.clone();
            let counters = Arc::clone(&counters);
            let telemetry = Arc::clone(&telemetry);
            let identity = Arc::clone(&identity);
            let wake = Arc::clone(&wake);
            threads.push(std::thread::spawn(move || {
                worker_loop(&jobs_rx, &done_tx, &counters, &telemetry, &identity, &wake);
            }));
        }
        drop(done_tx);

        {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let telemetry = Arc::clone(&telemetry);
            threads.push(std::thread::spawn(move || {
                poller_loop(
                    engine, listener, config, &shutdown, &counters, &telemetry, jobs_tx, done_rx,
                    &wake,
                );
            }));
        }

        Ok(NetServer {
            addr,
            shutdown,
            counters,
            telemetry,
            threads,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime connection/request counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// The server's own phase-latency snapshot: frame decode, queue
    /// wait, handler execution, response write. Engine phases live on
    /// the engine's [`esm_engine::Engine::telemetry`]; the `STATS` verb
    /// returns both, merged.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// Stop accepting, drop every connection, and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetServer {{ addr: {} }}", self.addr)
    }
}

/// A short stable name for the server-side trace root of one request.
fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Ping => "net:ping",
        Request::TableNames => "net:table_names",
        Request::Table(_) => "net:table",
        Request::Snapshot => "net:snapshot",
        Request::DefineView { .. } => "net:define_view",
        Request::OpenView(_) => "net:open_view",
        Request::ViewNames => "net:view_names",
        Request::ReadView(_) => "net:read_view",
        Request::WriteView { .. } => "net:write_view",
        Request::EditViewCas { .. } => "net:edit_view_cas",
        Request::Commit { .. } => "net:commit",
        Request::Metrics => "net:metrics",
        Request::Stats => "net:stats",
        Request::Checkpoint => "net:checkpoint",
        Request::SyncWal => "net:sync_wal",
        Request::ServerPing => "net:server_ping",
        Request::Traces => "net:traces",
    }
}

fn worker_loop(
    jobs: &Mutex<Receiver<Job>>,
    done: &Sender<u64>,
    counters: &NetCounters,
    telemetry: &Telemetry,
    identity: &ServerIdentity,
    wake: &PollerWake,
) {
    loop {
        // Take the receiver lock only to fetch the next job, never
        // while executing one.
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        let queue_ns = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry.record(Phase::NetQueueWait, queue_ns);
        // Panic containment: a request that panics its handler must
        // cost an error response, not this worker thread (a dead worker
        // shrinks the pool and wedges the connection whose completion
        // token it never sent).
        let handler_span = Span::start();
        let (mut response, trace_root) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match Request::decode_with_trace(&job.payload) {
                    Ok((req, ctx)) => {
                        // A wire trace context roots a server-side tree
                        // under the client's trace id, unconditionally
                        // (the client already made the sampling call).
                        // Its origin is backdated to when the poller
                        // started extracting the frame, so the already-
                        // measured decode and queue-wait phases file as
                        // proper spans instead of vanishing into the
                        // root's leading edge.
                        let root = ctx.map(|(id, _parent)| {
                            let origin = job
                                .enqueued
                                .checked_sub(Duration::from_nanos(job.decode_ns))
                                .unwrap_or(job.enqueued);
                            let root =
                                telemetry.start_trace_with_id(TraceId(id), op_name(&req), origin);
                            root.record_span(
                                "net_frame_decode",
                                "",
                                0,
                                job.decode_ns,
                                job.payload.len() as u64,
                            );
                            root.record_span("net_queue_wait", "", job.decode_ns, queue_ns, 0);
                            root
                        });
                        // SERVER_PING is answered right here: no engine
                        // call, no engine lock — it stays honest even
                        // while the engine is wedged.
                        let resp = if matches!(req, Request::ServerPing) {
                            Response::ServerInfo {
                                uptime_ms: u64::try_from(identity.started.elapsed().as_millis())
                                    .unwrap_or(u64::MAX),
                                protocol_rev: PROTOCOL_REV,
                                workers: identity.workers,
                            }
                        } else {
                            let hspan = esm_obs::trace::span("net_handler");
                            let resp = handle(&job.shared.session, req);
                            drop(hspan);
                            resp
                        };
                        (resp, root)
                    }
                    Err(WireError(msg)) => (
                        Response::Err(esm_engine::EngineError::Io(format!("bad request: {msg}"))),
                        None,
                    ),
                }
            }))
            .unwrap_or_else(|_| {
                (
                    Response::Err(esm_engine::EngineError::Io(
                        "internal error while handling the request".into(),
                    )),
                    None,
                )
            });
        telemetry.record(Phase::NetHandler, handler_span.elapsed_ns());
        // A STATS response carries the engine's phases; fold in the
        // server's own net-layer phases (disjoint sets — the engine
        // never records `net_*`, the server never records engine
        // phases — so the merge changes no engine histogram). TRACE
        // gets the same treatment: the net layer's wire-rooted trees
        // ride along with the engine's session-rooted ones.
        if let Response::Stats(snap) = &mut response {
            snap.merge(&telemetry.snapshot());
        }
        if let Response::Traces(report) = &mut response {
            report.merge(&telemetry.traces_report());
        }
        let write_span = Span::start();
        let mut wspan = esm_obs::trace::span("net_response_write");
        let framed = encode_frame(&response.encode());
        if let Some(s) = wspan.as_mut() {
            s.set_bytes(framed.len() as u64);
        }
        drop(wspan);
        // Files the trace (the root drop snapshots every span recorded
        // under it, response encode included).
        drop(trace_root);
        if let Ok(mut out) = job.shared.outbuf.lock() {
            out.extend_from_slice(&framed);
        }
        telemetry.record(Phase::NetResponseWrite, write_span.elapsed_ns());
        // The poller flushes and re-arms the connection; if it is gone,
        // so is the connection. The wake-up makes the flush immediate
        // instead of waiting out the poller's idle sleep.
        let _ = done.send(job.token);
        wake.notify();
    }
}

#[allow(clippy::too_many_arguments)]
fn poller_loop(
    engine: ArcEngine,
    listener: TcpListener,
    config: NetServerConfig,
    shutdown: &AtomicBool,
    counters: &NetCounters,
    telemetry: &Telemetry,
    jobs: Sender<Job>,
    done: Receiver<u64>,
    wake: &PollerWake,
) {
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut next_token: u64 = 0;
    let mut read_chunk = [0u8; 16 * 1024];
    // Adaptive idle backoff: start near-spinning when activity just
    // stopped (a client is mid-burst and the next request is µs away),
    // double toward the configured cap as the lull stretches.
    let min_sleep = Duration::from_micros(2);
    let mut backoff = min_sleep;
    let mut seen_wake: u64 = 0;
    while !shutdown.load(Ordering::SeqCst) {
        let mut active = false;

        // Accept.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    counters.accepted.fetch_add(1, Ordering::Relaxed);
                    active = true;
                    let conn = Conn {
                        stream,
                        shared: Arc::new(ConnShared {
                            session: Session::new(engine.as_engine()),
                            outbuf: Mutex::new(Vec::new()),
                        }),
                        inbuf: Vec::new(),
                        pending: VecDeque::new(),
                        busy: false,
                    };
                    conns.insert(next_token, conn);
                    next_token += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Completions: connections whose in-flight request finished.
        loop {
            match done.try_recv() {
                Ok(token) => {
                    active = true;
                    if let Some(conn) = conns.get_mut(&token) {
                        conn.busy = false;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }

        // Read, frame, dispatch, flush — per connection.
        let tokens: Vec<u64> = conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let mut drop_conn = false;

            // Drain readable bytes.
            loop {
                match conn.stream.read(&mut read_chunk) {
                    Ok(0) => {
                        drop_conn = true;
                        break;
                    }
                    Ok(n) => {
                        active = true;
                        counters.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                        conn.inbuf.extend_from_slice(&read_chunk[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        drop_conn = true;
                        break;
                    }
                }
            }

            // Extract complete frames (torn prefixes wait; corruption
            // drops the connection).
            if !drop_conn {
                loop {
                    let decode_span = Span::start();
                    match decode_frame(&conn.inbuf) {
                        Ok(Some((payload, consumed))) => {
                            let decode_ns = decode_span.elapsed_ns();
                            telemetry.record(Phase::NetFrameDecode, decode_ns);
                            conn.inbuf.drain(..consumed);
                            conn.pending.push_back((payload, decode_ns));
                        }
                        Ok(None) => break,
                        Err(_) => {
                            drop_conn = true;
                            break;
                        }
                    }
                }
            }

            // Dispatch at most one in-flight request per connection so
            // responses keep request order.
            if !drop_conn && !conn.busy {
                if let Some((payload, decode_ns)) = conn.pending.pop_front() {
                    conn.busy = true;
                    active = true;
                    if jobs
                        .send(Job {
                            token,
                            shared: Arc::clone(&conn.shared),
                            payload,
                            enqueued: Instant::now(),
                            decode_ns,
                        })
                        .is_err()
                    {
                        drop_conn = true;
                    }
                }
            }

            // Flush buffered response bytes.
            if !drop_conn {
                if let Ok(mut out) = conn.shared.outbuf.lock() {
                    while !out.is_empty() {
                        match conn.stream.write(&out) {
                            Ok(0) => {
                                drop_conn = true;
                                break;
                            }
                            Ok(n) => {
                                active = true;
                                counters
                                    .bytes_written
                                    .fetch_add(n as u64, Ordering::Relaxed);
                                out.drain(..n);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                            Err(_) => {
                                drop_conn = true;
                                break;
                            }
                        }
                    }
                }
            }

            if drop_conn {
                counters.dropped.fetch_add(1, Ordering::Relaxed);
                conns.remove(&token);
            }
        }

        if active {
            backoff = min_sleep;
        } else {
            // Park until a worker finishes (the condvar fires the
            // instant a response is buffered) or the backoff elapses —
            // the timeout exists for events no worker signals: a new
            // connection, or request bytes on an idle socket. A
            // notification that arrived while this pass was scanning
            // moves the generation past `seen_wake`, and the wait
            // returns immediately instead of sleeping on a stale count.
            seen_wake = wake.wait(seen_wake, backoff);
            backoff = (backoff * 2).min(config.idle_sleep.max(min_sleep));
        }
    }
    // Shutdown: dropping `jobs` ends the workers once the queue drains;
    // dropping the connections closes every socket.
}
