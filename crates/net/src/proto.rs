//! The wire protocol: requests and responses for the full
//! [`esm_engine::Engine`] surface.
//!
//! Every payload rides inside one CRC-checked frame
//! ([`crate::frame`]). Two codecs share the wire, dispatched on the
//! payload's first byte:
//!
//! * **Binary** (the default emitted by [`Request::encode`] and
//!   [`Response::encode`]): the payload starts with
//!   [`BINARY_WIRE_MAGIC`] (`0xB7`, a UTF-8 continuation byte no text
//!   payload can begin with), then a one-byte message tag, then
//!   little-endian length-prefixed fields built from the store's
//!   binary primitives ([`esm_store::codec`]). Hot row data — tables,
//!   databases, deltas, commits — never round-trips through text.
//! * **Text** (the legacy form, kept by [`Request::encode_text`] /
//!   [`Response::encode_text`] and decoded forever): line-oriented,
//!   tab-separated, with the escaping discipline shared with the WAL
//!   segments and checkpoint snapshots. Rare structured payloads
//!   (view definitions, metrics, telemetry, errors) ride inside the
//!   binary codec as one length-prefixed text blob each, reusing the
//!   text grammar below instead of duplicating it.
//!
//! ## Grammar sketch
//!
//! ```text
//! request  := op-line [body]
//! op-line  := ping | table_names | snapshot | view_names | metrics
//!           | stats | checkpoint | sync_wal
//!           | table TAB name | open_view TAB name | read_view TAB name
//!           | define_view TAB name TAB table NL viewdef
//!           | write_view TAB name NL table-doc
//!           | edit_cas TAB name NL table-doc table-doc
//!           | commit TAB n NL (name-line delta-doc)*n
//!           | subscribe TAB name TAB (none|cursor) | unsubscribe TAB name
//!           | repl_manifest | repl_fetch TAB shard TAB file TAB off TAB len
//! response := ok | names TAB ... | seq (none|n) | err TAB error
//!           | table NL table-doc | db NL db-doc | delta NL delta-doc
//!           | receipt ... | metrics NL metrics-doc
//!           | stats NL telemetry-doc | suback TAB cursor
//!           | push TAB name TAB from TAB to TAB resync? NL delta-doc [table-doc]
//!           | repl_manifest NL manifest-doc | repl_chunk TAB hex
//! ```
//!
//! Table documents are self-delimiting (`@rows n` announces the row
//! count), so documents concatenate without ambiguity. Predicates
//! serialize as tab-separated **postfix token streams** (`col:x`,
//! `val:i:3`, `cmp:lt`, `and`, …) — a stack machine decodes them with
//! no recursion and no parenthesis escaping.

use esm_engine::{
    EngineError, FileEntry, MetricsSnapshot, ReplManifest, ReplStats, ReplicaLag, ShardLoad,
    ShardManifest, ShardStats, ViewStats, WalStats,
};
use esm_obs::{
    HistogramSnapshot, Phase, SlowOp, SpanRecord, TelemetrySnapshot, TraceId, TraceRecord,
    TraceReport,
};
use esm_relational::ViewDef;
use esm_store::codec::{
    self, decode_cell, decode_row, encode_cell, encode_row, escape, unescape, BinReader,
};
use esm_store::{
    Cmp, Column, Database, Delta, Operand, Predicate, Schema, StoreError, Table, ValueType,
};

/// A payload that failed to parse as a protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<StoreError> for WireError {
    fn from(e: StoreError) -> WireError {
        WireError(e.to_string())
    }
}

impl From<WireError> for EngineError {
    fn from(e: WireError) -> EngineError {
        EngineError::Io(e.to_string())
    }
}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// One client request — the full [`esm_engine::Engine`] surface.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// `Engine::table_names`.
    TableNames,
    /// `Engine::table`.
    Table(String),
    /// `Engine::snapshot`.
    Snapshot,
    /// `Engine::define_view` (the handle stays client-side).
    DefineView {
        /// View name.
        name: String,
        /// Base table.
        table: String,
        /// The view definition.
        def: ViewDef,
    },
    /// `Engine::view` — existence check; the handle stays client-side.
    OpenView(String),
    /// `Engine::view_names`.
    ViewNames,
    /// `Engine::read_view`.
    ReadView(String),
    /// `Engine::write_view`.
    WriteView {
        /// View name.
        name: String,
        /// The edited view table.
        view: Table,
    },
    /// One optimistic-edit attempt as a compare-and-swap: commit the
    /// edited window iff the view still reads as `expect`. The client
    /// drives the retry loop (`Engine::edit_view_optimistic` needs a
    /// closure; closures do not serialize — equality of the observed
    /// window does).
    EditViewCas {
        /// View name.
        name: String,
        /// The window the client's edit was computed against.
        expect: Table,
        /// The edited window to install.
        edited: Table,
    },
    /// One snapshot-transaction commit attempt: per-table deltas whose
    /// `deleted` rows are the client's pre-images (exactly what
    /// [`Delta::between`] produces), validated row-for-row before
    /// applying atomically — first-committer-wins against the client's
    /// snapshot, without shipping the snapshot back.
    Commit {
        /// Per-table deltas, client-snapshot pre-images included.
        deltas: Vec<(String, Delta)>,
    },
    /// `Engine::metrics`.
    Metrics,
    /// `Engine::telemetry` — the phase-latency histograms and slow-op
    /// log. On the wire the server's net-layer phases ride along merged
    /// into the engine's snapshot.
    Stats,
    /// `Engine::checkpoint`.
    Checkpoint,
    /// `Engine::sync_wal`.
    SyncWal,
    /// Server identity and liveness: answered by the network layer
    /// itself ([`Response::ServerInfo`]) without touching any engine
    /// lock — safe to poll while the engine is wedged.
    ServerPing,
    /// `Engine::traces` — the recent and slow trace rings. On the wire
    /// the server merges its net-layer traces in, the way `Stats`
    /// merges telemetry.
    Traces,
    /// Register this connection as a subscriber of a named view
    /// (revision 3). Answered by the network layer with
    /// [`Response::SubAck`]; from then on the server pushes
    /// [`Response::Push`] frames as commits settle past the
    /// subscriber's cursor. `cursor: None` means "from now": the server
    /// acks the current cursor and sends one initial resync push.
    Subscribe {
        /// View name.
        view: String,
        /// Resume cursor from a previous session, or `None` for "now".
        cursor: Option<u64>,
    },
    /// Drop this connection's subscription on a named view (revision
    /// 3). Acknowledged with [`Response::Unit`]; already-buffered
    /// pushes may still arrive before the ack.
    Unsubscribe(String),
    /// The primary's shippable WAL surface (revision 4): topology
    /// bytes, advertised address and per-shard file listings
    /// ([`Engine::repl_source`][rs]). Answered with
    /// [`Response::ReplManifest`].
    ///
    /// [rs]: esm_engine::Engine::repl_source
    ReplManifest,
    /// Up to `len` bytes of one shard's WAL file starting at `offset`
    /// (revision 4). Answered with [`Response::ReplChunk`]; a short
    /// chunk means EOF, an empty one means nothing new yet.
    ReplFetch {
        /// Shard id (its directory is `shard-<id>`).
        shard: u64,
        /// File name within the shard directory, as the manifest
        /// listed it.
        file: String,
        /// Byte offset to start from.
        offset: u64,
        /// Maximum bytes to return.
        len: u64,
    },
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success with nothing to return.
    Unit,
    /// A list of names.
    Names(Vec<String>),
    /// A table (snapshot, view read).
    Table(Table),
    /// A whole database snapshot.
    Database(Database),
    /// A committed delta.
    Delta(Delta),
    /// A commit receipt.
    Receipt {
        /// Commit stamp.
        stamp: u64,
        /// Shards touched (empty on unsharded hosts).
        shards: Vec<usize>,
        /// Cross-shard transaction id, if any.
        gtx: Option<String>,
    },
    /// Engine counters.
    Metrics(MetricsSnapshot),
    /// Phase-latency telemetry (histograms + slow-op log).
    Stats(TelemetrySnapshot),
    /// A checkpoint floor (`None` for in-memory engines).
    Seq(Option<u64>),
    /// A structured engine error.
    Err(EngineError),
    /// The network server's identity ([`Request::ServerPing`]).
    ServerInfo {
        /// Milliseconds since the server started accepting.
        uptime_ms: u64,
        /// The protocol revision the server speaks ([`PROTOCOL_REV`]).
        protocol_rev: u32,
        /// Size of the server's worker pool.
        workers: u32,
    },
    /// Recent and slow causal traces ([`Request::Traces`]).
    Traces(TraceReport),
    /// Subscription accepted (revision 3): the cursor pushes will
    /// advance from. Echoes the requested cursor, or the current one
    /// when the client subscribed "from now".
    SubAck {
        /// The subscriber's starting cursor.
        cursor: u64,
    },
    /// A server-initiated delta push (revision 3): everything settled
    /// on `view` in `(from_seq, to_seq]`, coalesced. When the
    /// incremental path was unavailable — cursor truncated out of the
    /// log, a propagation escape hatch, or a drop-for-backpressure
    /// resync — `resync` carries the full window (reflecting `to_seq`)
    /// and `delta` is empty: adopt it and discard local state.
    Push {
        /// The subscribed view this batch belongs to.
        view: String,
        /// The cursor this batch starts after.
        from_seq: u64,
        /// The subscriber's next cursor.
        to_seq: u64,
        /// Coalesced view-level delta covering `(from_seq, to_seq]`.
        delta: Delta,
        /// Full-window resync, when incremental delivery was impossible.
        resync: Option<Table>,
    },
    /// The primary's WAL-shipping manifest (revision 4,
    /// [`Request::ReplManifest`]).
    ReplManifest(ReplManifest),
    /// One ranged WAL read (revision 4, [`Request::ReplFetch`]).
    ReplChunk(Vec<u8>),
}

/// The wire protocol revision this build speaks. Revision 2 added the
/// optional trace-context suffix on binary requests, `server_ping` and
/// `traces`. Revision 3 added cursor subscriptions: `subscribe` /
/// `unsubscribe` requests and the server-initiated `suback` / `push`
/// responses. Revision 4 added WAL-shipping replication
/// (`repl_manifest` / `repl_fetch`), the `not_primary` redirect error,
/// and optional load/lag/gauge extensions to the metrics and telemetry
/// documents (absent fields encode exactly as revision 3 did). Servers
/// keep decoding every earlier form and older clients see no new
/// frames, so the revision is informational (surfaced by
/// [`Response::ServerInfo`]), not a handshake.
pub const PROTOCOL_REV: u32 = 4;

// ---------------------------------------------------------------------
// Line reader.
// ---------------------------------------------------------------------

struct Reader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Reader<'a> {
        Reader {
            lines: text.lines(),
        }
    }

    fn next(&mut self) -> Result<&'a str, WireError> {
        self.lines.next().ok_or_else(|| err("truncated message"))
    }

    /// Next line, which must start with `keyword` followed by a tab (or
    /// be exactly `keyword` — an empty field list). Returns the rest.
    fn keyword(&mut self, keyword: &str) -> Result<&'a str, WireError> {
        let line = self.next()?;
        if line == keyword {
            return Ok("");
        }
        line.strip_prefix(keyword)
            .and_then(|r| r.strip_prefix('\t'))
            .ok_or_else(|| err(format!("expected `{keyword}`, got `{line}`")))
    }

    fn end(mut self) -> Result<(), WireError> {
        match self.lines.next() {
            None => Ok(()),
            Some(extra) => Err(err(format!("trailing garbage: `{extra}`"))),
        }
    }
}

fn fields(rest: &str) -> Vec<&str> {
    if rest.is_empty() {
        Vec::new()
    } else {
        rest.split('\t').collect()
    }
}

// ---------------------------------------------------------------------
// Table / database / delta documents.
// ---------------------------------------------------------------------

fn encode_type(ty: ValueType) -> &'static str {
    match ty {
        ValueType::Bool => "bool",
        ValueType::Int => "int",
        ValueType::Str => "str",
    }
}

fn decode_type(s: &str) -> Result<ValueType, WireError> {
    match s {
        "bool" => Ok(ValueType::Bool),
        "int" => Ok(ValueType::Int),
        "str" => Ok(ValueType::Str),
        _ => Err(err(format!("unknown value type `{s}`"))),
    }
}

/// Render one table as a self-delimiting document.
pub fn encode_table(out: &mut String, table: &Table) {
    let cols: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| format!("{}:{}", escape(&c.name), encode_type(c.ty)))
        .collect();
    out.push_str(&format!("@schema\t{}\n", cols.join("\t")));
    let key: Vec<String> = table.schema().key().iter().map(|k| escape(k)).collect();
    if key.is_empty() {
        out.push_str("@key\n");
    } else {
        out.push_str(&format!("@key\t{}\n", key.join("\t")));
    }
    out.push_str(&format!("@rows\t{}\n", table.len()));
    for row in table.rows() {
        out.push_str(&encode_row(row));
        out.push('\n');
    }
}

fn decode_table(r: &mut Reader<'_>) -> Result<Table, WireError> {
    let cols_line = r.keyword("@schema")?;
    let mut columns = Vec::new();
    for cell in fields(cols_line) {
        let (name, ty) = cell
            .rsplit_once(':')
            .ok_or_else(|| err(format!("untyped column `{cell}`")))?;
        columns.push(Column::new(unescape(name)?, decode_type(ty)?));
    }
    let key_line = r.keyword("@key")?;
    let key: Vec<String> = fields(key_line)
        .into_iter()
        .map(unescape)
        .collect::<Result<_, _>>()?;
    let schema = Schema::new(columns, key)?;
    let n: usize = r
        .keyword("@rows")?
        .parse()
        .map_err(|_| err("bad @rows count"))?;
    let mut table = Table::new(schema);
    for _ in 0..n {
        table.insert(decode_row(r.next()?)?)?;
    }
    Ok(table)
}

/// Render a whole database (tables in name order).
pub fn encode_database(out: &mut String, db: &Database) {
    let names = db.table_names();
    out.push_str(&format!("@db\t{}\n", names.len()));
    for name in names {
        out.push_str(&format!("@name\t{}\n", escape(name)));
        encode_table(out, db.table(name).expect("name came from the database"));
    }
}

fn decode_database(r: &mut Reader<'_>) -> Result<Database, WireError> {
    let n: usize = r
        .keyword("@db")?
        .parse()
        .map_err(|_| err("bad @db count"))?;
    let mut db = Database::new();
    for _ in 0..n {
        let name = unescape(r.keyword("@name")?)?;
        db.replace_table(name, decode_table(r)?);
    }
    Ok(db)
}

/// Render a delta (inserted rows then deleted rows).
pub fn encode_delta(out: &mut String, delta: &Delta) {
    out.push_str(&format!(
        "@delta\t{}\t{}\n",
        delta.inserted.len(),
        delta.deleted.len()
    ));
    for row in &delta.inserted {
        out.push_str(&encode_row(row));
        out.push('\n');
    }
    for row in &delta.deleted {
        out.push_str(&encode_row(row));
        out.push('\n');
    }
}

fn decode_delta(r: &mut Reader<'_>) -> Result<Delta, WireError> {
    let head = r.keyword("@delta")?;
    let parts = fields(head);
    let [ins, del] = parts.as_slice() else {
        return Err(err("bad @delta header"));
    };
    let ins: usize = ins.parse().map_err(|_| err("bad @delta insert count"))?;
    let del: usize = del.parse().map_err(|_| err("bad @delta delete count"))?;
    let mut delta = Delta::empty();
    for _ in 0..ins {
        delta.inserted.push(decode_row(r.next()?)?);
    }
    for _ in 0..del {
        delta.deleted.push(decode_row(r.next()?)?);
    }
    Ok(delta)
}

// ---------------------------------------------------------------------
// Predicates (postfix token stream) and view definitions.
// ---------------------------------------------------------------------

fn encode_operand(tokens: &mut Vec<String>, op: &Operand) {
    match op {
        Operand::Col(name) => tokens.push(format!("col:{}", escape(name))),
        Operand::Const(v) => tokens.push(format!("val:{}", encode_cell(v))),
    }
}

fn encode_cmp(cmp: Cmp) -> &'static str {
    match cmp {
        Cmp::Eq => "eq",
        Cmp::Ne => "ne",
        Cmp::Lt => "lt",
        Cmp::Le => "le",
        Cmp::Gt => "gt",
        Cmp::Ge => "ge",
    }
}

fn decode_cmp(s: &str) -> Result<Cmp, WireError> {
    Ok(match s {
        "eq" => Cmp::Eq,
        "ne" => Cmp::Ne,
        "lt" => Cmp::Lt,
        "le" => Cmp::Le,
        "gt" => Cmp::Gt,
        "ge" => Cmp::Ge,
        _ => return Err(err(format!("unknown comparison `{s}`"))),
    })
}

fn predicate_tokens(tokens: &mut Vec<String>, pred: &Predicate) {
    match pred {
        Predicate::True => tokens.push("T".into()),
        Predicate::False => tokens.push("F".into()),
        Predicate::Compare(cmp, lhs, rhs) => {
            encode_operand(tokens, lhs);
            encode_operand(tokens, rhs);
            tokens.push(format!("cmp:{}", encode_cmp(*cmp)));
        }
        Predicate::And(a, b) => {
            predicate_tokens(tokens, a);
            predicate_tokens(tokens, b);
            tokens.push("and".into());
        }
        Predicate::Or(a, b) => {
            predicate_tokens(tokens, a);
            predicate_tokens(tokens, b);
            tokens.push("or".into());
        }
        Predicate::Not(p) => {
            predicate_tokens(tokens, p);
            tokens.push("not".into());
        }
    }
}

/// Render a predicate as one tab-joined postfix token line.
pub fn encode_predicate(pred: &Predicate) -> String {
    let mut tokens = Vec::new();
    predicate_tokens(&mut tokens, pred);
    tokens.join("\t")
}

enum Slot {
    Pred(Predicate),
    Op(Operand),
}

/// Parse a postfix predicate token line.
pub fn decode_predicate(line: &str) -> Result<Predicate, WireError> {
    let mut stack: Vec<Slot> = Vec::new();
    let pop_pred = |stack: &mut Vec<Slot>| -> Result<Predicate, WireError> {
        match stack.pop() {
            Some(Slot::Pred(p)) => Ok(p),
            _ => Err(err("predicate stack underflow")),
        }
    };
    let pop_op = |stack: &mut Vec<Slot>| -> Result<Operand, WireError> {
        match stack.pop() {
            Some(Slot::Op(o)) => Ok(o),
            _ => Err(err("operand stack underflow")),
        }
    };
    for token in fields(line) {
        match token {
            "T" => stack.push(Slot::Pred(Predicate::True)),
            "F" => stack.push(Slot::Pred(Predicate::False)),
            "and" => {
                let b = pop_pred(&mut stack)?;
                let a = pop_pred(&mut stack)?;
                stack.push(Slot::Pred(a.and(b)));
            }
            "or" => {
                let b = pop_pred(&mut stack)?;
                let a = pop_pred(&mut stack)?;
                stack.push(Slot::Pred(a.or(b)));
            }
            "not" => {
                let p = pop_pred(&mut stack)?;
                stack.push(Slot::Pred(p.not()));
            }
            _ => {
                let (tag, rest) = token
                    .split_once(':')
                    .ok_or_else(|| err(format!("bad predicate token `{token}`")))?;
                match tag {
                    "col" => stack.push(Slot::Op(Operand::col(unescape(rest)?))),
                    "val" => stack.push(Slot::Op(Operand::Const(decode_cell(rest)?))),
                    "cmp" => {
                        let cmp = decode_cmp(rest)?;
                        let rhs = pop_op(&mut stack)?;
                        let lhs = pop_op(&mut stack)?;
                        stack.push(Slot::Pred(Predicate::Compare(cmp, lhs, rhs)));
                    }
                    _ => return Err(err(format!("bad predicate token `{token}`"))),
                }
            }
        }
    }
    match (stack.pop(), stack.is_empty()) {
        (Some(Slot::Pred(p)), true) => Ok(p),
        _ => Err(err(
            "predicate token stream did not reduce to one predicate",
        )),
    }
}

/// Flatten a view definition into its stage chain, base first.
fn stages(def: &ViewDef) -> Vec<&ViewDef> {
    let mut chain = Vec::new();
    let mut cur = def;
    loop {
        chain.push(cur);
        match cur {
            ViewDef::Base => break,
            ViewDef::Select(inner, _)
            | ViewDef::Project(inner, _, _)
            | ViewDef::Rename(inner, _)
            | ViewDef::Eager(inner) => cur = inner,
        }
    }
    chain.reverse();
    chain
}

/// Render a view definition as a stage list (base outward).
pub fn encode_viewdef(out: &mut String, def: &ViewDef) {
    let chain = stages(def);
    out.push_str(&format!("@viewdef\t{}\n", chain.len()));
    for stage in chain {
        match stage {
            ViewDef::Base => out.push_str("base\n"),
            ViewDef::Select(_, pred) => {
                out.push_str(&format!("select\t{}\n", encode_predicate(pred)));
            }
            ViewDef::Project(_, cols, defaults) => {
                let cols: Vec<String> = cols.iter().map(|c| escape(c)).collect();
                if cols.is_empty() {
                    out.push_str("project\n");
                } else {
                    out.push_str(&format!("project\t{}\n", cols.join("\t")));
                }
                let mut pairs: Vec<String> = Vec::new();
                for (col, v) in defaults {
                    pairs.push(escape(col));
                    pairs.push(encode_cell(v));
                }
                if pairs.is_empty() {
                    out.push_str("defaults\n");
                } else {
                    out.push_str(&format!("defaults\t{}\n", pairs.join("\t")));
                }
            }
            ViewDef::Rename(_, renames) => {
                let mut pairs: Vec<String> = Vec::new();
                for (old, new) in renames {
                    pairs.push(escape(old));
                    pairs.push(escape(new));
                }
                if pairs.is_empty() {
                    out.push_str("rename\n");
                } else {
                    out.push_str(&format!("rename\t{}\n", pairs.join("\t")));
                }
            }
            ViewDef::Eager(_) => out.push_str("eager\n"),
        }
    }
}

fn pairs_of(items: Vec<&str>) -> Result<Vec<(&str, &str)>, WireError> {
    if !items.len().is_multiple_of(2) {
        return Err(err("odd pair list"));
    }
    Ok(items.chunks(2).map(|c| (c[0], c[1])).collect())
}

fn decode_viewdef(r: &mut Reader<'_>) -> Result<ViewDef, WireError> {
    let n: usize = r
        .keyword("@viewdef")?
        .parse()
        .map_err(|_| err("bad @viewdef count"))?;
    if n == 0 {
        return Err(err("empty view definition"));
    }
    let mut def: Option<ViewDef> = None;
    for i in 0..n {
        let line = r.next()?;
        let (op, rest) = match line.split_once('\t') {
            Some((op, rest)) => (op, rest),
            None => (line, ""),
        };
        match (op, i, def.take()) {
            ("base", 0, None) => def = Some(ViewDef::Base),
            ("select", _, Some(inner)) => {
                def = Some(ViewDef::Select(Box::new(inner), decode_predicate(rest)?));
            }
            ("project", _, Some(inner)) => {
                let cols: Vec<String> = fields(rest)
                    .into_iter()
                    .map(unescape)
                    .collect::<Result<_, _>>()?;
                let dline = r.keyword("defaults")?;
                let mut defaults = Vec::new();
                for (col, cell) in pairs_of(fields(dline))? {
                    defaults.push((unescape(col)?, decode_cell(cell)?));
                }
                def = Some(ViewDef::Project(Box::new(inner), cols, defaults));
            }
            ("rename", _, Some(inner)) => {
                let mut renames = Vec::new();
                for (old, new) in pairs_of(fields(rest))? {
                    renames.push((unescape(old)?, unescape(new)?));
                }
                def = Some(ViewDef::Rename(Box::new(inner), renames));
            }
            ("eager", _, Some(inner)) => def = Some(ViewDef::Eager(Box::new(inner))),
            _ => return Err(err(format!("bad view stage `{line}` at position {i}"))),
        }
    }
    def.ok_or_else(|| err("empty view definition"))
}

// ---------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------

fn encode_metrics(out: &mut String, m: &MetricsSnapshot) {
    // Revision 4 extensions (per-shard load, replication lag) ride
    // behind counts on the header line; when absent the header stays
    // bare and the document is bit-identical to the revision-3 form.
    let extended = !m.shard_load.is_empty() || m.repl != ReplStats::default();
    if extended {
        out.push_str(&format!(
            "@metrics\t{}\t{}\n",
            m.shard_load.len(),
            m.repl.lag.len()
        ));
    } else {
        out.push_str("@metrics\n");
    }
    out.push_str(&format!(
        "core\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
        m.commits,
        m.conflicts,
        m.retries,
        m.view_reads,
        m.rows_written,
        m.wal_truncations,
        m.wal_records_truncated
    ));
    out.push_str(&format!(
        "wal\t{}\t{}\t{}\t{}\t{}\t{}\n",
        m.wal.appends,
        m.wal.syncs,
        m.wal.bytes_written,
        m.wal.rotations,
        m.wal.checkpoints,
        m.wal.segments_compacted
    ));
    out.push_str(&format!(
        "shard\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        m.shard.single_shard_commits,
        m.shard.cross_shard_commits,
        m.shard.prepares,
        m.shard.recovery_commits,
        m.shard.recovery_aborts,
        m.shard.splits,
        m.shard.merges,
        m.shard.rows_migrated
    ));
    // The four revision-4 shard counters append only when non-zero, so
    // a pre-replication snapshot keeps its revision-3 byte form.
    if m.shard.auto_splits != 0
        || m.shard.auto_merges != 0
        || m.shard.commit_rate_ewma_milli != 0
        || m.shard.commit_rate_skew_milli != 0
    {
        out.push_str(&format!(
            "\t{}\t{}\t{}\t{}",
            m.shard.auto_splits,
            m.shard.auto_merges,
            m.shard.commit_rate_ewma_milli,
            m.shard.commit_rate_skew_milli
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "view\t{}\t{}\t{}\t{}\n",
        m.view.materialized_reads, m.view.deltas_applied, m.view.rebuilds, m.view.shards_pruned
    ));
    if extended {
        for l in &m.shard_load {
            out.push_str(&format!(
                "load\t{}\t{}\t{}\t{}\n",
                l.shard, l.rows, l.commits, l.rate_ewma_milli
            ));
        }
        for l in &m.repl.lag {
            out.push_str(&format!(
                "lag\t{}\t{}\t{}\n",
                l.shard, l.primary_seq, l.applied_seq
            ));
        }
        out.push_str(&format!(
            "repl\t{}\t{}\t{}\n",
            m.repl.ship_passes, m.repl.records_applied, m.repl.transactions_applied
        ));
    }
}

fn nums<const N: usize>(rest: &str) -> Result<[u64; N], WireError> {
    let parts = fields(rest);
    if parts.len() != N {
        return Err(err(format!("expected {N} counters, got {}", parts.len())));
    }
    let mut out = [0u64; N];
    for (slot, part) in out.iter_mut().zip(parts) {
        *slot = part.parse().map_err(|_| err("bad counter"))?;
    }
    Ok(out)
}

fn decode_metrics(r: &mut Reader<'_>) -> Result<MetricsSnapshot, WireError> {
    let head = fields(r.keyword("@metrics")?);
    let (n_load, n_lag, extended) = match head.as_slice() {
        [] => (0usize, 0usize, false),
        [nl, ng] => (
            nl.parse().map_err(|_| err("bad @metrics load count"))?,
            ng.parse().map_err(|_| err("bad @metrics lag count"))?,
            true,
        ),
        _ => return Err(err("bad @metrics header")),
    };
    let [commits, conflicts, retries, view_reads, rows_written, wal_truncations, wal_records_truncated] =
        nums::<7>(r.keyword("core")?)?;
    let [appends, syncs, bytes_written, rotations, checkpoints, segments_compacted] =
        nums::<6>(r.keyword("wal")?)?;
    // The shard line carries 8 revision-3 counters, optionally followed
    // by the 4 revision-4 ones.
    let shard_line = r.keyword("shard")?;
    let (
        [single_shard_commits, cross_shard_commits, prepares, recovery_commits, recovery_aborts, splits, merges, rows_migrated],
        [auto_splits, auto_merges, commit_rate_ewma_milli, commit_rate_skew_milli],
    ) = match nums::<12>(shard_line) {
        Ok(all) => {
            let (old, new) = all.split_at(8);
            (old.try_into().expect("8"), new.try_into().expect("4"))
        }
        Err(_) => (nums::<8>(shard_line)?, [0u64; 4]),
    };
    let [materialized_reads, deltas_applied, rebuilds, shards_pruned] =
        nums::<4>(r.keyword("view")?)?;
    let mut shard_load = Vec::with_capacity(n_load);
    let mut repl = ReplStats::default();
    if extended {
        for _ in 0..n_load {
            let [shard, rows, commits, rate_ewma_milli] = nums::<4>(r.keyword("load")?)?;
            shard_load.push(ShardLoad {
                shard,
                rows,
                commits,
                rate_ewma_milli,
            });
        }
        for _ in 0..n_lag {
            let [shard, primary_seq, applied_seq] = nums::<3>(r.keyword("lag")?)?;
            repl.lag.push(ReplicaLag {
                shard,
                primary_seq,
                applied_seq,
            });
        }
        let [ship_passes, records_applied, transactions_applied] = nums::<3>(r.keyword("repl")?)?;
        repl.ship_passes = ship_passes;
        repl.records_applied = records_applied;
        repl.transactions_applied = transactions_applied;
    }
    Ok(MetricsSnapshot {
        commits,
        conflicts,
        retries,
        view_reads,
        rows_written,
        wal_truncations,
        wal_records_truncated,
        wal: WalStats {
            appends,
            syncs,
            bytes_written,
            rotations,
            checkpoints,
            segments_compacted,
        },
        shard: ShardStats {
            single_shard_commits,
            cross_shard_commits,
            prepares,
            recovery_commits,
            recovery_aborts,
            splits,
            merges,
            rows_migrated,
            auto_splits,
            auto_merges,
            commit_rate_ewma_milli,
            commit_rate_skew_milli,
        },
        view: ViewStats {
            materialized_reads,
            deltas_applied,
            rebuilds,
            shards_pruned,
        },
        shard_load,
        repl,
    })
}

// ---------------------------------------------------------------------
// Telemetry.
// ---------------------------------------------------------------------

/// Render a telemetry snapshot as a self-delimiting document: an
/// `@telemetry` header announcing the phase and slow-op counts, one
/// `phase` line per populated histogram (sparse `idx:count` bin pairs),
/// one `slow` line per slow-op record. Bit-exact round trip: the sparse
/// bins, max, sum and per-phase slow-op breakdowns all survive.
pub fn encode_telemetry(out: &mut String, t: &TelemetrySnapshot) {
    // Revision 4: a fourth header count announces `gauge` lines; when
    // there are none the header keeps its three-field revision-3 form.
    if t.gauges.is_empty() {
        out.push_str(&format!(
            "@telemetry\t{}\t{}\t{}\n",
            t.slow_threshold_ns,
            t.phases.len(),
            t.slow_ops.len()
        ));
    } else {
        out.push_str(&format!(
            "@telemetry\t{}\t{}\t{}\t{}\n",
            t.slow_threshold_ns,
            t.phases.len(),
            t.slow_ops.len(),
            t.gauges.len()
        ));
    }
    for (phase, h) in &t.phases {
        out.push_str(&format!(
            "phase\t{}\t{}\t{}\t{}\t{}",
            phase.name(),
            h.count,
            h.sum,
            h.max,
            h.bins.len()
        ));
        for (idx, n) in &h.bins {
            out.push_str(&format!("\t{idx}:{n}"));
        }
        out.push('\n');
    }
    for slow in &t.slow_ops {
        out.push_str(&format!(
            "slow\t{}\t{}\t{}",
            escape(&slow.op),
            slow.total_ns,
            slow.phases.len()
        ));
        for (phase, ns) in &slow.phases {
            out.push_str(&format!("\t{}:{ns}", phase.name()));
        }
        out.push('\n');
    }
    for (name, value) in &t.gauges {
        out.push_str(&format!("gauge\t{}\t{value}\n", escape(name)));
    }
}

fn decode_phase_name(s: &str) -> Result<Phase, WireError> {
    Phase::from_name(s).ok_or_else(|| err(format!("unknown phase `{s}`")))
}

fn decode_telemetry(r: &mut Reader<'_>) -> Result<TelemetrySnapshot, WireError> {
    let head = fields(r.keyword("@telemetry")?)
        .into_iter()
        .map(|f| f.parse::<u64>().map_err(|_| err("bad @telemetry header")))
        .collect::<Result<Vec<_>, _>>()?;
    let (slow_threshold_ns, n_phases, n_slow, n_gauges) = match head.as_slice() {
        [t, p, s] => (t, p, s, &0u64),
        [t, p, s, g] => (t, p, s, g),
        _ => return Err(err("bad @telemetry header")),
    };
    let mut phases = Vec::with_capacity(*n_phases as usize);
    for _ in 0..*n_phases {
        let parts = fields(r.keyword("phase")?);
        let [name, count, sum, max, n_bins, bin_parts @ ..] = parts.as_slice() else {
            return Err(err("bad phase line"));
        };
        let phase = decode_phase_name(name)?;
        let n_bins: usize = n_bins.parse().map_err(|_| err("bad bin count"))?;
        if bin_parts.len() != n_bins {
            return Err(err(format!(
                "phase `{name}` announced {n_bins} bins, carried {}",
                bin_parts.len()
            )));
        }
        let mut bins = Vec::with_capacity(n_bins);
        for pair in bin_parts {
            let (idx, n) = pair
                .split_once(':')
                .ok_or_else(|| err(format!("bad bin pair `{pair}`")))?;
            bins.push((
                idx.parse().map_err(|_| err("bad bin index"))?,
                n.parse().map_err(|_| err("bad bin count"))?,
            ));
        }
        phases.push((
            phase,
            HistogramSnapshot {
                count: count.parse().map_err(|_| err("bad phase count"))?,
                sum: sum.parse().map_err(|_| err("bad phase sum"))?,
                max: max.parse().map_err(|_| err("bad phase max"))?,
                bins,
            },
        ));
    }
    let mut slow_ops = Vec::with_capacity(*n_slow as usize);
    for _ in 0..*n_slow {
        let parts = fields(r.keyword("slow")?);
        let [op, total_ns, n, phase_parts @ ..] = parts.as_slice() else {
            return Err(err("bad slow line"));
        };
        let n: usize = n.parse().map_err(|_| err("bad slow phase count"))?;
        if phase_parts.len() != n {
            return Err(err("slow line phase count mismatch"));
        }
        let mut slow_phases = Vec::with_capacity(n);
        for pair in phase_parts {
            let (name, ns) = pair
                .rsplit_once(':')
                .ok_or_else(|| err(format!("bad slow phase pair `{pair}`")))?;
            slow_phases.push((
                decode_phase_name(name)?,
                ns.parse().map_err(|_| err("bad slow phase ns"))?,
            ));
        }
        slow_ops.push(SlowOp {
            op: unescape(op)?,
            total_ns: total_ns.parse().map_err(|_| err("bad slow total"))?,
            phases: slow_phases,
        });
    }
    let mut gauges = Vec::with_capacity(*n_gauges as usize);
    for _ in 0..*n_gauges {
        let parts = fields(r.keyword("gauge")?);
        let [name, value] = parts.as_slice() else {
            return Err(err("bad gauge line"));
        };
        gauges.push((
            unescape(name)?,
            value.parse().map_err(|_| err("bad gauge value"))?,
        ));
    }
    Ok(TelemetrySnapshot {
        phases,
        slow_threshold_ns: *slow_threshold_ns,
        slow_ops,
        gauges,
    })
}

// ---------------------------------------------------------------------
// Replication manifests.
// ---------------------------------------------------------------------

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>, WireError> {
    if !s.len().is_multiple_of(2) {
        return Err(err("odd hex blob"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(s.get(i..i + 2).ok_or_else(|| err("bad hex blob"))?, 16)
                .map_err(|_| err("bad hex blob"))
        })
        .collect()
}

/// Render a replication manifest as a self-delimiting document: an
/// `@manifest` header carrying the primary address, the topology bytes
/// (hex — the file is tiny) and the shard count, then per shard one
/// `mshard` line announcing its `file` lines.
fn encode_manifest(out: &mut String, m: &ReplManifest) {
    out.push_str(&format!(
        "@manifest\t{}\t{}\t{}\n",
        escape(&m.primary_addr),
        hex_encode(&m.topology),
        m.shards.len()
    ));
    for shard in &m.shards {
        out.push_str(&format!(
            "mshard\t{}\t{}\t{}\n",
            shard.id,
            shard.last_seq,
            shard.files.len()
        ));
        for f in &shard.files {
            out.push_str(&format!("file\t{}\t{}\n", escape(&f.name), f.len));
        }
    }
}

fn decode_manifest(r: &mut Reader<'_>) -> Result<ReplManifest, WireError> {
    let head = fields(r.keyword("@manifest")?);
    let [primary_addr, topology, n_shards] = head.as_slice() else {
        return Err(err("bad @manifest header"));
    };
    let n_shards: usize = n_shards.parse().map_err(|_| err("bad shard count"))?;
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let [id, last_seq, n_files] = nums::<3>(r.keyword("mshard")?)?;
        let mut files = Vec::with_capacity(n_files as usize);
        for _ in 0..n_files {
            let parts = fields(r.keyword("file")?);
            let [name, len] = parts.as_slice() else {
                return Err(err("bad file line"));
            };
            files.push(FileEntry {
                name: unescape(name)?,
                len: len.parse().map_err(|_| err("bad file length"))?,
            });
        }
        shards.push(ShardManifest {
            id,
            last_seq,
            files,
        });
    }
    Ok(ReplManifest {
        topology: hex_decode(topology)?,
        primary_addr: unescape(primary_addr)?,
        shards,
    })
}

// ---------------------------------------------------------------------
// Traces.
// ---------------------------------------------------------------------

/// Render a trace report as a self-delimiting document, the sparse
/// discipline of [`encode_telemetry`]: an `@traces` header announcing
/// the recent and slow counts, then per trace one `trace` line (id as
/// 16 hex digits, escaped root name, total, span count) followed by
/// exactly that many `span` lines. Bit-exact round trip.
pub fn encode_traces(out: &mut String, report: &TraceReport) {
    out.push_str(&format!(
        "@traces\t{}\t{}\n",
        report.recent.len(),
        report.slow.len()
    ));
    for trace in report.recent.iter().chain(report.slow.iter()) {
        out.push_str(&format!(
            "trace\t{}\t{}\t{}\t{}\n",
            trace.id,
            escape(&trace.root),
            trace.duration_ns,
            trace.spans.len()
        ));
        for s in &trace.spans {
            out.push_str(&format!(
                "span\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                s.id,
                s.parent,
                escape(&s.name),
                escape(&s.tag),
                s.start_ns,
                s.duration_ns,
                s.bytes
            ));
        }
    }
}

fn decode_trace_record(r: &mut Reader<'_>) -> Result<TraceRecord, WireError> {
    let parts = fields(r.keyword("trace")?);
    let [id, root, duration_ns, n_spans] = parts.as_slice() else {
        return Err(err("bad trace line"));
    };
    let id = u64::from_str_radix(id, 16).map_err(|_| err("bad trace id"))?;
    let n_spans: usize = n_spans.parse().map_err(|_| err("bad span count"))?;
    let mut spans = Vec::with_capacity(n_spans);
    for _ in 0..n_spans {
        let parts = fields(r.keyword("span")?);
        let [sid, parent, name, tag, start_ns, dur_ns, bytes] = parts.as_slice() else {
            return Err(err("bad span line"));
        };
        spans.push(SpanRecord {
            id: sid.parse().map_err(|_| err("bad span id"))?,
            parent: parent.parse().map_err(|_| err("bad span parent"))?,
            name: unescape(name)?,
            tag: unescape(tag)?,
            start_ns: start_ns.parse().map_err(|_| err("bad span start"))?,
            duration_ns: dur_ns.parse().map_err(|_| err("bad span duration"))?,
            bytes: bytes.parse().map_err(|_| err("bad span bytes"))?,
        });
    }
    Ok(TraceRecord {
        id: TraceId(id),
        root: unescape(root)?,
        duration_ns: duration_ns.parse().map_err(|_| err("bad trace duration"))?,
        spans,
    })
}

fn decode_traces(r: &mut Reader<'_>) -> Result<TraceReport, WireError> {
    let head = fields(r.keyword("@traces")?)
        .into_iter()
        .map(|f| f.parse::<usize>().map_err(|_| err("bad @traces header")))
        .collect::<Result<Vec<_>, _>>()?;
    let [n_recent, n_slow] = head.as_slice() else {
        return Err(err("bad @traces header"));
    };
    let mut recent = Vec::with_capacity(*n_recent);
    for _ in 0..*n_recent {
        recent.push(decode_trace_record(r)?);
    }
    let mut slow = Vec::with_capacity(*n_slow);
    for _ in 0..*n_slow {
        slow.push(decode_trace_record(r)?);
    }
    Ok(TraceReport { recent, slow })
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Render an engine error as one tab-separated line. The conflict and
/// not-found variants that drive client retry/flow decisions round-trip
/// structurally; store errors cross the wire as their message (the
/// client rebuilds a [`StoreError::BadQuery`] carrying it).
pub fn encode_error(e: &EngineError) -> String {
    match e {
        EngineError::Conflict { table, detail } => {
            format!("conflict\t{}\t{}", escape(table), escape(detail))
        }
        EngineError::NoSuchView(v) => format!("no_such_view\t{}", escape(v)),
        EngineError::ViewExists(v) => format!("view_exists\t{}", escape(v)),
        EngineError::NoSuchTable(t) => format!("no_such_table\t{}", escape(t)),
        EngineError::WalCorrupt(msg) => format!("wal_corrupt\t{}", escape(msg)),
        EngineError::DuplicateSeq { seq, last } => format!("duplicate_seq\t{seq}\t{last}"),
        EngineError::Io(msg) => format!("io\t{}", escape(msg)),
        EngineError::RetriesExhausted { view, attempts } => {
            format!("retries_exhausted\t{}\t{attempts}", escape(view))
        }
        EngineError::ReservedTableName(t) => format!("reserved_table\t{}", escape(t)),
        EngineError::ShardTopology(msg) => format!("shard_topology\t{}", escape(msg)),
        EngineError::NotPrimary { primary } => format!("not_primary\t{}", escape(primary)),
        EngineError::Store(e) => format!("store\t{}", escape(&e.to_string())),
    }
}

/// Parse [`encode_error`]'s line.
pub fn decode_error(line: &str) -> Result<EngineError, WireError> {
    let (tag, rest) = match line.split_once('\t') {
        Some((tag, rest)) => (tag, rest),
        None => (line, ""),
    };
    let parts = fields(rest);
    let one = || -> Result<String, WireError> {
        match parts.as_slice() {
            [a] => Ok(unescape(a)?),
            _ => Err(err(format!("bad `{tag}` error body"))),
        }
    };
    Ok(match tag {
        "conflict" => match parts.as_slice() {
            [table, detail] => EngineError::Conflict {
                table: unescape(table)?,
                detail: unescape(detail)?,
            },
            _ => return Err(err("bad conflict body")),
        },
        "no_such_view" => EngineError::NoSuchView(one()?),
        "view_exists" => EngineError::ViewExists(one()?),
        "no_such_table" => EngineError::NoSuchTable(one()?),
        "wal_corrupt" => EngineError::WalCorrupt(one()?),
        "duplicate_seq" => match parts.as_slice() {
            [seq, last] => EngineError::DuplicateSeq {
                seq: seq.parse().map_err(|_| err("bad seq"))?,
                last: last.parse().map_err(|_| err("bad last"))?,
            },
            _ => return Err(err("bad duplicate_seq body")),
        },
        "io" => EngineError::Io(one()?),
        "retries_exhausted" => match parts.as_slice() {
            [view, attempts] => EngineError::RetriesExhausted {
                view: unescape(view)?,
                attempts: attempts.parse().map_err(|_| err("bad attempts"))?,
            },
            _ => return Err(err("bad retries_exhausted body")),
        },
        "reserved_table" => EngineError::ReservedTableName(one()?),
        "shard_topology" => EngineError::ShardTopology(one()?),
        // The redirect address may be empty (an unadvertised primary):
        // `not_primary\t` parses as zero fields.
        "not_primary" => EngineError::NotPrimary {
            primary: match parts.as_slice() {
                [] => String::new(),
                [a] => unescape(a)?,
                _ => return Err(err("bad not_primary body")),
            },
        },
        "store" => EngineError::Store(StoreError::BadQuery(one()?)),
        _ => return Err(err(format!("unknown error tag `{tag}`"))),
    })
}

// ---------------------------------------------------------------------
// Binary wire codec.
// ---------------------------------------------------------------------
//
// The hot row-bearing payloads (tables, databases, deltas, commits)
// encode as length-prefixed little-endian binary via the store's
// shared primitives ([`esm_store::codec`]) — no escaping, no float
// formatting, no per-cell parsing on decode. Rarely-crossing
// structures (view definitions, metrics, telemetry, errors) ride as
// one length-prefixed *text blob* reusing the document encoders above:
// their cost is negligible and the text form keeps one source of
// truth. `Request::decode`/`Response::decode` dispatch on the first
// payload byte, so binary speakers and legacy text speakers share a
// server.

/// First byte of every binary wire payload. `0xB7` is a UTF-8
/// continuation byte, so no text payload can start with it and the
/// decoder can dispatch per payload.
pub const BINARY_WIRE_MAGIC: u8 = 0xB7;

const REQ_PING: u8 = 0;
const REQ_TABLE_NAMES: u8 = 1;
const REQ_TABLE: u8 = 2;
const REQ_SNAPSHOT: u8 = 3;
const REQ_DEFINE_VIEW: u8 = 4;
const REQ_OPEN_VIEW: u8 = 5;
const REQ_VIEW_NAMES: u8 = 6;
const REQ_READ_VIEW: u8 = 7;
const REQ_WRITE_VIEW: u8 = 8;
const REQ_EDIT_CAS: u8 = 9;
const REQ_COMMIT: u8 = 10;
const REQ_METRICS: u8 = 11;
const REQ_STATS: u8 = 12;
const REQ_CHECKPOINT: u8 = 13;
const REQ_SYNC_WAL: u8 = 14;
const REQ_SERVER_PING: u8 = 15;
const REQ_TRACES: u8 = 16;
const REQ_SUBSCRIBE: u8 = 17;
const REQ_UNSUBSCRIBE: u8 = 18;
const REQ_REPL_MANIFEST: u8 = 19;
const REQ_REPL_FETCH: u8 = 20;

/// Byte length of the optional trace-context suffix on binary
/// requests: a u64 trace id plus a u32 parent span id. Pre-revision-2
/// requests end right after their body; a decoder that finds exactly
/// this many bytes left reads them as the context.
const TRACE_CTX_BYTES: usize = 12;

const RESP_UNIT: u8 = 0;
const RESP_NAMES: u8 = 1;
const RESP_TABLE: u8 = 2;
const RESP_DATABASE: u8 = 3;
const RESP_DELTA: u8 = 4;
const RESP_RECEIPT: u8 = 5;
const RESP_METRICS: u8 = 6;
const RESP_STATS: u8 = 7;
const RESP_SEQ: u8 = 8;
const RESP_ERR: u8 = 9;
const RESP_SERVER_INFO: u8 = 10;
const RESP_TRACES: u8 = 11;
const RESP_SUBACK: u8 = 12;
const RESP_PUSH: u8 = 13;
const RESP_REPL_MANIFEST: u8 = 14;
const RESP_REPL_CHUNK: u8 = 15;

fn put_value_type(out: &mut Vec<u8>, ty: ValueType) {
    out.push(match ty {
        ValueType::Bool => 0,
        ValueType::Int => 1,
        ValueType::Str => 2,
    });
}

fn bin_value_type(r: &mut BinReader<'_>) -> Result<ValueType, WireError> {
    Ok(match r.u8()? {
        0 => ValueType::Bool,
        1 => ValueType::Int,
        2 => ValueType::Str,
        t => return Err(err(format!("unknown value-type tag {t}"))),
    })
}

fn put_table(out: &mut Vec<u8>, table: &Table) {
    let cols = table.schema().columns();
    codec::put_u32(out, cols.len() as u32);
    for c in cols {
        codec::put_str(out, &c.name);
        put_value_type(out, c.ty);
    }
    let key = table.schema().key();
    codec::put_u32(out, key.len() as u32);
    for k in key {
        codec::put_str(out, k);
    }
    codec::put_u32(out, table.len() as u32);
    for row in table.rows() {
        codec::put_row(out, row);
    }
}

fn bin_table(r: &mut BinReader<'_>) -> Result<Table, WireError> {
    let ncols = r.u32()? as usize;
    let mut columns = Vec::new();
    for _ in 0..ncols {
        let name = r.str()?;
        columns.push(Column::new(name, bin_value_type(r)?));
    }
    let nkey = r.u32()? as usize;
    let mut key = Vec::new();
    for _ in 0..nkey {
        key.push(r.str()?);
    }
    let schema = Schema::new(columns, key)?;
    let nrows = r.u32()? as usize;
    let mut table = Table::new(schema);
    for _ in 0..nrows {
        table.insert(r.row()?)?;
    }
    Ok(table)
}

fn put_database(out: &mut Vec<u8>, db: &Database) {
    let names = db.table_names();
    codec::put_u32(out, names.len() as u32);
    for name in names {
        codec::put_str(out, name);
        put_table(out, db.table(name).expect("name came from the database"));
    }
}

fn bin_database(r: &mut BinReader<'_>) -> Result<Database, WireError> {
    let n = r.u32()? as usize;
    let mut db = Database::new();
    for _ in 0..n {
        let name = r.str()?;
        db.replace_table(name, bin_table(r)?);
    }
    Ok(db)
}

fn put_delta(out: &mut Vec<u8>, delta: &Delta) {
    codec::put_u32(out, delta.inserted.len() as u32);
    codec::put_u32(out, delta.deleted.len() as u32);
    for row in delta.inserted.iter().chain(delta.deleted.iter()) {
        codec::put_row(out, row);
    }
}

fn bin_delta(r: &mut BinReader<'_>) -> Result<Delta, WireError> {
    let ins = r.u32()? as usize;
    let del = r.u32()? as usize;
    let mut delta = Delta::empty();
    for _ in 0..ins {
        delta.inserted.push(r.row()?);
    }
    for _ in 0..del {
        delta.deleted.push(r.row()?);
    }
    Ok(delta)
}

/// Decode a length-prefixed text blob with `decode`, insisting the
/// blob is fully consumed.
fn bin_text_blob<T>(
    r: &mut BinReader<'_>,
    decode: impl FnOnce(&mut Reader<'_>) -> Result<T, WireError>,
) -> Result<T, WireError> {
    let text = r.str()?;
    let mut tr = Reader::new(&text);
    let value = decode(&mut tr)?;
    tr.end()?;
    Ok(value)
}

// ---------------------------------------------------------------------
// Request codec.
// ---------------------------------------------------------------------

impl Request {
    /// Render this request as a binary frame payload (the wire default;
    /// [`Request::encode_text`] keeps the legacy text form).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![BINARY_WIRE_MAGIC];
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::TableNames => out.push(REQ_TABLE_NAMES),
            Request::Table(name) => {
                out.push(REQ_TABLE);
                codec::put_str(&mut out, name);
            }
            Request::Snapshot => out.push(REQ_SNAPSHOT),
            Request::DefineView { name, table, def } => {
                out.push(REQ_DEFINE_VIEW);
                codec::put_str(&mut out, name);
                codec::put_str(&mut out, table);
                let mut text = String::new();
                encode_viewdef(&mut text, def);
                codec::put_str(&mut out, &text);
            }
            Request::OpenView(name) => {
                out.push(REQ_OPEN_VIEW);
                codec::put_str(&mut out, name);
            }
            Request::ViewNames => out.push(REQ_VIEW_NAMES),
            Request::ReadView(name) => {
                out.push(REQ_READ_VIEW);
                codec::put_str(&mut out, name);
            }
            Request::WriteView { name, view } => {
                out.push(REQ_WRITE_VIEW);
                codec::put_str(&mut out, name);
                put_table(&mut out, view);
            }
            Request::EditViewCas {
                name,
                expect,
                edited,
            } => {
                out.push(REQ_EDIT_CAS);
                codec::put_str(&mut out, name);
                put_table(&mut out, expect);
                put_table(&mut out, edited);
            }
            Request::Commit { deltas } => {
                out.push(REQ_COMMIT);
                codec::put_u32(&mut out, deltas.len() as u32);
                for (name, delta) in deltas {
                    codec::put_str(&mut out, name);
                    put_delta(&mut out, delta);
                }
            }
            Request::Metrics => out.push(REQ_METRICS),
            Request::Stats => out.push(REQ_STATS),
            Request::Checkpoint => out.push(REQ_CHECKPOINT),
            Request::SyncWal => out.push(REQ_SYNC_WAL),
            Request::ServerPing => out.push(REQ_SERVER_PING),
            Request::Traces => out.push(REQ_TRACES),
            Request::Subscribe { view, cursor } => {
                out.push(REQ_SUBSCRIBE);
                codec::put_str(&mut out, view);
                match cursor {
                    Some(c) => {
                        out.push(1);
                        codec::put_u64(&mut out, *c);
                    }
                    None => out.push(0),
                }
            }
            Request::Unsubscribe(view) => {
                out.push(REQ_UNSUBSCRIBE);
                codec::put_str(&mut out, view);
            }
            Request::ReplManifest => out.push(REQ_REPL_MANIFEST),
            Request::ReplFetch {
                shard,
                file,
                offset,
                len,
            } => {
                out.push(REQ_REPL_FETCH);
                codec::put_u64(&mut out, *shard);
                codec::put_str(&mut out, file);
                codec::put_u64(&mut out, *offset);
                codec::put_u64(&mut out, *len);
            }
        }
        out
    }

    /// [`Request::encode`] with a trace context — the trace id and the
    /// client-side parent span — appended as a fixed-width suffix. Old
    /// servers reject the extra bytes; new servers root a server-side
    /// trace under the same id. `None` encodes identically to
    /// [`Request::encode`].
    pub fn encode_with_trace(&self, ctx: Option<(u64, u32)>) -> Vec<u8> {
        let mut out = self.encode();
        if let Some((trace_id, parent)) = ctx {
            codec::put_u64(&mut out, trace_id);
            codec::put_u32(&mut out, parent);
        }
        out
    }

    /// Render this request as the legacy line-oriented text payload
    /// (still decoded by every server; binary is just faster).
    pub fn encode_text(&self) -> Vec<u8> {
        let mut out = String::new();
        match self {
            Request::Ping => out.push_str("ping\n"),
            Request::TableNames => out.push_str("table_names\n"),
            Request::Table(name) => out.push_str(&format!("table\t{}\n", escape(name))),
            Request::Snapshot => out.push_str("snapshot\n"),
            Request::DefineView { name, table, def } => {
                out.push_str(&format!(
                    "define_view\t{}\t{}\n",
                    escape(name),
                    escape(table)
                ));
                encode_viewdef(&mut out, def);
            }
            Request::OpenView(name) => out.push_str(&format!("open_view\t{}\n", escape(name))),
            Request::ViewNames => out.push_str("view_names\n"),
            Request::ReadView(name) => out.push_str(&format!("read_view\t{}\n", escape(name))),
            Request::WriteView { name, view } => {
                out.push_str(&format!("write_view\t{}\n", escape(name)));
                encode_table(&mut out, view);
            }
            Request::EditViewCas {
                name,
                expect,
                edited,
            } => {
                out.push_str(&format!("edit_cas\t{}\n", escape(name)));
                encode_table(&mut out, expect);
                encode_table(&mut out, edited);
            }
            Request::Commit { deltas } => {
                out.push_str(&format!("commit\t{}\n", deltas.len()));
                for (name, delta) in deltas {
                    out.push_str(&format!("@name\t{}\n", escape(name)));
                    encode_delta(&mut out, delta);
                }
            }
            Request::Metrics => out.push_str("metrics\n"),
            Request::Stats => out.push_str("stats\n"),
            Request::Checkpoint => out.push_str("checkpoint\n"),
            Request::SyncWal => out.push_str("sync_wal\n"),
            Request::ServerPing => out.push_str("server_ping\n"),
            Request::Traces => out.push_str("traces\n"),
            Request::Subscribe { view, cursor } => {
                let cursor = match cursor {
                    Some(c) => c.to_string(),
                    None => "none".into(),
                };
                out.push_str(&format!("subscribe\t{}\t{cursor}\n", escape(view)));
            }
            Request::Unsubscribe(view) => {
                out.push_str(&format!("unsubscribe\t{}\n", escape(view)));
            }
            Request::ReplManifest => out.push_str("repl_manifest\n"),
            Request::ReplFetch {
                shard,
                file,
                offset,
                len,
            } => {
                out.push_str(&format!(
                    "repl_fetch\t{shard}\t{}\t{offset}\t{len}\n",
                    escape(file)
                ));
            }
        }
        out.into_bytes()
    }

    /// Parse a frame payload as a request. Dispatches on the leading
    /// byte: [`BINARY_WIRE_MAGIC`] (a UTF-8 continuation byte no text
    /// payload can start with) selects the binary codec; anything else
    /// takes the legacy text path, so old clients keep working.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        Request::decode_with_trace(payload).map(|(req, _)| req)
    }

    /// [`Request::decode`], also surfacing the trace context when the
    /// payload is binary and carries the revision-2 suffix (the trace
    /// id and the sender's parent span id). Text payloads and suffixless
    /// binary payloads decode with `None` — legacy clients never trace.
    pub fn decode_with_trace(payload: &[u8]) -> Result<(Request, Option<(u64, u32)>), WireError> {
        if payload.first() == Some(&BINARY_WIRE_MAGIC) {
            return Request::decode_binary(&payload[1..]);
        }
        let text = std::str::from_utf8(payload).map_err(|e| err(format!("not UTF-8: {e}")))?;
        let mut r = Reader::new(text);
        let line = r.next()?;
        let (op, arg) = match line.split_once('\t') {
            Some((op, rest)) => (op, Some(rest)),
            None => (line, None),
        };
        let rest = arg.unwrap_or("");
        if matches!(
            op,
            "table"
                | "define_view"
                | "open_view"
                | "read_view"
                | "write_view"
                | "edit_cas"
                | "commit"
                | "subscribe"
                | "unsubscribe"
                | "repl_fetch"
        ) && arg.is_none()
        {
            return Err(err(format!("op `{op}` needs an argument")));
        }
        let req = match op {
            "ping" => Request::Ping,
            "table_names" => Request::TableNames,
            "table" => Request::Table(unescape(rest)?),
            "snapshot" => Request::Snapshot,
            "define_view" => {
                let parts = fields(rest);
                let [name, table] = parts.as_slice() else {
                    return Err(err("bad define_view header"));
                };
                Request::DefineView {
                    name: unescape(name)?,
                    table: unescape(table)?,
                    def: decode_viewdef(&mut r)?,
                }
            }
            "open_view" => Request::OpenView(unescape(rest)?),
            "view_names" => Request::ViewNames,
            "read_view" => Request::ReadView(unescape(rest)?),
            "write_view" => Request::WriteView {
                name: unescape(rest)?,
                view: decode_table(&mut r)?,
            },
            "edit_cas" => Request::EditViewCas {
                name: unescape(rest)?,
                expect: decode_table(&mut r)?,
                edited: decode_table(&mut r)?,
            },
            "commit" => {
                let n: usize = rest.parse().map_err(|_| err("bad commit count"))?;
                let mut deltas = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = unescape(r.keyword("@name")?)?;
                    deltas.push((name, decode_delta(&mut r)?));
                }
                Request::Commit { deltas }
            }
            "metrics" => Request::Metrics,
            "stats" => Request::Stats,
            "checkpoint" => Request::Checkpoint,
            "sync_wal" => Request::SyncWal,
            "server_ping" => Request::ServerPing,
            "traces" => Request::Traces,
            "subscribe" => {
                let parts = fields(rest);
                let [view, cursor] = parts.as_slice() else {
                    return Err(err("bad subscribe line"));
                };
                Request::Subscribe {
                    view: unescape(view)?,
                    cursor: match *cursor {
                        "none" => None,
                        c => Some(c.parse().map_err(|_| err("bad subscribe cursor"))?),
                    },
                }
            }
            "unsubscribe" => Request::Unsubscribe(unescape(rest)?),
            "repl_manifest" => Request::ReplManifest,
            "repl_fetch" => {
                let parts = fields(rest);
                let [shard, file, offset, len] = parts.as_slice() else {
                    return Err(err("bad repl_fetch line"));
                };
                Request::ReplFetch {
                    shard: shard.parse().map_err(|_| err("bad repl_fetch shard"))?,
                    file: unescape(file)?,
                    offset: offset.parse().map_err(|_| err("bad repl_fetch offset"))?,
                    len: len.parse().map_err(|_| err("bad repl_fetch len"))?,
                }
            }
            _ => return Err(err(format!("unknown request op `{op}`"))),
        };
        r.end()?;
        Ok((req, None))
    }

    /// Parse the binary body (everything after the magic byte),
    /// surfacing the optional trace-context suffix.
    fn decode_binary(bytes: &[u8]) -> Result<(Request, Option<(u64, u32)>), WireError> {
        let mut r = BinReader::new(bytes);
        let tag = r.u8()?;
        let req = match tag {
            REQ_PING => Request::Ping,
            REQ_TABLE_NAMES => Request::TableNames,
            REQ_TABLE => Request::Table(r.str()?),
            REQ_SNAPSHOT => Request::Snapshot,
            REQ_DEFINE_VIEW => Request::DefineView {
                name: r.str()?,
                table: r.str()?,
                def: bin_text_blob(&mut r, decode_viewdef)?,
            },
            REQ_OPEN_VIEW => Request::OpenView(r.str()?),
            REQ_VIEW_NAMES => Request::ViewNames,
            REQ_READ_VIEW => Request::ReadView(r.str()?),
            REQ_WRITE_VIEW => Request::WriteView {
                name: r.str()?,
                view: bin_table(&mut r)?,
            },
            REQ_EDIT_CAS => Request::EditViewCas {
                name: r.str()?,
                expect: bin_table(&mut r)?,
                edited: bin_table(&mut r)?,
            },
            REQ_COMMIT => {
                let n = r.u32()? as usize;
                let mut deltas = Vec::new();
                for _ in 0..n {
                    let name = r.str()?;
                    deltas.push((name, bin_delta(&mut r)?));
                }
                Request::Commit { deltas }
            }
            REQ_METRICS => Request::Metrics,
            REQ_STATS => Request::Stats,
            REQ_CHECKPOINT => Request::Checkpoint,
            REQ_SYNC_WAL => Request::SyncWal,
            REQ_SERVER_PING => Request::ServerPing,
            REQ_TRACES => Request::Traces,
            REQ_SUBSCRIBE => Request::Subscribe {
                view: r.str()?,
                cursor: match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    other => return Err(err(format!("bad cursor flag {other}"))),
                },
            },
            REQ_UNSUBSCRIBE => Request::Unsubscribe(r.str()?),
            REQ_REPL_MANIFEST => Request::ReplManifest,
            REQ_REPL_FETCH => Request::ReplFetch {
                shard: r.u64()?,
                file: r.str()?,
                offset: r.u64()?,
                len: r.u64()?,
            },
            other => return Err(err(format!("unknown binary request tag {other}"))),
        };
        // Revision 2: exactly TRACE_CTX_BYTES past the body is the
        // trace context; zero is a pre-revision request; anything else
        // is garbage.
        let ctx = if r.remaining() == TRACE_CTX_BYTES {
            Some((r.u64()?, r.u32()?))
        } else {
            None
        };
        r.end()?;
        Ok((req, ctx))
    }
}

// ---------------------------------------------------------------------
// Response codec.
// ---------------------------------------------------------------------

impl Response {
    /// Render this response as a binary frame payload (the wire
    /// default; [`Response::encode_text`] keeps the legacy text form).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![BINARY_WIRE_MAGIC];
        match self {
            Response::Unit => out.push(RESP_UNIT),
            Response::Names(names) => {
                out.push(RESP_NAMES);
                codec::put_u32(&mut out, names.len() as u32);
                for name in names {
                    codec::put_str(&mut out, name);
                }
            }
            Response::Table(t) => {
                out.push(RESP_TABLE);
                put_table(&mut out, t);
            }
            Response::Database(db) => {
                out.push(RESP_DATABASE);
                put_database(&mut out, db);
            }
            Response::Delta(d) => {
                out.push(RESP_DELTA);
                put_delta(&mut out, d);
            }
            Response::Receipt { stamp, shards, gtx } => {
                out.push(RESP_RECEIPT);
                codec::put_u64(&mut out, *stamp);
                codec::put_u32(&mut out, shards.len() as u32);
                for shard in shards {
                    codec::put_u64(&mut out, *shard as u64);
                }
                match gtx {
                    Some(gtx) => {
                        out.push(1);
                        codec::put_str(&mut out, gtx);
                    }
                    None => out.push(0),
                }
            }
            Response::Metrics(m) => {
                out.push(RESP_METRICS);
                let mut text = String::new();
                encode_metrics(&mut text, m);
                codec::put_str(&mut out, &text);
            }
            Response::Stats(t) => {
                out.push(RESP_STATS);
                let mut text = String::new();
                encode_telemetry(&mut text, t);
                codec::put_str(&mut out, &text);
            }
            Response::Seq(seq) => {
                out.push(RESP_SEQ);
                match seq {
                    Some(n) => {
                        out.push(1);
                        codec::put_u64(&mut out, *n);
                    }
                    None => out.push(0),
                }
            }
            Response::Err(e) => {
                out.push(RESP_ERR);
                codec::put_str(&mut out, &encode_error(e));
            }
            Response::ServerInfo {
                uptime_ms,
                protocol_rev,
                workers,
            } => {
                out.push(RESP_SERVER_INFO);
                codec::put_u64(&mut out, *uptime_ms);
                codec::put_u32(&mut out, *protocol_rev);
                codec::put_u32(&mut out, *workers);
            }
            Response::Traces(report) => {
                out.push(RESP_TRACES);
                let mut text = String::new();
                encode_traces(&mut text, report);
                codec::put_str(&mut out, &text);
            }
            Response::SubAck { cursor } => {
                out.push(RESP_SUBACK);
                codec::put_u64(&mut out, *cursor);
            }
            Response::Push {
                view,
                from_seq,
                to_seq,
                delta,
                resync,
            } => {
                out.push(RESP_PUSH);
                codec::put_str(&mut out, view);
                codec::put_u64(&mut out, *from_seq);
                codec::put_u64(&mut out, *to_seq);
                put_delta(&mut out, delta);
                match resync {
                    Some(window) => {
                        out.push(1);
                        put_table(&mut out, window);
                    }
                    None => out.push(0),
                }
            }
            Response::ReplManifest(m) => {
                out.push(RESP_REPL_MANIFEST);
                let mut text = String::new();
                encode_manifest(&mut text, m);
                codec::put_str(&mut out, &text);
            }
            Response::ReplChunk(bytes) => {
                out.push(RESP_REPL_CHUNK);
                codec::put_bytes(&mut out, bytes);
            }
        }
        out
    }

    /// Render this response as the legacy line-oriented text payload.
    pub fn encode_text(&self) -> Vec<u8> {
        let mut out = String::new();
        match self {
            Response::Unit => out.push_str("ok\n"),
            Response::Names(names) => {
                let escaped: Vec<String> = names.iter().map(|n| escape(n)).collect();
                if escaped.is_empty() {
                    out.push_str("names\n");
                } else {
                    out.push_str(&format!("names\t{}\n", escaped.join("\t")));
                }
            }
            Response::Table(t) => {
                out.push_str("table\n");
                encode_table(&mut out, t);
            }
            Response::Database(db) => {
                out.push_str("db\n");
                encode_database(&mut out, db);
            }
            Response::Delta(d) => {
                out.push_str("delta\n");
                encode_delta(&mut out, d);
            }
            Response::Receipt { stamp, shards, gtx } => {
                out.push_str(&format!("receipt\t{stamp}\n"));
                let shard_list: Vec<String> = shards.iter().map(|s| s.to_string()).collect();
                if shard_list.is_empty() {
                    out.push_str("shards\n");
                } else {
                    out.push_str(&format!("shards\t{}\n", shard_list.join("\t")));
                }
                if let Some(gtx) = gtx {
                    out.push_str(&format!("gtx\t{}\n", escape(gtx)));
                }
            }
            Response::Metrics(m) => {
                out.push_str("metrics\n");
                encode_metrics(&mut out, m);
            }
            Response::Stats(t) => {
                out.push_str("stats\n");
                encode_telemetry(&mut out, t);
            }
            Response::Seq(seq) => match seq {
                Some(n) => out.push_str(&format!("seq\t{n}\n")),
                None => out.push_str("seq\tnone\n"),
            },
            Response::Err(e) => out.push_str(&format!("err\t{}\n", encode_error(e))),
            Response::ServerInfo {
                uptime_ms,
                protocol_rev,
                workers,
            } => out.push_str(&format!(
                "server_info\t{uptime_ms}\t{protocol_rev}\t{workers}\n"
            )),
            Response::Traces(report) => {
                out.push_str("traces\n");
                encode_traces(&mut out, report);
            }
            Response::SubAck { cursor } => out.push_str(&format!("suback\t{cursor}\n")),
            Response::Push {
                view,
                from_seq,
                to_seq,
                delta,
                resync,
            } => {
                // The header carries a resync flag so the body stays a
                // fixed sequence of self-delimiting documents.
                out.push_str(&format!(
                    "push\t{}\t{from_seq}\t{to_seq}\t{}\n",
                    escape(view),
                    u8::from(resync.is_some())
                ));
                encode_delta(&mut out, delta);
                if let Some(window) = resync {
                    encode_table(&mut out, window);
                }
            }
            Response::ReplManifest(m) => {
                out.push_str("repl_manifest\n");
                encode_manifest(&mut out, m);
            }
            // Chunks are raw log bytes; the text form carries them as
            // hex (the binary codec is the fast path).
            Response::ReplChunk(bytes) => {
                out.push_str(&format!("repl_chunk\t{}\n", hex_encode(bytes)));
            }
        }
        out.into_bytes()
    }

    /// Parse a frame payload as a response. Dispatches on the leading
    /// byte exactly like [`Request::decode`]: binary when it is
    /// [`BINARY_WIRE_MAGIC`], the legacy text codec otherwise.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        if payload.first() == Some(&BINARY_WIRE_MAGIC) {
            return Response::decode_binary(&payload[1..]);
        }
        let text = std::str::from_utf8(payload).map_err(|e| err(format!("not UTF-8: {e}")))?;
        let mut r = Reader::new(text);
        let line = r.next()?;
        let (op, rest) = match line.split_once('\t') {
            Some((op, rest)) => (op, rest),
            None => (line, ""),
        };
        let resp = match op {
            "ok" => Response::Unit,
            "names" => Response::Names(
                fields(rest)
                    .into_iter()
                    .map(unescape)
                    .collect::<Result<_, _>>()?,
            ),
            "table" => Response::Table(decode_table(&mut r)?),
            "db" => Response::Database(decode_database(&mut r)?),
            "delta" => Response::Delta(decode_delta(&mut r)?),
            "receipt" => {
                let stamp: u64 = rest.parse().map_err(|_| err("bad receipt stamp"))?;
                let shards: Vec<usize> = fields(r.keyword("shards")?)
                    .into_iter()
                    .map(|s| s.parse().map_err(|_| err("bad shard index")))
                    .collect::<Result<_, _>>()?;
                let gtx = match r.lines.next() {
                    Some(line) => {
                        Some(unescape(line.strip_prefix("gtx\t").ok_or_else(|| {
                            err(format!("expected gtx line, got `{line}`"))
                        })?)?)
                    }
                    None => None,
                };
                return Ok(Response::Receipt { stamp, shards, gtx });
            }
            "metrics" => Response::Metrics(decode_metrics(&mut r)?),
            "stats" => Response::Stats(decode_telemetry(&mut r)?),
            "seq" => Response::Seq(match rest {
                "none" => None,
                n => Some(n.parse().map_err(|_| err("bad seq"))?),
            }),
            "err" => Response::Err(decode_error(rest)?),
            "server_info" => {
                let parts = fields(rest);
                let [uptime_ms, protocol_rev, workers] = parts.as_slice() else {
                    return Err(err("bad server_info line"));
                };
                Response::ServerInfo {
                    uptime_ms: uptime_ms.parse().map_err(|_| err("bad uptime"))?,
                    protocol_rev: protocol_rev.parse().map_err(|_| err("bad protocol rev"))?,
                    workers: workers.parse().map_err(|_| err("bad worker count"))?,
                }
            }
            "traces" => Response::Traces(decode_traces(&mut r)?),
            "suback" => Response::SubAck {
                cursor: rest.parse().map_err(|_| err("bad suback cursor"))?,
            },
            "push" => {
                let parts = fields(rest);
                let [view, from_seq, to_seq, has_resync] = parts.as_slice() else {
                    return Err(err("bad push header"));
                };
                let view = unescape(view)?;
                let from_seq = from_seq.parse().map_err(|_| err("bad push from_seq"))?;
                let to_seq = to_seq.parse().map_err(|_| err("bad push to_seq"))?;
                let delta = decode_delta(&mut r)?;
                let resync = match *has_resync {
                    "0" => None,
                    "1" => Some(decode_table(&mut r)?),
                    f => return Err(err(format!("bad push resync flag `{f}`"))),
                };
                Response::Push {
                    view,
                    from_seq,
                    to_seq,
                    delta,
                    resync,
                }
            }
            "repl_manifest" => Response::ReplManifest(decode_manifest(&mut r)?),
            "repl_chunk" => Response::ReplChunk(hex_decode(rest)?),
            _ => return Err(err(format!("unknown response op `{op}`"))),
        };
        r.end()?;
        Ok(resp)
    }

    /// Parse the binary body (everything after the magic byte).
    fn decode_binary(bytes: &[u8]) -> Result<Response, WireError> {
        let mut r = BinReader::new(bytes);
        let tag = r.u8()?;
        let resp = match tag {
            RESP_UNIT => Response::Unit,
            RESP_NAMES => {
                let n = r.u32()? as usize;
                let mut names = Vec::new();
                for _ in 0..n {
                    names.push(r.str()?);
                }
                Response::Names(names)
            }
            RESP_TABLE => Response::Table(bin_table(&mut r)?),
            RESP_DATABASE => Response::Database(bin_database(&mut r)?),
            RESP_DELTA => Response::Delta(bin_delta(&mut r)?),
            RESP_RECEIPT => {
                let stamp = r.u64()?;
                let n = r.u32()? as usize;
                let mut shards = Vec::new();
                for _ in 0..n {
                    shards.push(r.u64()? as usize);
                }
                let gtx = match r.u8()? {
                    0 => None,
                    1 => Some(r.str()?),
                    other => return Err(err(format!("bad gtx flag {other}"))),
                };
                Response::Receipt { stamp, shards, gtx }
            }
            RESP_METRICS => Response::Metrics(bin_text_blob(&mut r, decode_metrics)?),
            RESP_STATS => Response::Stats(bin_text_blob(&mut r, decode_telemetry)?),
            RESP_SEQ => Response::Seq(match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                other => return Err(err(format!("bad seq flag {other}"))),
            }),
            RESP_ERR => {
                let line = r.str()?;
                Response::Err(decode_error(&line)?)
            }
            RESP_SERVER_INFO => Response::ServerInfo {
                uptime_ms: r.u64()?,
                protocol_rev: r.u32()?,
                workers: r.u32()?,
            },
            RESP_TRACES => Response::Traces(bin_text_blob(&mut r, decode_traces)?),
            RESP_SUBACK => Response::SubAck { cursor: r.u64()? },
            RESP_PUSH => {
                let view = r.str()?;
                let from_seq = r.u64()?;
                let to_seq = r.u64()?;
                let delta = bin_delta(&mut r)?;
                let resync = match r.u8()? {
                    0 => None,
                    1 => Some(bin_table(&mut r)?),
                    other => return Err(err(format!("bad resync flag {other}"))),
                };
                Response::Push {
                    view,
                    from_seq,
                    to_seq,
                    delta,
                    resync,
                }
            }
            RESP_REPL_MANIFEST => Response::ReplManifest(bin_text_blob(&mut r, decode_manifest)?),
            RESP_REPL_CHUNK => Response::ReplChunk(r.bytes()?),
            other => return Err(err(format!("unknown binary response tag {other}"))),
        };
        r.end()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// The server-side request handler.
// ---------------------------------------------------------------------

/// Execute one request against a per-connection [`esm_engine::Session`].
/// Every engine error becomes a structured [`Response::Err`]; transport
/// problems never reach here.
pub fn handle(session: &esm_engine::Session, req: Request) -> Response {
    let engine = session.engine();
    let result: Result<Response, EngineError> = (|| {
        Ok(match req {
            Request::Ping => Response::Unit,
            Request::TableNames => Response::Names(engine.table_names()?),
            Request::Table(name) => Response::Table(engine.table(&name)?),
            Request::Snapshot => Response::Database(engine.snapshot()?),
            Request::DefineView { name, table, def } => {
                session.define_view(&name, &table, &def)?;
                Response::Unit
            }
            Request::OpenView(name) => {
                session.view(&name)?;
                Response::Unit
            }
            Request::ViewNames => Response::Names(engine.view_names()?),
            Request::ReadView(name) => Response::Table(engine.read_view(&name)?),
            Request::WriteView { name, view } => Response::Delta(engine.write_view(&name, view)?),
            Request::EditViewCas {
                name,
                expect,
                edited,
            } => {
                let table = name.clone();
                let delta = engine.edit_view_optimistic(&name, 1, &move |v: &mut Table| {
                    if *v != expect {
                        return Err(EngineError::Conflict {
                            table: table.clone(),
                            detail: "view window changed since the client's read".into(),
                        });
                    }
                    *v = edited.clone();
                    Ok(())
                })?;
                Response::Delta(delta)
            }
            Request::Commit { deltas } => {
                // Delta-direct checked commit: pre-image validation is
                // the first-committer-wins check against the client's
                // snapshot, and engines prune the work to the touched
                // stripes/shards — no whole-database snapshot or
                // re-diff on the server hot path.
                let receipt = engine.commit_checked(&deltas)?;
                Response::Receipt {
                    stamp: receipt.stamp,
                    shards: receipt.shards,
                    gtx: receipt.gtx,
                }
            }
            Request::Metrics => Response::Metrics(engine.metrics()?),
            Request::Stats => Response::Stats(engine.telemetry()?),
            Request::Checkpoint => Response::Seq(engine.checkpoint()?),
            Request::SyncWal => {
                engine.sync_wal()?;
                Response::Unit
            }
            // The network layer intercepts ServerPing before handle()
            // and answers with its real identity; this arm covers
            // direct (serverless) use of the handler.
            Request::ServerPing => Response::ServerInfo {
                uptime_ms: 0,
                protocol_rev: PROTOCOL_REV,
                workers: 0,
            },
            Request::Traces => Response::Traces(engine.traces()?),
            // The network layer intercepts Subscribe/Unsubscribe before
            // handle() — the subscription registry is connection-scoped.
            // These arms cover direct (serverless) use: ack with the
            // engine's cursor; nothing will push without a server.
            Request::Subscribe { view, cursor } => Response::SubAck {
                cursor: match cursor {
                    Some(c) => c,
                    None => engine.view_cursor(&view)?,
                },
            },
            Request::Unsubscribe(_) => Response::Unit,
            // Replication verbs route through the engine's shippable
            // WAL surface; in-memory engines have none.
            Request::ReplManifest => match engine.repl_source() {
                Some(source) => Response::ReplManifest(source.manifest()?),
                None => {
                    return Err(EngineError::Io(
                        "replication source unavailable: engine is not durable".into(),
                    ))
                }
            },
            Request::ReplFetch {
                shard,
                file,
                offset,
                len,
            } => match engine.repl_source() {
                Some(source) => Response::ReplChunk(source.fetch(shard, &file, offset, len)?),
                None => {
                    return Err(EngineError::Io(
                        "replication source unavailable: engine is not durable".into(),
                    ))
                }
            },
        })
    })();
    result.unwrap_or_else(Response::Err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Value};

    fn table() -> Table {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("name", ValueType::Str)], &["id"]).unwrap();
        Table::from_rows(schema, vec![row![1, "a\tb"], row![2, "nl\nhere"]]).unwrap()
    }

    fn telemetry() -> TelemetrySnapshot {
        let tel = esm_obs::Telemetry::new();
        for v in [3, 90, 4000, 4096, u64::MAX] {
            tel.record(Phase::CommitFsync, v);
            tel.record(Phase::NetHandler, v / 3);
        }
        tel.record_slow(
            "commit:we\tird\nop".to_string(),
            77_000_000,
            &[(Phase::CommitFsync, 70_000_000), (Phase::CommitLockHold, 5)],
        );
        tel.record_slow("plain".to_string(), 12_345_678, &[]);
        tel.snapshot()
    }

    fn traces() -> TraceReport {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "net:commit".into(),
                tag: String::new(),
                start_ns: 0,
                duration_ns: 5_000,
                bytes: 0,
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "we\tird\nname".into(),
                tag: "shard:0\tλ".into(),
                start_ns: 10,
                duration_ns: 4_000,
                bytes: 512,
            },
            SpanRecord {
                id: 3,
                parent: 2,
                name: "commit_fsync".into(),
                tag: String::new(),
                start_ns: 100,
                duration_ns: 3_000,
                bytes: u64::MAX,
            },
        ];
        TraceReport {
            recent: vec![
                TraceRecord {
                    id: TraceId(0xfeed_face_0000_0001),
                    root: "net:commit".into(),
                    duration_ns: 5_000,
                    spans,
                },
                TraceRecord {
                    id: TraceId(0),
                    root: "empty".into(),
                    duration_ns: 0,
                    spans: vec![],
                },
            ],
            slow: vec![TraceRecord {
                id: TraceId(u64::MAX),
                root: "slo\tw".into(),
                duration_ns: u64::MAX,
                spans: vec![SpanRecord {
                    id: 1,
                    parent: 0,
                    name: "session:transact".into(),
                    tag: String::new(),
                    start_ns: 0,
                    duration_ns: u64::MAX,
                    bytes: 7,
                }],
            }],
        }
    }

    #[test]
    fn requests_round_trip() {
        let def = ViewDef::base()
            .select(
                Predicate::lt(Operand::col("id"), Operand::val(30)).and(Predicate::ne(
                    Operand::col("name"),
                    Operand::val("we\tird\nname"),
                )),
            )
            .project(&["id", "name"], &[("extra", Value::str("d\\efault"))])
            .rename(&[("name", "renamed")]);
        let reqs = vec![
            Request::Ping,
            Request::TableNames,
            Request::Table("ta ble".into()),
            Request::Snapshot,
            Request::DefineView {
                name: "v\tiew".into(),
                table: "t".into(),
                def,
            },
            Request::OpenView("v".into()),
            Request::ViewNames,
            Request::ReadView("v".into()),
            Request::WriteView {
                name: "v".into(),
                view: table(),
            },
            Request::EditViewCas {
                name: "v".into(),
                expect: table(),
                edited: table(),
            },
            Request::Commit {
                deltas: vec![(
                    "t".into(),
                    Delta {
                        inserted: vec![row![3, "c"]],
                        deleted: vec![row![1, "a\tb"]],
                    },
                )],
            },
            Request::Metrics,
            Request::Stats,
            Request::Checkpoint,
            Request::SyncWal,
            Request::ServerPing,
            Request::Traces,
            Request::Subscribe {
                view: "v\tiew".into(),
                cursor: Some(u64::MAX),
            },
            Request::Subscribe {
                view: "v".into(),
                cursor: None,
            },
            Request::Subscribe {
                view: String::new(),
                cursor: Some(0),
            },
            Request::Unsubscribe("v\niew".into()),
            Request::ReplManifest,
            Request::ReplFetch {
                shard: 3,
                file: "wal-00000000000000000001.seg".into(),
                offset: 4096,
                len: u64::MAX,
            },
        ];
        for req in reqs {
            let back = Request::decode(&req.encode()).unwrap();
            // ViewDef has no PartialEq; compare through re-encoding.
            assert_eq!(back.encode(), req.encode(), "{req:?}");
        }
    }

    #[test]
    fn trace_context_round_trips() {
        let reqs = vec![
            Request::Ping,
            Request::Commit {
                deltas: vec![(
                    "t".into(),
                    Delta {
                        inserted: vec![row![3, "c"]],
                        deleted: vec![],
                    },
                )],
            },
            Request::Traces,
        ];
        for req in reqs {
            // With a context: it survives and the request is unchanged.
            let ctx = Some((0xdead_beef_cafe_f00d_u64, 17_u32));
            let (back, got) = Request::decode_with_trace(&req.encode_with_trace(ctx)).unwrap();
            assert_eq!(got, ctx, "{req:?}");
            assert_eq!(back.encode(), req.encode(), "{req:?}");
            // Without one: encode_with_trace(None) is byte-identical to
            // the plain encoding, and decodes with no context.
            assert_eq!(req.encode_with_trace(None), req.encode(), "{req:?}");
            let (_, got) = Request::decode_with_trace(&req.encode()).unwrap();
            assert_eq!(got, None, "{req:?}");
            // Text framing never carries a context.
            let (_, got) = Request::decode_with_trace(&req.encode_text()).unwrap();
            assert_eq!(got, None, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let mut db = Database::new();
        db.replace_table("t", table());
        let metrics = MetricsSnapshot {
            commits: 7,
            view: ViewStats {
                rebuilds: 2,
                ..Default::default()
            },
            shard: ShardStats {
                prepares: 3,
                ..Default::default()
            },
            wal: WalStats {
                appends: 9,
                ..Default::default()
            },
            ..Default::default()
        };
        let resps = vec![
            Response::Unit,
            Response::Names(vec![]),
            Response::Names(vec!["a".into(), "with\ttab".into()]),
            Response::Table(table()),
            Response::Database(db),
            Response::Delta(Delta {
                inserted: vec![row![9, "i"]],
                deleted: vec![],
            }),
            Response::Receipt {
                stamp: 42,
                shards: vec![0, 3],
                gtx: Some("g17".into()),
            },
            Response::Receipt {
                stamp: 1,
                shards: vec![],
                gtx: None,
            },
            Response::Metrics(metrics),
            Response::Stats(telemetry()),
            Response::Stats(TelemetrySnapshot {
                phases: vec![],
                slow_threshold_ns: 1,
                slow_ops: vec![],
                gauges: vec![],
            }),
            Response::Stats({
                let mut t = telemetry();
                t.set_gauge("repl_lag_records", u64::MAX);
                t.set_gauge("we\tird gauge", 0);
                t
            }),
            Response::Seq(Some(12)),
            Response::Seq(None),
            Response::ServerInfo {
                uptime_ms: 123_456,
                protocol_rev: PROTOCOL_REV,
                workers: 8,
            },
            Response::Traces(traces()),
            Response::Traces(TraceReport::default()),
            Response::Err(EngineError::Conflict {
                table: "t".into(),
                detail: "de\ttail".into(),
            }),
            Response::Err(EngineError::RetriesExhausted {
                view: "v".into(),
                attempts: 4,
            }),
            Response::SubAck { cursor: u64::MAX },
            Response::SubAck { cursor: 0 },
            Response::Push {
                view: "v\tiew".into(),
                from_seq: 3,
                to_seq: u64::MAX,
                delta: Delta {
                    inserted: vec![row![9, "i"]],
                    deleted: vec![row![1, "a\tb"]],
                },
                resync: None,
            },
            Response::Push {
                view: "v".into(),
                from_seq: 0,
                to_seq: 7,
                delta: Delta::empty(),
                resync: Some(table()),
            },
            Response::Metrics(MetricsSnapshot {
                shard: ShardStats {
                    auto_splits: 2,
                    auto_merges: 1,
                    commit_rate_ewma_milli: 123_456,
                    commit_rate_skew_milli: 1_900,
                    ..Default::default()
                },
                shard_load: vec![
                    ShardLoad {
                        shard: 0,
                        rows: 10,
                        commits: 100,
                        rate_ewma_milli: 5_000,
                    },
                    ShardLoad {
                        shard: 7,
                        rows: 0,
                        commits: 0,
                        rate_ewma_milli: 0,
                    },
                ],
                repl: ReplStats {
                    lag: vec![ReplicaLag {
                        shard: 0,
                        primary_seq: 42,
                        applied_seq: 40,
                    }],
                    ship_passes: 9,
                    records_applied: 80,
                    transactions_applied: 33,
                },
                ..Default::default()
            }),
            Response::ReplManifest(ReplManifest {
                topology: vec![0x00, 0xFF, 0x7B, b'\n', b'\t'],
                primary_addr: "127.0.0.1:4400".into(),
                shards: vec![
                    ShardManifest {
                        id: 0,
                        last_seq: 17,
                        files: vec![
                            FileEntry {
                                name: "checkpoint-00000000000000000004.ckpt".into(),
                                len: 321,
                            },
                            FileEntry {
                                name: "wal-00000000000000000005.seg".into(),
                                len: 4096,
                            },
                        ],
                    },
                    ShardManifest {
                        id: 3,
                        last_seq: 0,
                        files: vec![],
                    },
                ],
            }),
            Response::ReplManifest(ReplManifest::default()),
            Response::ReplChunk(vec![0xB7, 0x00, 0xFF, 1, 2, 3]),
            Response::ReplChunk(vec![]),
            Response::Err(EngineError::NotPrimary {
                primary: "10.0.0.2:4400".into(),
            }),
            Response::Err(EngineError::NotPrimary {
                primary: String::new(),
            }),
        ];
        for resp in resps {
            let back = Response::decode(&resp.encode()).unwrap();
            assert_eq!(back, resp);
            // The legacy text form must carry the same payloads.
            let back = Response::decode(&resp.encode_text()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn legacy_metrics_and_telemetry_forms_still_decode() {
        // A revision-3 peer sends the bare header and the 8-counter
        // shard line; the new fields must default, not error. And a
        // snapshot without replication state must encode bit-identically
        // to the revision-3 form.
        let legacy = b"metrics\n@metrics\ncore\t1\t2\t3\t4\t5\t6\t7\nwal\t1\t2\t3\t4\t5\t6\nshard\t1\t2\t3\t4\t5\t6\t7\t8\nview\t1\t2\t3\t4\n";
        let Response::Metrics(m) = Response::decode(legacy).unwrap() else {
            panic!("expected metrics");
        };
        assert_eq!(m.shard.auto_splits, 0);
        assert!(m.shard_load.is_empty());
        assert_eq!(m.repl, ReplStats::default());
        assert_eq!(Response::Metrics(m).encode_text(), legacy);

        let legacy = b"stats\n@telemetry\t42\t0\t0\n";
        let Response::Stats(t) = Response::decode(legacy).unwrap() else {
            panic!("expected stats");
        };
        assert!(t.gauges.is_empty());
        assert_eq!(Response::Stats(t).encode_text(), legacy);
    }

    #[test]
    fn legacy_text_payloads_still_decode() {
        // An old text-speaking client must keep working against a
        // binary-era server: encode_text → decode must round-trip.
        let reqs = vec![
            Request::Ping,
            Request::Table("ta ble".into()),
            Request::WriteView {
                name: "v".into(),
                view: table(),
            },
            Request::Commit {
                deltas: vec![(
                    "t".into(),
                    Delta {
                        inserted: vec![row![3, "c"]],
                        deleted: vec![row![1, "a\tb"]],
                    },
                )],
            },
            Request::ServerPing,
            Request::Traces,
            Request::Subscribe {
                view: "v\tiew".into(),
                cursor: Some(42),
            },
            Request::Subscribe {
                view: "v".into(),
                cursor: None,
            },
            Request::Unsubscribe("v".into()),
        ];
        for req in reqs {
            let back = Request::decode(&req.encode_text()).unwrap();
            assert_eq!(back.encode(), req.encode(), "{req:?}");
        }
        let resps = vec![
            Response::Unit,
            Response::Names(vec!["a".into(), "with\ttab".into()]),
            Response::Table(table()),
            Response::Receipt {
                stamp: 42,
                shards: vec![0, 3],
                gtx: Some("g17".into()),
            },
            Response::Stats(telemetry()),
            Response::ServerInfo {
                uptime_ms: 9,
                protocol_rev: PROTOCOL_REV,
                workers: 1,
            },
            Response::Traces(traces()),
            Response::Err(EngineError::Conflict {
                table: "t".into(),
                detail: "de\ttail".into(),
            }),
            Response::SubAck { cursor: 7 },
            Response::Push {
                view: "v\tiew".into(),
                from_seq: 1,
                to_seq: 9,
                delta: Delta {
                    inserted: vec![row![9, "i"]],
                    deleted: vec![],
                },
                resync: Some(table()),
            },
        ];
        for resp in resps {
            let back = Response::decode(&resp.encode_text()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn binary_garbage_is_rejected_not_panicked() {
        let truncated_commit = {
            // A commit header promising a delta that never arrives.
            let mut b = vec![BINARY_WIRE_MAGIC, REQ_COMMIT];
            codec::put_u32(&mut b, 3);
            b
        };
        let trailing = {
            let mut b = Request::Ping.encode();
            b.push(0);
            b
        };
        for bad in [
            vec![BINARY_WIRE_MAGIC],
            vec![BINARY_WIRE_MAGIC, 0xEE],
            vec![BINARY_WIRE_MAGIC, REQ_TABLE],
            vec![BINARY_WIRE_MAGIC, REQ_TABLE, 0xFF, 0xFF, 0xFF, 0xFF],
            truncated_commit,
            trailing,
        ] {
            assert!(Request::decode(&bad).is_err(), "{bad:?} must not decode");
        }
        let bad_cursor_flag = {
            let mut b = vec![BINARY_WIRE_MAGIC, REQ_SUBSCRIBE];
            codec::put_str(&mut b, "v");
            b.push(7); // neither 0 nor 1
            b
        };
        assert!(Request::decode(&bad_cursor_flag).is_err());
        let bad_resync_flag = {
            let mut b = vec![BINARY_WIRE_MAGIC, RESP_PUSH];
            codec::put_str(&mut b, "v");
            codec::put_u64(&mut b, 1);
            codec::put_u64(&mut b, 2);
            put_delta(&mut b, &Delta::empty());
            b.push(9); // neither 0 nor 1
            b
        };
        assert!(Response::decode(&bad_resync_flag).is_err());
        for bad in [
            vec![BINARY_WIRE_MAGIC],
            vec![BINARY_WIRE_MAGIC, 0xEE],
            vec![BINARY_WIRE_MAGIC, RESP_RECEIPT, 1],
            vec![BINARY_WIRE_MAGIC, RESP_SEQ, 7],
            vec![BINARY_WIRE_MAGIC, RESP_ERR, 0, 0, 0, 0],
            vec![BINARY_WIRE_MAGIC, RESP_SUBACK, 1, 2],
        ] {
            assert!(Response::decode(&bad).is_err(), "{bad:?} must not decode");
        }
        // Every truncation of a real binary payload must error cleanly:
        // all lengths are prefixed, so a missing tail is always caught.
        let full = Response::Table(table()).encode();
        for cut in 0..full.len() {
            assert!(
                Response::decode(&full[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn predicates_round_trip_structurally() {
        let pred = Predicate::lt(Operand::col("a b"), Operand::val(3))
            .and(Predicate::eq(Operand::col("s"), Operand::val("x\ty")).not())
            .or(Predicate::True.and(Predicate::False));
        let back = decode_predicate(&encode_predicate(&pred)).unwrap();
        assert_eq!(back, pred);
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in [
            &b""[..],
            b"nope",
            b"table",
            b"commit\tNaN",
            b"define_view\tonlyname",
            b"edit_cas\tv\n@schema\tbroken",
            b"subscribe",
            b"subscribe\tv",
            b"subscribe\tv\tNaN",
            b"unsubscribe",
            b"repl_fetch",
            b"repl_fetch\t0\tf",
            b"repl_fetch\tNaN\tf\t0\t0",
            b"\xff\xfe",
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?} must not decode");
        }
        for bad in [
            &b""[..],
            b"wat",
            b"receipt\tx",
            b"err\tmystery",
            b"stats\n@telemetry\t1\t1\t0\nphase\tnot_a_phase\t1\t1\t1\t0",
            b"stats\n@telemetry\t1\t1\t0\nphase\tcommit_fsync\t1\t1\t1\t2\t0:1",
            b"stats\n@telemetry\t1\t0\t1\nslow\top\tNaN\t0",
            b"suback\tNaN",
            b"push\tv\t1\t2",
            b"push\tv\t1\t2\t5\n@delta\t0\t0",
            b"repl_chunk\tzz",
            b"repl_chunk\tabc",
            b"repl_manifest\n@manifest\tx",
            b"repl_manifest\n@manifest\t\t\t1\nmshard\t0\t0\t1",
            b"metrics\n@metrics\tNaN\t0\ncore\t1\t2\t3\t4\t5\t6\t7",
        ] {
            assert!(Response::decode(bad).is_err(), "{bad:?} must not decode");
        }
        assert!(decode_predicate("and").is_err());
        assert!(decode_predicate("cmp:eq").is_err());
        assert!(decode_predicate("T\tF").is_err());
    }
}
