//! # `esm-net` — entangled views over a wire.
//!
//! The paper's entangled state monads are client handles onto shared
//! hidden state; this crate puts a socket between the handle and the
//! state. One [`NetServer`] fronts any [`esm_engine::Engine`] (a
//! lock-striped [`esm_engine::EngineServer`] or a key-range-sharded
//! [`esm_engine::ShardedEngineServer`]) and multiplexes many client
//! connections onto it; [`RemoteEngine`] implements the same `Engine`
//! trait on the client side, so an [`esm_engine::EntangledView`] is
//! **host-location-oblivious** — the code (and the conformance suite)
//! that runs in-process runs unchanged across the wire.
//!
//! ```text
//!  client process                      server process
//! ┌────────────────────┐   frames    ┌─────────────────────────────┐
//! │ EntangledView      │  [len|crc|  │ NetServer                   │
//! │   └ RemoteEngine ──┼──payload]──▶│  ├ poller (non-blocking     │
//! │ Session            │◀────────────┼──┤   readiness loop)        │
//! └────────────────────┘             │  ├ worker pool ── Session   │
//!        × thousands                 │  │   per connection         │
//!                                    │  └ Arc<dyn Engine>          │
//!                                    │     ├ EngineServer          │
//!                                    │     └ ShardedEngineServer   │
//!                                    └─────────────────────────────┘
//! ```
//!
//! * [`frame`] — length-prefixed, CRC32-checked frames; torn prefixes
//!   wait, bit rot refuses (the WAL segments' discipline, on a socket).
//! * [`proto`] — line-oriented request/response text for the full
//!   `Engine` surface, reusing [`esm_store::codec`]'s escaping; view
//!   definitions and predicates serialize structurally.
//! * [`server`] — the thread-pooled non-blocking front end; one
//!   [`esm_engine::Session`] per connection.
//! * [`client`] — [`RemoteEngine`]; client-driven optimistic loops
//!   (compare-and-swap edits, pre-image-validated transactions)
//!   replace the closures that cannot cross the wire.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::RemoteEngine;
pub use frame::{decode_frame, encode_frame, FrameError, MAX_FRAME_BYTES};
pub use proto::{Request, Response, WireError, PROTOCOL_REV};
pub use server::{NetServer, NetServerConfig, NetStats};
