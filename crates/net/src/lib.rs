//! # `esm-net` — entangled views over a wire.
//!
//! The paper's entangled state monads are client handles onto shared
//! hidden state; this crate puts a socket between the handle and the
//! state. One [`NetServer`] fronts any [`esm_engine::Engine`] (a
//! lock-striped [`esm_engine::EngineServer`] or a key-range-sharded
//! [`esm_engine::ShardedEngineServer`]) and multiplexes many client
//! connections onto it; [`RemoteEngine`] implements the same `Engine`
//! trait on the client side, so an [`esm_engine::EntangledView`] is
//! **host-location-oblivious** — the code (and the conformance suite)
//! that runs in-process runs unchanged across the wire.
//!
//! ```text
//!  client process                      server process
//! ┌────────────────────┐   frames    ┌─────────────────────────────┐
//! │ EntangledView      │  [len|crc|  │ NetServer                   │
//! │   └ RemoteEngine ──┼──payload]──▶│  ├ poller (non-blocking     │
//! │ Session            │◀────────────┼──┤   readiness loop)        │
//! └────────────────────┘             │  ├ worker pool ── Session   │
//!        × thousands                 │  │   per connection         │
//!                                    │  └ Arc<dyn Engine>          │
//!                                    │     ├ EngineServer          │
//!                                    │     └ ShardedEngineServer   │
//!                                    └─────────────────────────────┘
//! ```
//!
//! * [`frame`] — length-prefixed, CRC32-checked frames; torn prefixes
//!   wait, bit rot refuses (the WAL segments' discipline, on a socket).
//! * [`proto`] — line-oriented request/response text for the full
//!   `Engine` surface, reusing [`esm_store::codec`]'s escaping; view
//!   definitions and predicates serialize structurally.
//! * [`poll`] — the readiness source: raw `epoll` on Linux (the server
//!   parks in the kernel and touches only ready connections), an
//!   interruptible-sleep full-sweep fallback elsewhere, one API.
//! * [`server`] — the readiness-driven, thread-pooled front end; one
//!   [`esm_engine::Session`] per connection.
//! * [`client`] — [`RemoteEngine`]; client-driven optimistic loops
//!   (compare-and-swap edits, pre-image-validated transactions)
//!   replace the closures that cannot cross the wire. Plus
//!   [`SubscriptionClient`] for the push side of the protocol.
//!
//! ## Real-time subscriptions: subscribe → commit → drain → push
//!
//! Protocol rev 3 adds a push channel on the same socket. A client
//! sends `SUBSCRIBE view [cursor]` and gets back `SUBACK cursor` — the
//! engine commit position the subscription starts from — followed (for
//! a from-now subscription) by an initial `PUSH` carrying the view's
//! full current window. From then on, whenever a commit settles, the
//! server drains the view's committed deltas past the subscriber's
//! cursor ([`esm_engine::Engine::view_deltas_since`], O(changes) in the
//! commit, not O(view)) and pushes one coalesced `PUSH` frame:
//! `(from_seq, to_seq, delta)` or, when the engine cannot reconstruct
//! the gap (cursor fell out of the WAL window, lens rebuild, sharded
//! stamp granularity), a full-window `resync`. Applying frames in
//! arrival order — [`client::PushEvent::apply`] — reproduces the
//! server-side view; re-delivered deltas apply idempotently.
//!
//! Slow subscribers get backpressure, not queues: a connection whose
//! buffered output crosses its high-water mark has its cursor frozen
//! (nothing accumulates on its behalf), and on resume its subscription
//! resyncs. A stalled subscriber never delays a commit or another
//! subscriber's push. Rev-2 clients interoperate unchanged — the new
//! verbs are additive, in both the binary and legacy text codecs.
//!
//! Protocol rev 4 adds WAL-shipping replication on the same socket:
//! `repl_manifest` / `repl_fetch` expose a durable engine's segment
//! and checkpoint files (its [`esm_engine::WalSource`]), so a
//! [`RemoteWalSource`] can feed an [`esm_engine::ReplicaEngine`] that
//! has never shared a disk with its primary. Replicas reject writes
//! with a `not_primary` error carrying the primary's advertised
//! address; [`RemoteEngine::follow_redirect`] turns that into a
//! reconnect. Again additive: older peers never see the new frames.

#![warn(missing_docs)]
// Unsafe is confined to the raw epoll FFI in `poll` (no libc crate);
// everything else remains forbidden in practice via this deny.
#![deny(unsafe_code)]

pub mod client;
pub mod frame;
pub mod poll;
pub mod proto;
pub mod server;

pub use client::{redirect_addr, PushEvent, RemoteEngine, RemoteWalSource, SubscriptionClient};
pub use frame::{decode_frame, encode_frame, FrameError, MAX_FRAME_BYTES};
pub use proto::{Request, Response, WireError, PROTOCOL_REV};
pub use server::{NetServer, NetServerConfig, NetStats};
