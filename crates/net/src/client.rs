//! [`RemoteEngine`]: the [`Engine`] trait spoken over a socket.
//!
//! One `RemoteEngine` is one connection (clones share it; open several
//! for parallelism — the server multiplexes them all onto one engine).
//! Because it implements [`Engine`], an [`esm_engine::EntangledView`]
//! or [`esm_engine::Session`] over a `RemoteEngine` is indistinguishable
//! from one over an in-process engine — the same conformance suite
//! ([`esm_engine::testkit`]) runs against both, across a real wire.
//!
//! ## Closures do not serialize — equalities do
//!
//! Two trait methods take closures; both are driven from the client:
//!
//! * [`Engine::edit_view_optimistic`] becomes a read/edit/compare-and-
//!   swap loop: read the view, run the edit locally, then ask the
//!   server to install the edited window *iff* the view still equals
//!   the one the edit was computed against. A CAS failure is a
//!   first-committer-wins conflict; the client retries with a fresh
//!   read, up to the caller's attempt budget — optimistic concurrency
//!   with the validation done where the authoritative state lives.
//! * [`Engine::transact`] becomes snapshot/execute/commit-deltas: the
//!   body runs against a wired-over snapshot, and the resulting
//!   [`Delta`]s (whose `deleted` rows are pre-images, exactly what
//!   `Delta::between` emits) are validated row-for-row server-side
//!   inside the host engine's own atomic `transact`.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use esm_engine::{
    ArcEngine, CommitReceipt, Engine, EngineError, EntangledView, MetricsSnapshot, ReplManifest,
    WalSource,
};
use esm_relational::ViewDef;
use esm_store::{Database, Delta, Table};

use crate::frame::{decode_frame, read_frame, write_frame};
use crate::proto::{Request, Response};

/// A client-side engine handle speaking the wire protocol over one
/// TCP connection. Requests on one handle serialize; clone cheaply to
/// share, or connect again for concurrency.
///
/// Every [`Engine`] method — getters included — surfaces transport
/// failures as [`EngineError::Io`]; a dead connection never panics and
/// never fabricates an empty answer.
#[derive(Clone)]
pub struct RemoteEngine {
    wire: Arc<Mutex<TcpStream>>,
    peer: SocketAddr,
    /// Client-local telemetry registry: a `Session` over this engine
    /// mints its trace roots here (head sampling is client-side), and
    /// the round-trip spans land here. Shared across clones.
    telemetry: Arc<esm_obs::Telemetry>,
}

impl std::fmt::Debug for RemoteEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RemoteEngine {{ peer: {} }}", self.peer)
    }
}

impl RemoteEngine {
    /// Connect to a [`crate::NetServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<RemoteEngine> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(RemoteEngine {
            wire: Arc::new(Mutex::new(stream)),
            peer,
            telemetry: Arc::new(esm_obs::Telemetry::new()),
        })
    }

    /// The client-local telemetry registry (trace roots, round-trip
    /// spans). Tune its sampling with
    /// [`esm_obs::Telemetry::set_trace_sample_every`].
    pub fn telemetry_registry(&self) -> &Arc<esm_obs::Telemetry> {
        &self.telemetry
    }

    /// The server address this handle speaks to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Round-trip a liveness probe.
    pub fn ping(&self) -> Result<(), EngineError> {
        match self.request(&Request::Ping)? {
            Response::Unit => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Probe the server's network layer without touching any engine
    /// lock: `(uptime_ms, protocol_rev, workers)`.
    pub fn server_ping(&self) -> Result<(u64, u32, u32), EngineError> {
        match self.request(&Request::ServerPing)? {
            Response::ServerInfo {
                uptime_ms,
                protocol_rev,
                workers,
            } => Ok((uptime_ms, protocol_rev, workers)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the server's WAL-shipping manifest (revision 4). Errors
    /// with [`EngineError::Io`] against in-memory engines, which have
    /// no shippable log.
    pub fn repl_manifest(&self) -> Result<ReplManifest, EngineError> {
        match self.call(&Request::ReplManifest)? {
            Response::ReplManifest(m) => Ok(m),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch up to `len` bytes of `shard-<shard>/<file>` from `offset`
    /// (revision 4). A short or empty chunk means EOF at manifest time.
    pub fn repl_fetch(
        &self,
        shard: u64,
        file: &str,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, EngineError> {
        match self.call(&Request::ReplFetch {
            shard,
            file: file.to_string(),
            offset,
            len,
        })? {
            Response::ReplChunk(bytes) => Ok(bytes),
            other => Err(unexpected(other)),
        }
    }

    /// This connection as a [`WalSource`]: feed it to
    /// [`esm_engine::ReplicaEngine::bootstrap`] and the replica ships
    /// the primary's WAL over this wire. Clones the handle — shipping
    /// shares the connection with any other use.
    pub fn wal_source(&self) -> RemoteWalSource {
        RemoteWalSource {
            engine: self.clone(),
        }
    }

    /// Follow a replica's write rejection: when `e` is
    /// [`EngineError::NotPrimary`] carrying an advertised address,
    /// connect there. `None` when the error is anything else or the
    /// replica knows no primary (promotion in progress — retry later).
    pub fn follow_redirect(e: &EngineError) -> Option<std::io::Result<RemoteEngine>> {
        redirect_addr(e).map(RemoteEngine::connect)
    }

    fn request(&self, req: &Request) -> Result<Response, EngineError> {
        // With a trace active on this thread, the round trip becomes a
        // span and the request carries the trace id (parented under
        // that span) so the server roots its own tree under the same
        // id. Untraced requests encode byte-identically to revision 1.
        let mut rt_span = esm_obs::trace::span("net_round_trip");
        let ctx = esm_obs::trace::current().map(|t| (t.id().0, t.parent_span()));
        let encoded = req.encode_with_trace(ctx);
        let mut stream = self
            .wire
            .lock()
            .map_err(|_| EngineError::Io("remote connection poisoned".into()))?;
        write_frame(&mut *stream, &encoded)?;
        let payload = read_frame(&mut *stream)?;
        drop(stream);
        if let Some(s) = rt_span.as_mut() {
            s.set_bytes((encoded.len() + payload.len()) as u64);
        }
        drop(rt_span);
        Ok(Response::decode(&payload)?)
    }

    /// Like [`RemoteEngine::request`] but lifts a structured server
    /// error into `Err`.
    fn call(&self, req: &Request) -> Result<Response, EngineError> {
        match self.request(req)? {
            Response::Err(e) => Err(e),
            ok => Ok(ok),
        }
    }
}

fn unexpected(resp: Response) -> EngineError {
    EngineError::Io(format!("unexpected response shape: {resp:?}"))
}

/// The primary address inside a [`EngineError::NotPrimary`] rejection,
/// when the replica had one to advertise.
pub fn redirect_addr(e: &EngineError) -> Option<&str> {
    match e {
        EngineError::NotPrimary { primary } if !primary.is_empty() => Some(primary),
        _ => None,
    }
}

/// A [`WalSource`] that ships a primary's WAL over the wire protocol:
/// the replication analogue of [`RemoteEngine`]. A replica bootstrapped
/// over one of these is a warm standby for a primary it has never
/// shared a disk with.
#[derive(Debug, Clone)]
pub struct RemoteWalSource {
    engine: RemoteEngine,
}

impl WalSource for RemoteWalSource {
    fn manifest(&self) -> Result<ReplManifest, EngineError> {
        self.engine.repl_manifest()
    }

    fn fetch(&self, shard: u64, file: &str, offset: u64, len: u64) -> Result<Vec<u8>, EngineError> {
        self.engine.repl_fetch(shard, file, offset, len)
    }
}

impl Engine for RemoteEngine {
    fn as_engine(&self) -> ArcEngine {
        Arc::new(self.clone())
    }

    fn table_names(&self) -> Result<Vec<String>, EngineError> {
        // A transport failure must not masquerade as "an engine with no
        // tables"; it surfaces as the error it is.
        match self.call(&Request::TableNames)? {
            Response::Names(names) => Ok(names),
            other => Err(unexpected(other)),
        }
    }

    fn table(&self, name: &str) -> Result<Table, EngineError> {
        match self.call(&Request::Table(name.to_string()))? {
            Response::Table(t) => Ok(t),
            other => Err(unexpected(other)),
        }
    }

    fn snapshot(&self) -> Result<Database, EngineError> {
        match self.call(&Request::Snapshot)? {
            Response::Database(db) => Ok(db),
            other => Err(unexpected(other)),
        }
    }

    fn define_view(
        &self,
        name: &str,
        table: &str,
        def: &ViewDef,
    ) -> Result<EntangledView, EngineError> {
        match self.call(&Request::DefineView {
            name: name.to_string(),
            table: table.to_string(),
            def: def.clone(),
        })? {
            Response::Unit => Ok(EntangledView::attach(self.as_engine(), name)),
            other => Err(unexpected(other)),
        }
    }

    fn view(&self, name: &str) -> Result<EntangledView, EngineError> {
        match self.call(&Request::OpenView(name.to_string()))? {
            Response::Unit => Ok(EntangledView::attach(self.as_engine(), name)),
            other => Err(unexpected(other)),
        }
    }

    fn view_names(&self) -> Result<Vec<String>, EngineError> {
        match self.call(&Request::ViewNames)? {
            Response::Names(names) => Ok(names),
            other => Err(unexpected(other)),
        }
    }

    fn read_view(&self, name: &str) -> Result<Table, EngineError> {
        match self.call(&Request::ReadView(name.to_string()))? {
            Response::Table(t) => Ok(t),
            other => Err(unexpected(other)),
        }
    }

    fn write_view(&self, name: &str, view: Table) -> Result<Delta, EngineError> {
        match self.call(&Request::WriteView {
            name: name.to_string(),
            view,
        })? {
            Response::Delta(d) => Ok(d),
            other => Err(unexpected(other)),
        }
    }

    fn edit_view_optimistic(
        &self,
        name: &str,
        attempts: u32,
        edit: &dyn Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        for _ in 0..attempts.max(1) {
            let expect = self.read_view(name)?;
            let mut edited = expect.clone();
            edit(&mut edited)?;
            if edited == expect {
                return Ok(Delta::empty());
            }
            match self.call(&Request::EditViewCas {
                name: name.to_string(),
                expect,
                edited,
            }) {
                Ok(Response::Delta(d)) => return Ok(d),
                Ok(other) => return Err(unexpected(other)),
                // A CAS miss surfaces as a conflict (or as the server's
                // single attempt reporting exhaustion): retry with a
                // fresh read.
                Err(EngineError::Conflict { .. }) | Err(EngineError::RetriesExhausted { .. }) => {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
        Err(EngineError::RetriesExhausted {
            view: name.to_string(),
            attempts,
        })
    }

    fn transact(
        &self,
        max_attempts: u32,
        body: &dyn Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError> {
        for _ in 0..max_attempts.max(1) {
            let snapshot = match self.call(&Request::Snapshot)? {
                Response::Database(db) => db,
                other => return Err(unexpected(other)),
            };
            let mut working = snapshot.clone();
            body(&mut working)?;
            let mut deltas: Vec<(String, Delta)> = Vec::new();
            for name in snapshot.table_names() {
                let delta = Delta::between(snapshot.table(name)?, working.table(name)?)?;
                if !delta.is_empty() {
                    deltas.push((name.to_string(), delta));
                }
            }
            let delta_map = deltas.iter().cloned().collect();
            match self.call(&Request::Commit { deltas }) {
                Ok(Response::Receipt { stamp, shards, gtx }) => {
                    return Ok(CommitReceipt {
                        stamp,
                        shards,
                        deltas: delta_map,
                        gtx,
                    })
                }
                Ok(other) => return Err(unexpected(other)),
                Err(EngineError::Conflict { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(EngineError::Conflict {
            table: String::new(),
            detail: format!("remote transaction still conflicted after {max_attempts} attempts"),
        })
    }

    fn metrics(&self) -> Result<MetricsSnapshot, EngineError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            other => Err(unexpected(other)),
        }
    }

    fn telemetry(&self) -> Result<esm_obs::TelemetrySnapshot, EngineError> {
        // The server folds its own net-layer phases (frame decode,
        // queue wait, handler, response write) into the engine's
        // snapshot before it crosses the wire.
        match self.call(&Request::Stats)? {
            Response::Stats(t) => Ok(t),
            other => Err(unexpected(other)),
        }
    }

    fn traces(&self) -> Result<esm_obs::TraceReport, EngineError> {
        // Server-side trees first (rooted at frame decode, fsync spans
        // inside), then the client-local trees that carry the matching
        // round-trip spans — correlated by shared trace id.
        match self.call(&Request::Traces)? {
            Response::Traces(mut server) => {
                server.merge(&self.telemetry.traces_report());
                Ok(server)
            }
            other => Err(unexpected(other)),
        }
    }

    fn telemetry_handle(&self) -> Option<Arc<esm_obs::Telemetry>> {
        Some(Arc::clone(&self.telemetry))
    }

    fn checkpoint(&self) -> Result<Option<u64>, EngineError> {
        match self.call(&Request::Checkpoint)? {
            Response::Seq(seq) => Ok(seq),
            other => Err(unexpected(other)),
        }
    }

    fn sync_wal(&self) -> Result<(), EngineError> {
        match self.call(&Request::SyncWal)? {
            Response::Unit => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

/// One `PUSH` frame received on a subscription: either the coalesced
/// deltas spanning `(from_seq, to_seq]`, or a full-window `resync`
/// (stall recovery, WAL-window miss, lens rebuild, sharded stamp
/// granularity).
#[derive(Debug, Clone, PartialEq)]
pub struct PushEvent {
    /// The subscribed view this push belongs to.
    pub view: String,
    /// The cursor this push continues from.
    pub from_seq: u64,
    /// The cursor a subscriber is at after applying this push.
    pub to_seq: u64,
    /// Coalesced view deltas (empty when `resync` is present).
    pub delta: Delta,
    /// When present: adopt this full window and discard local state.
    pub resync: Option<Table>,
}

impl PushEvent {
    /// Fold this push into a local replica of the view. Applying
    /// pushes in arrival order reproduces the server-side view;
    /// re-delivered deltas apply idempotently (inserts upsert, deletes
    /// tolerate missing rows).
    pub fn apply(&self, table: &mut Table) -> Result<(), esm_store::StoreError> {
        match &self.resync {
            Some(window) => {
                *table = window.clone();
                Ok(())
            }
            None => self.delta.apply_in_place(table),
        }
    }
}

/// A dedicated subscription connection: subscribe to views, then
/// receive [`PushEvent`]s as commits settle server-side.
///
/// Unlike [`RemoteEngine`] (strict request/response), this handle
/// expects unsolicited `PUSH` frames at any time, so it owns its
/// connection exclusively and buffers pushes that race with an
/// in-flight request. It is deliberately not `Clone`: one subscriber,
/// one socket, one cursor stream.
pub struct SubscriptionClient {
    stream: TcpStream,
    inbuf: Vec<u8>,
    pending: VecDeque<PushEvent>,
}

impl std::fmt::Debug for SubscriptionClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubscriptionClient {{ queued: {} }}", self.pending.len())
    }
}

impl SubscriptionClient {
    /// Connect to a [`crate::NetServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<SubscriptionClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(SubscriptionClient {
            stream,
            inbuf: Vec::new(),
            pending: VecDeque::new(),
        })
    }

    /// Subscribe to `view`. `cursor: None` starts "from now": the ack
    /// is followed by an initial resync push carrying the view's full
    /// current window (delivered via [`SubscriptionClient::next_push`]).
    /// `Some(cursor)` resumes a previous position; everything settled
    /// past it arrives as the first push. Returns the acked cursor.
    pub fn subscribe(&mut self, view: &str, cursor: Option<u64>) -> Result<u64, EngineError> {
        match self.call(&Request::Subscribe {
            view: view.to_string(),
            cursor,
        })? {
            Response::SubAck { cursor } => Ok(cursor),
            other => Err(unexpected(other)),
        }
    }

    /// Stop receiving pushes for `view`. Pushes the server buffered
    /// before processing the unsubscribe may still be delivered (they
    /// are queued locally and surface through
    /// [`SubscriptionClient::next_push`]).
    pub fn unsubscribe(&mut self, view: &str) -> Result<(), EngineError> {
        match self.call(&Request::Unsubscribe(view.to_string()))? {
            Response::Unit => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// The next push, waiting up to `timeout`. `Ok(None)` means the
    /// timeout passed quietly; an error means the connection is gone.
    pub fn next_push(&mut self, timeout: Duration) -> Result<Option<PushEvent>, EngineError> {
        // Frames already buffered (e.g. read in the same chunk as a
        // request's response) surface before touching the socket.
        self.drain_frames()?;
        if let Some(ev) = self.pending.pop_front() {
            return Ok(Some(ev));
        }
        let deadline = Instant::now() + timeout;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .map_err(io_err)?;
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(EngineError::Io("subscription connection closed".into())),
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    self.drain_frames()?;
                    if let Some(ev) = self.pending.pop_front() {
                        return Ok(Some(ev));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Round-trip a request, queueing any pushes that arrive before
    /// the response.
    fn call(&mut self, req: &Request) -> Result<Response, EngineError> {
        self.stream.set_read_timeout(None).map_err(io_err)?;
        write_frame(&mut self.stream, &req.encode()).map_err(io_err)?;
        loop {
            // Complete buffered frames first, then block for more.
            while let Some((payload, consumed)) = decode_frame(&self.inbuf)
                .map_err(|e| EngineError::Io(format!("bad frame on subscription: {e}")))?
            {
                self.inbuf.drain(..consumed);
                match Response::decode(&payload)? {
                    Response::Push {
                        view,
                        from_seq,
                        to_seq,
                        delta,
                        resync,
                    } => self.pending.push_back(PushEvent {
                        view,
                        from_seq,
                        to_seq,
                        delta,
                        resync,
                    }),
                    resp => {
                        return match resp {
                            Response::Err(e) => Err(e),
                            ok => Ok(ok),
                        }
                    }
                }
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(EngineError::Io("subscription connection closed".into())),
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Decode every complete frame in the input buffer into the push
    /// queue. Non-push frames here mean a desynchronized protocol.
    fn drain_frames(&mut self) -> Result<(), EngineError> {
        while let Some((payload, consumed)) = decode_frame(&self.inbuf)
            .map_err(|e| EngineError::Io(format!("bad frame on subscription: {e}")))?
        {
            self.inbuf.drain(..consumed);
            match Response::decode(&payload)? {
                Response::Push {
                    view,
                    from_seq,
                    to_seq,
                    delta,
                    resync,
                } => self.pending.push_back(PushEvent {
                    view,
                    from_seq,
                    to_seq,
                    delta,
                    resync,
                }),
                other => return Err(unexpected(other)),
            }
        }
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> EngineError {
    EngineError::Io(e.to_string())
}
