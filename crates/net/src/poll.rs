//! OS readiness for the server's event loop.
//!
//! On Linux this is a thin wrapper over raw `epoll(7)` — declared
//! directly against the C ABI (the workspace deliberately carries no
//! `libc` crate) and confined to one `#[allow(unsafe_code)]` module.
//! The poller blocks in `epoll_wait` until a registered socket is
//! actually readable/writable, so thousands of idle connections cost
//! zero CPU and a ready one wakes the loop in microseconds. A self-pipe
//! gives other threads (workers finishing a request, the push pump,
//! shutdown) a way to interrupt the wait.
//!
//! Everywhere else [`Poller`] keeps the same API but degrades to the
//! old portable discipline: [`Poller::wait`] parks on a condvar until
//! [`Poller::notify`] or the timeout, and reports [`PollOutcome::ScanAll`]
//! so the caller sweeps every connection with non-blocking reads. Same
//! server, same correctness, just the busy-poll cost profile.
//!
//! Registration uses level-triggered readiness (epoll's default): an
//! event repeats while the condition holds, so a partial read or an
//! unflushed buffer is re-announced on the next wait — no edge-trigger
//! starvation bugs. Write interest is armed only while a connection has
//! buffered output ([`Poller::set_writable`]); otherwise every idle
//! socket would spin the loop on "still writable".

/// The token [`PollEvent`] carries for the server's listening socket.
pub const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Reserved internally for the self-pipe; never surfaced in events.
const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness event: which registration fired and how.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// Readable (or a peer hang-up, which reads as EOF).
    pub readable: bool,
    /// Writable — only reported while write interest is armed.
    pub writable: bool,
}

/// What one [`Poller::wait`] produced.
#[derive(Debug)]
pub enum PollOutcome {
    /// Real readiness: touch exactly these registrations (possibly
    /// none, when the wait timed out or was interrupted by
    /// [`Poller::notify`]).
    Ready(Vec<PollEvent>),
    /// No readiness facts available (portable fallback): sweep every
    /// connection with non-blocking calls.
    ScanAll,
}

#[cfg(target_os = "linux")]
pub use linux::Poller;

#[cfg(not(target_os = "linux"))]
pub use fallback::Poller;

/// Raw epoll against the C ABI. No `libc` crate exists in this
/// workspace, so the handful of syscall wrappers the loop needs are
/// declared here, constants from the kernel headers alongside. Unsafe
/// is confined to this module; the rest of the crate stays
/// `deny(unsafe_code)`-clean.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod linux {
    use super::{PollEvent, PollOutcome, WAKE_TOKEN};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const O_NONBLOCK: i32 = 0o4000;
    const O_CLOEXEC: i32 = 0o2000000;

    /// `struct epoll_event`. The kernel packs it on x86-64 (and only
    /// there), so the data word straddles what would otherwise be
    /// padding — the layout must match or every event's token is
    /// garbage.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn pipe2(fds: *mut i32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance plus the self-pipe that interrupts its waits.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        wake_rx: RawFd,
        wake_tx: RawFd,
    }

    impl Poller {
        /// Create the epoll instance and register the wake pipe.
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let mut fds = [0i32; 2];
            if let Err(e) = cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) }) {
                unsafe { close(epfd) };
                return Err(e);
            }
            let poller = Poller {
                epfd,
                wake_rx: fds[0],
                wake_tx: fds[1],
            };
            poller.ctl(EPOLL_CTL_ADD, poller.wake_rx, EPOLLIN, WAKE_TOKEN)?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        /// Register a socket for read readiness under `token`.
        pub fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, EPOLLIN | EPOLLRDHUP, token)
        }

        /// Arm or disarm write interest (read interest stays on).
        pub fn set_writable(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            let events = if writable {
                EPOLLIN | EPOLLRDHUP | EPOLLOUT
            } else {
                EPOLLIN | EPOLLRDHUP
            };
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Drop a socket's registration (a closed fd is auto-removed by
        /// the kernel, but an explicit removal keeps the dup'd write
        /// handles in [`crate::server`] from pinning it).
        pub fn deregister(&self, fd: RawFd) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Block until readiness, a [`Poller::notify`], or `timeout`.
        pub fn wait(&self, timeout: Duration) -> io::Result<PollOutcome> {
            let mut events = [EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(
                        self.epfd,
                        events.as_mut_ptr(),
                        events.len() as i32,
                        timeout_ms,
                    )
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            let mut out = Vec::with_capacity(n);
            for ev in &events[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, token) = (ev.events, ev.data);
                if token == WAKE_TOKEN {
                    // Drain the pipe so the next wait can block again.
                    let mut sink = [0u8; 64];
                    while unsafe { read(self.wake_rx, sink.as_mut_ptr(), sink.len()) } > 0 {}
                    continue;
                }
                out.push(PollEvent {
                    token,
                    // Errors and hang-ups surface as "readable": the
                    // next read returns the error/EOF and the server
                    // runs its normal drop path.
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & EPOLLOUT != 0,
                });
            }
            Ok(PollOutcome::Ready(out))
        }

        /// Interrupt a concurrent [`Poller::wait`]. A full pipe means a
        /// wake-up is already pending — exactly the desired state.
        pub fn notify(&self) {
            let byte = 1u8;
            unsafe { write(self.wake_tx, &byte, 1) };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_rx);
                close(self.wake_tx);
                close(self.epfd);
            }
        }
    }
}

/// Portable fallback: no readiness facts, just an interruptible sleep.
/// The server answers [`PollOutcome::ScanAll`] by sweeping every
/// connection with non-blocking reads — the pre-epoll behavior.
#[cfg(not(target_os = "linux"))]
mod fallback {
    use super::PollOutcome;
    use std::io;
    use std::sync::{Condvar, Mutex};
    use std::time::Duration;

    /// See [`super::Poller`](crate::poll) — condvar-paced stand-in.
    #[derive(Debug, Default)]
    pub struct Poller {
        pending: Mutex<bool>,
        cv: Condvar,
    }

    /// Matches the Linux `RawFd` parameter positions without pulling in
    /// unix-only types.
    pub type RawFd = i32;

    impl Poller {
        /// A poller that only times out or is notified.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller::default())
        }

        /// No readiness source: registration is a no-op.
        pub fn register(&self, _fd: RawFd, _token: u64) -> io::Result<()> {
            Ok(())
        }

        /// No write interest to arm: flushing rides the scan sweeps.
        pub fn set_writable(&self, _fd: RawFd, _token: u64, _writable: bool) -> io::Result<()> {
            Ok(())
        }

        /// Nothing registered, nothing to remove.
        pub fn deregister(&self, _fd: RawFd) {}

        /// Park until [`Poller::notify`] or `timeout`.
        pub fn wait(&self, timeout: Duration) -> io::Result<PollOutcome> {
            let mut pending = self.pending.lock().expect("poller wake lock");
            if !*pending {
                let (guard, _) = self
                    .cv
                    .wait_timeout(pending, timeout)
                    .expect("poller wake lock");
                pending = guard;
            }
            *pending = false;
            Ok(PollOutcome::ScanAll)
        }

        /// Interrupt a concurrent [`Poller::wait`].
        pub fn notify(&self) {
            let mut pending = self.pending.lock().expect("poller wake lock");
            *pending = true;
            self.cv.notify_one();
        }
    }
}

/// The raw-fd type [`Poller`] registers: the unix `RawFd` on unix, a
/// plain integer stand-in elsewhere (the fallback ignores it).
#[cfg(unix)]
pub type PollFd = std::os::unix::io::RawFd;
/// See the unix variant.
#[cfg(not(unix))]
pub type PollFd = i32;

/// Extract the pollable descriptor from a socket-like handle.
#[cfg(unix)]
pub fn poll_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> PollFd {
    t.as_raw_fd()
}

/// Non-unix stand-in: the fallback poller never dereferences it.
#[cfg(not(unix))]
pub fn poll_fd<T>(_t: &T) -> PollFd {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn notify_interrupts_a_long_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = {
            let poller = std::sync::Arc::clone(&poller);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                poller.notify();
            })
        };
        let start = Instant::now();
        poller.wait(Duration::from_secs(10)).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "notify must interrupt the wait"
        );
        waker.join().unwrap();
    }

    #[test]
    fn wait_times_out_quietly() {
        let poller = Poller::new().unwrap();
        let start = Instant::now();
        let outcome = poller.wait(Duration::from_millis(20)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(15));
        if let PollOutcome::Ready(events) = outcome {
            assert!(events.is_empty(), "timeout carries no events");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn socket_readiness_is_reported() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(poll_fd(&server_side), 7).unwrap();

        // Quiet socket: the wait times out with nothing.
        match poller.wait(Duration::from_millis(10)).unwrap() {
            PollOutcome::Ready(events) => assert!(events.is_empty()),
            PollOutcome::ScanAll => unreachable!("linux poller always reports events"),
        }

        // Bytes arrive: readable, correct token.
        client.write_all(b"hello").unwrap();
        client.flush().unwrap();
        match poller.wait(Duration::from_secs(5)).unwrap() {
            PollOutcome::Ready(events) => {
                assert!(
                    events.iter().any(|e| e.token == 7 && e.readable),
                    "got {events:?}"
                );
            }
            PollOutcome::ScanAll => unreachable!(),
        }

        // Write interest: a fresh socket is immediately writable.
        poller.set_writable(poll_fd(&server_side), 7, true).unwrap();
        match poller.wait(Duration::from_secs(5)).unwrap() {
            PollOutcome::Ready(events) => {
                assert!(events.iter().any(|e| e.token == 7 && e.writable));
            }
            PollOutcome::ScanAll => unreachable!(),
        }
        poller.deregister(poll_fd(&server_side));
    }
}
