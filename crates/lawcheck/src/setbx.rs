//! Ops-level checkers for the set-bx laws (§3.1), with generated states.

use std::fmt::Debug;

use esm_core::state::{PutToSet, SbxOps, SetToPut};

use crate::gen::Gen;
use crate::report::LawReport;

/// Check the set-bx laws for an ops-level bx over `n` generated
/// `(state, a, b)` triples.
///
/// Laws, as first-order equations (see `esm_core::state::SbxOps` docs for
/// the correspondence with the monadic formulation):
///
/// ```text
/// (GS) update_x(s, view_x(s)) == s
/// (SG) view_x(update_x(s, x)) == x
/// (SS) update_x(update_x(s, x), x') == update_x(s, x')   [if overwrite]
/// ```
#[allow(clippy::too_many_arguments)] // flat suite API: (bx, generators, sizes, seed, opts)
pub fn check_set_ops<S, A, B, T>(
    suite: &str,
    t: &T,
    gen_s: &Gen<S>,
    gen_a: &Gen<A>,
    gen_b: &Gen<B>,
    n: usize,
    seed: u64,
    overwrite: bool,
) -> LawReport
where
    S: Clone + PartialEq + Debug + 'static,
    A: Clone + PartialEq + Debug + 'static,
    B: Clone + PartialEq + Debug + 'static,
    T: SbxOps<S, A, B>,
{
    let mut report = LawReport::new(suite);
    let states = gen_s.samples(seed, n);
    let values_a = gen_a.samples(seed.wrapping_add(1), n);
    let values_a2 = gen_a.samples(seed.wrapping_add(2), n);
    let values_b = gen_b.samples(seed.wrapping_add(3), n);
    let values_b2 = gen_b.samples(seed.wrapping_add(4), n);

    for i in 0..n {
        let s = &states[i];

        // (GS) both sides.
        let ga = t.view_a(s);
        let s_after = t.update_a(s.clone(), ga.clone());
        report.check("(GS)A", s_after == *s, || {
            format!("update_a(s, view_a(s)) changed {s:?} into {s_after:?}")
        });
        let gb = t.view_b(s);
        let s_after = t.update_b(s.clone(), gb.clone());
        report.check("(GS)B", s_after == *s, || {
            format!("update_b(s, view_b(s)) changed {s:?} into {s_after:?}")
        });

        // (SG) both sides.
        let a = &values_a[i];
        let s2 = t.update_a(s.clone(), a.clone());
        let seen = t.view_a(&s2);
        report.check("(SG)A", seen == *a, || {
            format!("view_a(update_a({s:?}, {a:?})) = {seen:?}")
        });
        let b = &values_b[i];
        let s2 = t.update_b(s.clone(), b.clone());
        let seen = t.view_b(&s2);
        report.check("(SG)B", seen == *b, || {
            format!("view_b(update_b({s:?}, {b:?})) = {seen:?}")
        });

        // (SS) both sides.
        if overwrite {
            let a2 = &values_a2[i];
            let twice = t.update_a(t.update_a(s.clone(), a.clone()), a2.clone());
            let once = t.update_a(s.clone(), a2.clone());
            report.check("(SS)A", twice == once, || {
                format!("update_a²({s:?}, {a:?}, {a2:?}) = {twice:?} ≠ {once:?}")
            });
            let b2 = &values_b2[i];
            let twice = t.update_b(t.update_b(s.clone(), b.clone()), b2.clone());
            let once = t.update_b(s.clone(), b2.clone());
            report.check("(SS)B", twice == once, || {
                format!("update_b²({s:?}, {b:?}, {b2:?}) = {twice:?} ≠ {once:?}")
            });
        }
    }
    report
}

/// Lemma 3 at the ops level: `PutToSet(SetToPut(t))` must agree with `t`
/// pointwise on generated states and values.
pub fn check_roundtrip_ops<S, A, B, T>(
    t: &T,
    gen_s: &Gen<S>,
    gen_a: &Gen<A>,
    gen_b: &Gen<B>,
    n: usize,
    seed: u64,
) -> LawReport
where
    S: Clone + PartialEq + Debug + 'static,
    A: Clone + PartialEq + Debug + 'static,
    B: Clone + PartialEq + Debug + 'static,
    T: SbxOps<S, A, B> + Clone,
{
    let mut report = LawReport::new("pp2set ∘ set2pp = id (ops)");
    let rt = PutToSet(SetToPut(t.clone()));
    let states = gen_s.samples(seed, n);
    let values_a = gen_a.samples(seed.wrapping_add(1), n);
    let values_b = gen_b.samples(seed.wrapping_add(2), n);
    for i in 0..n {
        let s = &states[i];
        report.check("roundtrip view_a", rt.view_a(s) == t.view_a(s), || {
            format!("at {s:?}")
        });
        report.check("roundtrip view_b", rt.view_b(s) == t.view_b(s), || {
            format!("at {s:?}")
        });
        let a = values_a[i].clone();
        report.check(
            "roundtrip update_a",
            rt.update_a(s.clone(), a.clone()) == t.update_a(s.clone(), a.clone()),
            || format!("at {s:?} with {a:?}"),
        );
        let b = values_b[i].clone();
        report.check(
            "roundtrip update_b",
            rt.update_b(s.clone(), b.clone()) == t.update_b(s.clone(), b.clone()),
            || format!("at {s:?} with {b:?}"),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::int_range;
    use esm_core::state::{IdBx, ProductOps, WithHistory};

    #[test]
    fn identity_bx_is_overwriteable() {
        let g = int_range(-100..100);
        let r = check_set_ops("id", &IdBx::<i64>::new(), &g, &g, &g, 200, 11, true);
        r.assert_ok();
        assert_eq!(r.checked, 200 * 6);
    }

    #[test]
    fn product_bx_is_overwriteable() {
        let gs = int_range(-100..100).zip(&int_range(0..10));
        let ga = int_range(-100..100);
        let gb = int_range(0..10);
        let t: ProductOps<i64, i64> = ProductOps::new();
        check_set_ops("product", &t, &gs, &ga, &gb, 200, 12, true).assert_ok();
    }

    #[test]
    fn history_bx_passes_base_laws_but_fails_ss() {
        let t = WithHistory(IdBx::<i64>::new());
        let gs = int_range(-5..5).map(|s| (s, Vec::new()));
        let g = int_range(-5..5);
        // Base laws hold.
        check_set_ops("history base", &t, &gs, &g, &g, 100, 13, false).assert_ok();
        // (SS) fails — and the checker says which law.
        let r = check_set_ops("history ss", &t, &gs, &g, &g, 100, 13, true);
        assert!(!r.is_ok());
        assert!(r.failed_laws().iter().all(|l| l.starts_with("(SS)")));
    }

    #[test]
    fn roundtrip_is_identity_for_identity_bx() {
        let g = int_range(-50..50);
        check_roundtrip_ops(&IdBx::<i64>::new(), &g, &g, &g, 150, 14).assert_ok();
    }
}
