//! Seeded random generators with a small combinator library.
//!
//! Deterministic per seed, so every reported counterexample reproduces.

use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generator of `T` values driven by a seeded RNG.
pub struct Gen<T> {
    run: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a function of the RNG.
    pub fn from_fn(f: impl Fn(&mut StdRng) -> T + 'static) -> Gen<T> {
        Gen { run: Rc::new(f) }
    }

    /// Always generate `value`.
    pub fn constant(value: T) -> Gen<T>
    where
        T: Clone,
    {
        Gen::from_fn(move |_| value.clone())
    }

    /// Choose uniformly among `choices` (must be non-empty).
    pub fn one_of(choices: Vec<T>) -> Gen<T>
    where
        T: Clone,
    {
        assert!(!choices.is_empty(), "one_of needs at least one choice");
        Gen::from_fn(move |rng| choices[rng.gen_range(0..choices.len())].clone())
    }

    /// Generate one value.
    pub fn run(&self, rng: &mut StdRng) -> T {
        (self.run)(rng)
    }

    /// Generate `n` values from a fresh RNG seeded with `seed`.
    pub fn samples(&self, seed: u64, n: usize) -> Vec<T> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.run(&mut rng)).collect()
    }

    /// Map the generated value.
    pub fn map<U: 'static>(&self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let inner = self.clone();
        Gen::from_fn(move |rng| f(inner.run(rng)))
    }

    /// Pair with another generator.
    pub fn zip<U: 'static>(&self, other: &Gen<U>) -> Gen<(T, U)> {
        let a = self.clone();
        let b = other.clone();
        Gen::from_fn(move |rng| (a.run(rng), b.run(rng)))
    }

    /// A vector of values with length drawn from `len`.
    pub fn vec_of(&self, len: Range<usize>) -> Gen<Vec<T>> {
        let inner = self.clone();
        Gen::from_fn(move |rng| {
            let n = rng.gen_range(len.clone());
            (0..n).map(|_| inner.run(rng)).collect()
        })
    }
}

/// Integers in a range.
pub fn int_range(range: Range<i64>) -> Gen<i64> {
    Gen::from_fn(move |rng| rng.gen_range(range.clone()))
}

/// Short lowercase ASCII strings of length within `len`.
pub fn string(len: Range<usize>) -> Gen<String> {
    Gen::from_fn(move |rng| {
        let n = rng.gen_range(len.clone());
        (0..n).map(|_| rng.gen_range(b'a'..=b'z') as char).collect()
    })
}

/// Booleans.
pub fn boolean() -> Gen<bool> {
    Gen::from_fn(|rng| rng.gen())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic_per_seed() {
        let g = int_range(0..1000);
        assert_eq!(g.samples(1, 10), g.samples(1, 10));
        assert_ne!(g.samples(1, 10), g.samples(2, 10));
    }

    #[test]
    fn int_range_respects_bounds() {
        let g = int_range(-5..5);
        assert!(g.samples(3, 100).iter().all(|x| (-5..5).contains(x)));
    }

    #[test]
    fn string_generates_within_length() {
        let g = string(1..4);
        assert!(g
            .samples(4, 50)
            .iter()
            .all(|s| (1..4).contains(&s.len()) && s.bytes().all(|b| b.is_ascii_lowercase())));
    }

    #[test]
    fn combinators_compose() {
        let g = int_range(0..10).map(|x| x * 2).zip(&boolean());
        let out = g.samples(5, 20);
        assert!(out.iter().all(|(x, _)| x % 2 == 0));
    }

    #[test]
    fn vec_of_respects_length_range() {
        let g = int_range(0..3).vec_of(2..5);
        assert!(g.samples(6, 30).iter().all(|v| (2..5).contains(&v.len())));
    }

    #[test]
    fn one_of_picks_from_choices() {
        let g = Gen::one_of(vec!["a", "b"]);
        assert!(g.samples(7, 20).iter().all(|s| *s == "a" || *s == "b"));
    }
}
