//! The full monadic law suite: runs the paper-level observational checkers
//! of [`esm_core::monadic::laws`] against an ops-level bx through the
//! [`Monadic`]/[`MonadicPut`] adapters.
//!
//! This is the strongest check in the crate: it validates not only the
//! ops-level equations but also that the adapter embedding into the state
//! monad is faithful (the two views of the same bx agree observationally),
//! exactly the content of the paper's "asymmetric lenses via the state
//! monad" discussion.

use std::fmt::Debug;

use esm_core::monadic::laws::{
    check_put_bx, check_roundtrip_put, check_roundtrip_set, check_set_bx, LawOptions,
};
use esm_core::monadic::{Pp2Set, Set2Pp};
use esm_core::state::{Monadic, MonadicPut, PbxOps, SbxOps};
use esm_monad::{StateOf, Val};

use crate::gen::Gen;
use crate::report::LawReport;

/// Run the complete monadic set-bx law suite (laws, Lemma 1 translation,
/// Lemma 3 roundtrip) for an ops-level bx, observing on `n_states`
/// generated initial states and quantifying over `n_vals` generated
/// values.
#[allow(clippy::too_many_arguments)] // flat suite API: (bx, generators, sizes, seed, opts)
pub fn full_set_bx_suite<S, A, B, T>(
    suite: &str,
    t: T,
    gen_s: &Gen<S>,
    gen_a: &Gen<A>,
    gen_b: &Gen<B>,
    n_states: usize,
    n_vals: usize,
    seed: u64,
    overwrite: bool,
) -> LawReport
where
    S: Val + PartialEq + Debug,
    A: Val + PartialEq + Debug,
    B: Val + PartialEq + Debug,
    T: SbxOps<S, A, B> + Clone + 'static,
{
    let mut report = LawReport::new(suite);
    let ctx = gen_s.samples(seed, n_states);
    let samples_a = gen_a.samples(seed.wrapping_add(1), n_vals);
    let samples_b = gen_b.samples(seed.wrapping_add(2), n_vals);
    let opts = if overwrite {
        LawOptions::OVERWRITEABLE
    } else {
        LawOptions::BASE
    };

    let m = Monadic(t);

    for v in check_set_bx::<StateOf<S>, A, B, _>(&m, &samples_a, &samples_b, &ctx, opts) {
        report.fail(v.law, v.detail);
    }
    report.pass(); // count the suite run itself once per law family below
                   // Lemma 1: the translated put-bx satisfies the put-bx laws.
    let translated = Set2Pp(m.clone());
    for v in check_put_bx::<StateOf<S>, A, B, _>(&translated, &samples_a, &samples_b, &ctx, opts) {
        report.fail(v.law, v.detail);
    }
    report.pass();
    // Lemma 3: pp2set(set2pp(t)) ≈ t.
    for v in check_roundtrip_set::<StateOf<S>, A, B, _>(&m, &samples_a, &samples_b, &ctx) {
        report.fail(v.law, v.detail);
    }
    report.pass();

    report
}

/// Run the complete monadic put-bx law suite (laws, Lemma 2 translation,
/// Lemma 3 roundtrip) for an ops-level put-bx.
#[allow(clippy::too_many_arguments)] // flat suite API: (bx, generators, sizes, seed, opts)
pub fn full_put_bx_suite<S, A, B, T>(
    suite: &str,
    t: T,
    gen_s: &Gen<S>,
    gen_a: &Gen<A>,
    gen_b: &Gen<B>,
    n_states: usize,
    n_vals: usize,
    seed: u64,
    overwrite: bool,
) -> LawReport
where
    S: Val + PartialEq + Debug,
    A: Val + PartialEq + Debug,
    B: Val + PartialEq + Debug,
    T: PbxOps<S, A, B> + Clone + 'static,
{
    let mut report = LawReport::new(suite);
    let ctx = gen_s.samples(seed, n_states);
    let samples_a = gen_a.samples(seed.wrapping_add(1), n_vals);
    let samples_b = gen_b.samples(seed.wrapping_add(2), n_vals);
    let opts = if overwrite {
        LawOptions::OVERWRITEABLE
    } else {
        LawOptions::BASE
    };

    let m = MonadicPut(t);

    for v in check_put_bx::<StateOf<S>, A, B, _>(&m, &samples_a, &samples_b, &ctx, opts) {
        report.fail(v.law, v.detail);
    }
    report.pass();
    // Lemma 2: the translated set-bx satisfies the set-bx laws.
    let translated = Pp2Set(m.clone());
    for v in check_set_bx::<StateOf<S>, A, B, _>(&translated, &samples_a, &samples_b, &ctx, opts) {
        report.fail(v.law, v.detail);
    }
    report.pass();
    // Lemma 3: set2pp(pp2set(u)) ≈ u.
    for v in check_roundtrip_put::<StateOf<S>, A, B, _>(&m, &samples_a, &samples_b, &ctx) {
        report.fail(v.law, v.detail);
    }
    report.pass();

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::int_range;
    use esm_core::state::{IdBx, ProductOps, SetToPut};

    #[test]
    fn identity_bx_passes_the_full_monadic_suite() {
        let g = int_range(-50..50);
        full_set_bx_suite(
            "id (monadic)",
            IdBx::<i64>::new(),
            &g,
            &g,
            &g,
            10,
            5,
            31,
            true,
        )
        .assert_ok();
    }

    #[test]
    fn product_bx_passes_the_full_monadic_suite() {
        let gs = int_range(-50..50).zip(&int_range(0..9));
        let ga = int_range(-50..50);
        let gb = int_range(0..9);
        let t: ProductOps<i64, i64> = ProductOps::new();
        full_set_bx_suite("product (monadic)", t, &gs, &ga, &gb, 10, 5, 32, true).assert_ok();
    }

    #[test]
    fn translated_identity_passes_the_put_suite() {
        let g = int_range(-50..50);
        full_put_bx_suite(
            "set2pp(id) (monadic)",
            SetToPut(IdBx::<i64>::new()),
            &g,
            &g,
            &g,
            10,
            5,
            33,
            true,
        )
        .assert_ok();
    }
}
