//! [`LawReport`]: an aggregated result of running a law suite.

/// The outcome of checking one family of laws: how many cases were
/// examined and which failed.
#[derive(Debug, Clone, Default)]
pub struct LawReport {
    /// The law family, e.g. `"set-bx (ops)"`.
    pub suite: String,
    /// Number of individual equations checked.
    pub checked: usize,
    /// Counterexamples, as `(law, detail)` pairs.
    pub failures: Vec<(String, String)>,
}

impl LawReport {
    /// An empty report for a named suite.
    pub fn new(suite: impl Into<String>) -> LawReport {
        LawReport {
            suite: suite.into(),
            checked: 0,
            failures: Vec::new(),
        }
    }

    /// Record a successful check.
    pub fn pass(&mut self) {
        self.checked += 1;
    }

    /// Record a failed check with its counterexample.
    pub fn fail(&mut self, law: impl Into<String>, detail: impl Into<String>) {
        self.checked += 1;
        self.failures.push((law.into(), detail.into()));
    }

    /// Record the outcome of a boolean check.
    pub fn check(&mut self, law: &str, ok: bool, detail: impl FnOnce() -> String) {
        if ok {
            self.pass();
        } else {
            self.fail(law, detail());
        }
    }

    /// Did every check pass?
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: LawReport) {
        self.checked += other.checked;
        self.failures.extend(other.failures);
    }

    /// Panic with a readable summary if any check failed (for use in
    /// tests).
    pub fn assert_ok(&self) {
        assert!(self.is_ok(), "{self}");
    }

    /// The distinct law names that failed.
    pub fn failed_laws(&self) -> Vec<&str> {
        let mut laws: Vec<&str> = self.failures.iter().map(|(l, _)| l.as_str()).collect();
        laws.sort_unstable();
        laws.dedup();
        laws
    }
}

impl std::fmt::Display for LawReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "law suite {}: {}/{} checks passed",
            self.suite,
            self.checked - self.failures.len(),
            self.checked
        )?;
        for (law, detail) in self.failures.iter().take(5) {
            writeln!(f, "  FAIL {law}: {detail}")?;
        }
        if self.failures.len() > 5 {
            writeln!(f, "  … and {} more failures", self.failures.len() - 5)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_passes_and_failures() {
        let mut r = LawReport::new("demo");
        r.pass();
        r.fail("(SG)", "bad");
        assert_eq!(r.checked, 2);
        assert!(!r.is_ok());
        assert_eq!(r.failed_laws(), vec!["(SG)"]);
    }

    #[test]
    fn check_records_lazily() {
        let mut r = LawReport::new("demo");
        r.check("(GS)", true, || unreachable!("detail not built on success"));
        r.check("(GS)", false, || "boom".to_string());
        assert_eq!(r.failures.len(), 1);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LawReport::new("a");
        a.pass();
        let mut b = LawReport::new("b");
        b.fail("(PP)", "x");
        a.merge(b);
        assert_eq!(a.checked, 2);
        assert_eq!(a.failures.len(), 1);
    }

    #[test]
    #[should_panic(expected = "law suite demo")]
    fn assert_ok_panics_with_summary() {
        let mut r = LawReport::new("demo");
        r.fail("(SS)", "detail");
        r.assert_ok();
    }

    #[test]
    fn display_truncates_long_failure_lists() {
        let mut r = LawReport::new("big");
        for i in 0..8 {
            r.fail("(SG)", format!("case {i}"));
        }
        let text = r.to_string();
        assert!(text.contains("… and 3 more failures"));
    }
}
