//! Executable law checking for entangled state monads.
//!
//! The paper's lemmas are universally-quantified equations. This crate
//! turns each law family into a *checker*: a function that samples the
//! quantified variables with seeded generators ([`gen::Gen`]) and reports
//! every violation with a counterexample ([`report::LawReport`]).
//!
//! Three layers of checking, from cheap to thorough:
//!
//! 1. **Ops-level** ([`setbx`], [`putbx`]): the laws as first-order
//!    equations on `SbxOps`/`PbxOps` (the state-monad specialisation).
//! 2. **Monadic** (via [`esm_core::monadic::laws`]): the laws as
//!    observational equalities of computations — re-exported here through
//!    [`monadic_suite`], which runs them through the `Monadic` adapters so
//!    the two views are checked against each other.
//! 3. **Equivalence** ([`setbx::check_roundtrip_ops`]): Lemma 3 as a
//!    pointwise identity between a bx and its double translation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gen;
pub mod monadic_suite;
pub mod putbx;
pub mod report;
pub mod setbx;

pub use gen::Gen;
pub use report::LawReport;
