//! Ops-level checkers for the put-bx laws (§3.2), with generated states.

use std::fmt::Debug;

use esm_core::state::PbxOps;

use crate::gen::Gen;
use crate::report::LawReport;

/// Check the put-bx laws for an ops-level put-bx over `n` generated
/// `(state, a, b)` triples.
///
/// Laws, as first-order equations (see `esm_core::state::PbxOps` docs):
///
/// ```text
/// (GP)  put_x(s, view_x(s)) == (s, view_other(s))
/// (PG1) view_x(put_x(s, x).0) == x
/// (PG2) put_x(s, x).1 == view_other(put_x(s, x).0)
/// (PP)  put_x(put_x(s, x).0, x') == put_x(s, x')      [if overwrite]
/// ```
#[allow(clippy::too_many_arguments)] // flat suite API: (bx, generators, sizes, seed, opts)
pub fn check_put_ops<S, A, B, T>(
    suite: &str,
    t: &T,
    gen_s: &Gen<S>,
    gen_a: &Gen<A>,
    gen_b: &Gen<B>,
    n: usize,
    seed: u64,
    overwrite: bool,
) -> LawReport
where
    S: Clone + PartialEq + Debug + 'static,
    A: Clone + PartialEq + Debug + 'static,
    B: Clone + PartialEq + Debug + 'static,
    T: PbxOps<S, A, B>,
{
    let mut report = LawReport::new(suite);
    let states = gen_s.samples(seed, n);
    let values_a = gen_a.samples(seed.wrapping_add(1), n);
    let values_a2 = gen_a.samples(seed.wrapping_add(2), n);
    let values_b = gen_b.samples(seed.wrapping_add(3), n);
    let values_b2 = gen_b.samples(seed.wrapping_add(4), n);

    for i in 0..n {
        let s = &states[i];

        // (GP): putting back the current view is a no-op that reports the
        // other side.
        let (s2, b) = t.put_a(s.clone(), t.view_a(s));
        report.check("(GP)A", s2 == *s && b == t.view_b(s), || {
            format!("put_a(s, view_a(s)) = ({s2:?}, {b:?}) from {s:?}")
        });
        let (s2, a) = t.put_b(s.clone(), t.view_b(s));
        report.check("(GP)B", s2 == *s && a == t.view_a(s), || {
            format!("put_b(s, view_b(s)) = ({s2:?}, {a:?}) from {s:?}")
        });

        // (PG1): the written side reads back.
        let a = &values_a[i];
        let (s2, _) = t.put_a(s.clone(), a.clone());
        let seen = t.view_a(&s2);
        report.check("(PG1)A", seen == *a, || {
            format!("view_a(put_a({s:?}, {a:?}).0) = {seen:?}")
        });
        let b = &values_b[i];
        let (s2, _) = t.put_b(s.clone(), b.clone());
        let seen = t.view_b(&s2);
        report.check("(PG1)B", seen == *b, || {
            format!("view_b(put_b({s:?}, {b:?}).0) = {seen:?}")
        });

        // (PG2): the reported value is the other side's refreshed view.
        let (s2, b_reported) = t.put_a(s.clone(), a.clone());
        let b_actual = t.view_b(&s2);
        report.check("(PG2)A", b_reported == b_actual, || {
            format!("put_a reported {b_reported:?} but view_b gives {b_actual:?}")
        });
        let (s2, a_reported) = t.put_b(s.clone(), b.clone());
        let a_actual = t.view_a(&s2);
        report.check("(PG2)B", a_reported == a_actual, || {
            format!("put_b reported {a_reported:?} but view_a gives {a_actual:?}")
        });

        // (PP).
        if overwrite {
            let a2 = &values_a2[i];
            let twice = t.put_a(t.put_a(s.clone(), a.clone()).0, a2.clone());
            let once = t.put_a(s.clone(), a2.clone());
            report.check("(PP)A", twice == once, || {
                format!("put_a²({s:?}, {a:?}, {a2:?}) = {twice:?} ≠ {once:?}")
            });
            let b2 = &values_b2[i];
            let twice = t.put_b(t.put_b(s.clone(), b.clone()).0, b2.clone());
            let once = t.put_b(s.clone(), b2.clone());
            report.check("(PP)B", twice == once, || {
                format!("put_b²({s:?}, {b:?}, {b2:?}) = {twice:?} ≠ {once:?}")
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::int_range;
    use esm_core::state::{IdBx, SetToPut};

    #[test]
    fn set_to_put_of_identity_is_a_lawful_put_bx() {
        // Lemma 1 at the ops level: set2pp of a lawful set-bx passes the
        // put-bx laws.
        let t = SetToPut(IdBx::<i64>::new());
        let g = int_range(-100..100);
        check_put_ops("set2pp(id)", &t, &g, &g, &g, 200, 21, true).assert_ok();
    }

    #[test]
    fn broken_put_is_caught() {
        /// A put-bx whose put_a reports a stale B.
        #[derive(Clone)]
        struct Stale;
        impl PbxOps<(i64, i64), i64, i64> for Stale {
            fn view_a(&self, s: &(i64, i64)) -> i64 {
                s.0
            }
            fn view_b(&self, s: &(i64, i64)) -> i64 {
                s.1
            }
            fn put_a(&self, s: (i64, i64), a: i64) -> ((i64, i64), i64) {
                let old_b = s.1;
                ((a, a), old_b) // state says b = a, but reports old b
            }
            fn put_b(&self, s: (i64, i64), b: i64) -> ((i64, i64), i64) {
                let _ = s;
                ((b, b), b)
            }
        }
        let gs = int_range(0..5).map(|x| (x, x));
        let g = int_range(0..5);
        let r = check_put_ops("stale", &Stale, &gs, &g, &g, 50, 22, false);
        assert!(!r.is_ok());
        assert!(r.failed_laws().contains(&"(PG2)A"));
    }
}
