//! Property-based lens-law tests for the combinator library and tree
//! lenses under generated data (deeper domains than the in-module tests).

use proptest::prelude::*;

use esm_lens::combinators::{cond, fst, id, iso, map_vec, pair, snd};
use esm_lens::tree::{child, fork, hoist, map_children, plunge, rename_edge, Tree};
use esm_lens::Lens;

// ---------------------------------------------------------------------
// Generated trees: two levels deep, fixed edge alphabet, so lens domains
// are respected by construction.
// ---------------------------------------------------------------------

fn arb_leafy(edges: &'static [&'static str]) -> impl Strategy<Value = Tree> {
    proptest::collection::vec("[a-z]{1,4}", edges.len()..=edges.len()).prop_map(move |vals| {
        Tree::node(
            edges
                .iter()
                .zip(vals)
                .map(|(e, v)| (e.to_string(), Tree::value(v)))
                .collect::<Vec<_>>(),
        )
    })
}

fn arb_nested() -> impl Strategy<Value = Tree> {
    (arb_leafy(&["city", "zip"]), arb_leafy(&["name", "age"]))
        .prop_map(|(addr, person)| person.with_child("address", addr))
}

proptest! {
    #[test]
    fn nested_child_pipeline_laws(s in arb_nested(), v in "[a-z]{1,4}") {
        let l = child("address").then(child("city"));
        // (GetPut)
        prop_assert_eq!(l.put(s.clone(), l.get(&s)), s.clone());
        // (PutGet)
        let view = Tree::value(v);
        prop_assert_eq!(l.get(&l.put(s.clone(), view.clone())), view.clone());
        // (PutPut)
        let w = Tree::value("zz");
        prop_assert_eq!(
            l.put(l.put(s.clone(), w), view.clone()),
            l.put(s, view)
        );
    }

    #[test]
    fn plunge_then_hoist_is_identity(s in arb_nested()) {
        let l = plunge("wrap").then(hoist("wrap"));
        prop_assert_eq!(l.get(&s), s.clone());
        prop_assert_eq!(l.put(Tree::leaf(), s.clone()), s);
    }

    #[test]
    fn fork_residue_is_disjoint_from_view(s in arb_nested()) {
        let l = fork(|n| n.starts_with('a'));
        let view = l.get(&s);
        // Everything in the view matches; write-back restores the rest.
        prop_assert!(view.names().iter().all(|n| n.starts_with('a')));
        prop_assert_eq!(l.put(s.clone(), view), s);
    }

    #[test]
    fn rename_edge_roundtrip(s in arb_leafy(&["age", "name"]), v in "[a-z]{1,4}") {
        let l = rename_edge("age", "years");
        let view = l.get(&s).with_child("years", Tree::value(v));
        let s2 = l.put(s, view.clone());
        prop_assert_eq!(l.get(&s2), view);
    }

    #[test]
    fn map_children_get_put(s in arb_nested()) {
        // View every child through fork("c*"): lawful per-child, so
        // (GetPut) lifts.
        let l = map_children(fork(|n| n.starts_with('c')));
        prop_assert_eq!(l.put(s.clone(), l.get(&s)), s);
    }
}

// ---------------------------------------------------------------------
// Combinators over generated scalar data.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn iso_then_inverse_is_id(x in any::<i32>(), v in any::<i32>()) {
        let enc: Lens<i32, i64> = iso(|s: &i32| *s as i64 * 2, |t: i64| (t / 2) as i32);
        let dec: Lens<i64, i32> = iso(|s: &i64| (*s / 2) as i32, |t: i32| t as i64 * 2);
        let both = enc.then(dec);
        let plain = id::<i32>();
        prop_assert_eq!(both.get(&x), plain.get(&x));
        prop_assert_eq!(both.put(x, v), plain.put(x, v));
    }

    #[test]
    fn pair_laws_under_random_data(
        s in ((any::<i16>(), any::<i16>()), (any::<i16>(), any::<i16>())),
        v in (any::<i16>(), any::<i16>()),
        v2 in (any::<i16>(), any::<i16>()),
    ) {
        let l = pair(fst::<i16, i16>(), snd::<i16, i16>());
        prop_assert_eq!(l.put(s, l.get(&s)), s);
        prop_assert_eq!(l.get(&l.put(s, v)), v);
        prop_assert_eq!(l.put(l.put(s, v), v2), l.put(s, v2));
    }

    #[test]
    fn map_vec_laws_with_consistent_create(
        ss in proptest::collection::vec((any::<i16>(), any::<i16>()), 0..6),
        vs in proptest::collection::vec(any::<i16>(), 0..6),
    ) {
        let l = map_vec(fst::<i16, i16>(), |v| (*v, 0));
        // (GetPut)
        prop_assert_eq!(l.put(ss.clone(), l.get(&ss)), ss.clone());
        // (PutGet)
        prop_assert_eq!(l.get(&l.put(ss, vs.clone())), vs);
    }

    #[test]
    fn cond_laws_with_stable_branches(s in (any::<bool>(), any::<i16>()), v in any::<i16>()) {
        let t: Lens<(bool, i16), i16> = Lens::new(|s: &(bool, i16)| s.1, |mut s, v| { s.1 = v; s });
        let f: Lens<(bool, i16), i16> = Lens::new(
            |s: &(bool, i16)| s.1.wrapping_neg(),
            |mut s, v| { s.1 = v.wrapping_neg(); s },
        );
        let l = cond(|s: &(bool, i16)| s.0, t, f);
        prop_assert_eq!(l.put(s, l.get(&s)), s);
        prop_assert_eq!(l.get(&l.put(s, v)), v);
    }
}
