//! A combinator library for building well-behaved lenses compositionally.
//!
//! Every combinator documents the side conditions (if any) under which it
//! preserves the lens laws, and the test suite checks each one — including
//! the failure modes when side conditions are broken.

use std::sync::Arc;

use crate::lens::Lens;

/// The identity lens `S ⇄ S` — the paper's special case `l = id`, which
/// recovers the ordinary state monad structure on `S`. Very well-behaved.
pub fn id<S: Clone + 'static>() -> Lens<S, S> {
    Lens::new(|s: &S| s.clone(), |_, v| v)
}

/// A lens from an isomorphism `S ≅ V`. Very well-behaved iff `fwd`/`bwd`
/// are mutually inverse.
pub fn iso<S, V>(
    fwd: impl Fn(&S) -> V + Send + Sync + 'static,
    bwd: impl Fn(V) -> S + Send + Sync + 'static,
) -> Lens<S, V>
where
    S: 'static,
    V: 'static,
{
    Lens::new(fwd, move |_, v| bwd(v))
}

/// Focus on the first component of a pair. Very well-behaved.
pub fn fst<A: Clone + 'static, B: Clone + 'static>() -> Lens<(A, B), A> {
    Lens::new(|s: &(A, B)| s.0.clone(), |s, v| (v, s.1))
}

/// Focus on the second component of a pair. Very well-behaved.
pub fn snd<A: Clone + 'static, B: Clone + 'static>() -> Lens<(A, B), B> {
    Lens::new(|s: &(A, B)| s.1.clone(), |s, v| (s.0, v))
}

/// The unit lens `S ⇄ ()`: the view carries no information and `put` is the
/// identity. Very well-behaved (and the terminal object of the lens
/// category).
pub fn unit<S: 'static>() -> Lens<S, ()> {
    Lens::new(|_| (), |s, ()| s)
}

/// Pair two lenses side by side: `(S1, S2) ⇄ (V1, V2)`. Preserves (very)
/// well-behavedness.
pub fn pair<S1, S2, V1, V2>(l1: Lens<S1, V1>, l2: Lens<S2, V2>) -> Lens<(S1, S2), (V1, V2)>
where
    S1: 'static,
    S2: 'static,
    V1: 'static,
    V2: 'static,
{
    let l1g = l1.clone();
    let l2g = l2.clone();
    Lens::new(
        move |s: &(S1, S2)| (l1g.get(&s.0), l2g.get(&s.1)),
        move |s: (S1, S2), v: (V1, V2)| (l1.put(s.0, v.0), l2.put(s.1, v.1)),
    )
}

/// Map a lens over a vector, pointwise: `Vec<S> ⇄ Vec<V>`.
///
/// When the new view is longer than the source, fresh sources are created
/// with `create`; when shorter, excess sources are dropped.
///
/// Law status: (GetPut) always holds; (PutGet) holds iff
/// `get(create(v)) == v` for every view `v` (the *create-consistency* side
/// condition); (PutPut) is inherited from the element lens when lengths
/// are stable, but fails across length changes that drop-then-recreate
/// sources whose hidden parts differ. The tests exhibit both sides.
pub fn map_vec<S, V>(
    l: Lens<S, V>,
    create: impl Fn(&V) -> S + Send + Sync + 'static,
) -> Lens<Vec<S>, Vec<V>>
where
    S: Clone + 'static,
    V: Clone + 'static,
{
    let lg = l.clone();
    let create = Arc::new(create);
    Lens::new(
        move |ss: &Vec<S>| ss.iter().map(|s| lg.get(s)).collect(),
        move |ss: Vec<S>, vs: Vec<V>| {
            let mut out = Vec::with_capacity(vs.len());
            let mut iter = ss.into_iter();
            for v in vs {
                match iter.next() {
                    Some(s) => out.push(l.put(s, v)),
                    None => out.push(create(&v)),
                }
            }
            out
        },
    )
}

/// Guarded choice: view through `when_true` on sources satisfying `cond`,
/// else through `when_false`.
///
/// Law status: well-behaved iff each branch is and `put` never moves a
/// source across the condition boundary (`cond(put(s, v)) == cond(s)`); the
/// branch-stability side condition is the caller's obligation, and the
/// tests show a violation when it is broken.
pub fn cond<S, V>(
    pred: impl Fn(&S) -> bool + Send + Sync + 'static,
    when_true: Lens<S, V>,
    when_false: Lens<S, V>,
) -> Lens<S, V>
where
    S: 'static,
    V: 'static,
{
    let pred = Arc::new(pred);
    let pred2 = Arc::clone(&pred);
    let tg = when_true.clone();
    let fg = when_false.clone();
    Lens::new(
        move |s: &S| if pred(s) { tg.get(s) } else { fg.get(s) },
        move |s: S, v: V| {
            if pred2(&s) {
                when_true.put(s, v)
            } else {
                when_false.put(s, v)
            }
        },
    )
}

/// Build a field lens for one named field of a struct, e.g.
/// `field_lens!(Person, age: u32)`.
///
/// Requires the struct to be `Clone` and the field `Clone`. The result is
/// very well-behaved by construction.
#[macro_export]
macro_rules! field_lens {
    ($ty:ty, $field:ident : $vty:ty) => {
        $crate::Lens::<$ty, $vty>::new(
            |s: &$ty| s.$field.clone(),
            |mut s: $ty, v: $vty| {
                s.$field = v;
                s
            },
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{check_put_get, check_put_put, check_very_well_behaved, check_well_behaved};

    #[test]
    fn id_is_very_well_behaved() {
        let l = id::<i32>();
        assert!(check_very_well_behaved(&l, &[1, 2, -3], &[4, 5]).is_empty());
    }

    #[test]
    fn iso_lens_roundtrips() {
        let l = iso(|s: &i64| s.to_string(), |v: String| v.parse().unwrap());
        let sources = [0i64, 42, -7];
        let views: Vec<String> = vec!["5".into(), "-12".into()];
        assert!(check_very_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn fst_snd_focus_components() {
        let sources = [(1, "a"), (2, "b")];
        let views = [10, 20];
        assert!(check_very_well_behaved(&fst::<i32, &str>(), &sources, &views).is_empty());
        let views_b = ["x", "y"];
        assert!(check_very_well_behaved(&snd::<i32, &str>(), &sources, &views_b).is_empty());
    }

    #[test]
    fn unit_lens_forgets_everything_lawfully() {
        let l = unit::<String>();
        let sources = ["p".to_string(), "q".to_string()];
        assert!(check_very_well_behaved(&l, &sources, &[()]).is_empty());
    }

    #[test]
    fn pair_is_componentwise() {
        let l = pair(fst::<i32, i32>(), snd::<i32, i32>());
        let s = ((1, 2), (3, 4));
        assert_eq!(l.get(&s), (1, 4));
        assert_eq!(l.put(s, (9, 8)), ((9, 2), (3, 8)));
    }

    #[test]
    fn pair_preserves_laws() {
        let l = pair(fst::<i32, i32>(), snd::<i32, i32>());
        let sources = [((1, 2), (3, 4)), ((0, 0), (0, 0))];
        let views = [(5, 6), (7, 8)];
        assert!(check_very_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn map_vec_puts_pointwise_and_resizes() {
        let l = map_vec(fst::<i32, i32>(), |v| (*v, 0));
        let ss = vec![(1, 10), (2, 20)];
        assert_eq!(l.get(&ss), vec![1, 2]);
        // Shrink: drops the tail source.
        assert_eq!(l.put(ss.clone(), vec![9]), vec![(9, 10)]);
        // Grow: creates with the default hidden part.
        assert_eq!(l.put(ss, vec![1, 2, 3]), vec![(1, 10), (2, 20), (3, 0)]);
    }

    #[test]
    fn map_vec_well_behaved_with_consistent_create() {
        let l = map_vec(fst::<i32, i32>(), |v| (*v, 0));
        let sources = vec![vec![(1, 10)], vec![(2, 20), (3, 30)], vec![]];
        let views = vec![vec![5], vec![6, 7], vec![]];
        assert!(check_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn map_vec_put_get_fails_with_inconsistent_create() {
        // create ignores the view: (PutGet) breaks on growth.
        let l = map_vec(fst::<i32, i32>(), |_| (0, 0));
        let violations = check_put_get(&l, &[vec![]], &[vec![42]]);
        assert!(!violations.is_empty());
    }

    #[test]
    fn map_vec_put_put_fails_across_resizes() {
        // Shrinking then growing re-creates a source and loses its hidden
        // part: (PutPut) fails even though the element lens is VWB.
        let l = map_vec(fst::<i32, i32>(), |v| (*v, 0));
        let violations = check_put_put(&l, &[vec![(1, 99)]], &[vec![], vec![5]]);
        assert!(!violations.is_empty());
    }

    #[test]
    fn cond_switches_branches_lawfully_when_stable() {
        // Sources: (flag, payload); the branch depends only on the flag,
        // which neither branch's put modifies -> stable.
        let t: Lens<(bool, i32), i32> = Lens::new(
            |s: &(bool, i32)| s.1,
            |mut s, v| {
                s.1 = v;
                s
            },
        );
        let f: Lens<(bool, i32), i32> = Lens::new(
            |s: &(bool, i32)| -s.1,
            |mut s, v| {
                s.1 = -v;
                s
            },
        );
        let l = cond(|s: &(bool, i32)| s.0, t, f);
        let sources = [(true, 5), (false, 5)];
        let views = [1, -2];
        assert!(check_well_behaved(&l, &sources, &views).is_empty());
        assert_eq!(l.get(&(false, 5)), -5);
    }

    #[test]
    fn cond_breaks_when_put_crosses_the_boundary() {
        // The true-branch put flips the flag: branch instability breaks
        // (PutGet).
        let t: Lens<(bool, i32), i32> = Lens::new(|s: &(bool, i32)| s.1, |_s, v| (false, v));
        let f: Lens<(bool, i32), i32> = Lens::new(|s: &(bool, i32)| -s.1, |s, v| (s.0, -v));
        let l = cond(|s: &(bool, i32)| s.0, t, f);
        let violations = check_put_get(&l, &[(true, 5)], &[7]);
        assert!(!violations.is_empty());
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Person {
        name: String,
        age: u32,
    }

    #[test]
    fn field_lens_macro_builds_vwb_lenses() {
        let l = field_lens!(Person, age: u32);
        let p = Person {
            name: "ada".into(),
            age: 36,
        };
        assert_eq!(l.get(&p), 36);
        let p2 = l.put(p.clone(), 37);
        assert_eq!(p2.age, 37);
        assert_eq!(p2.name, "ada");
        assert!(check_very_well_behaved(&l, &[p], &[1, 2]).is_empty());
    }

    #[test]
    fn composition_preserves_vwb() {
        // (pair) ∘ (fst): S = ((i32, i32), i32) focusing the inner fst.
        let outer = fst::<(i32, i32), i32>();
        let inner = fst::<i32, i32>();
        let l = outer.then(inner);
        let sources = [((1, 2), 3), ((0, 0), 9)];
        let views = [5, 6];
        assert!(check_very_well_behaved(&l, &sources, &views).is_empty());
    }
}
