//! The [`Lens`] type: classic asymmetric get/put lenses.

use std::sync::Arc;

/// An asymmetric lens `S ⇄ V`: a total `get : S -> V` and
/// `put : S -> V -> S` (written here `put(s, v)`).
///
/// Laws (checked by [`crate::laws`], never assumed):
///
/// ```text
/// (GetPut) put(s, get(s)) == s            -- well-behaved, half 1
/// (PutGet) get(put(s, v)) == v            -- well-behaved, half 2
/// (PutPut) put(put(s, v), v') == put(s, v')   -- very well-behaved
/// ```
///
/// Operations are stored behind `Arc` (and must be `Send + Sync`), so
/// lenses clone cheaply, compose without copying captured data, and can be
/// shared across threads — a concurrent engine serves many clients one
/// compiled view pipeline.
pub struct Lens<S, V> {
    get: Arc<dyn Fn(&S) -> V + Send + Sync>,
    put: Arc<dyn Fn(S, V) -> S + Send + Sync>,
}

impl<S, V> Clone for Lens<S, V> {
    fn clone(&self) -> Self {
        Lens {
            get: Arc::clone(&self.get),
            put: Arc::clone(&self.put),
        }
    }
}

impl<S, V> std::fmt::Debug for Lens<S, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Lens(<get/put>)")
    }
}

impl<S: 'static, V: 'static> Lens<S, V> {
    /// Build a lens from its two components.
    pub fn new(
        get: impl Fn(&S) -> V + Send + Sync + 'static,
        put: impl Fn(S, V) -> S + Send + Sync + 'static,
    ) -> Self {
        Lens {
            get: Arc::new(get),
            put: Arc::new(put),
        }
    }

    /// Extract the view from a source.
    pub fn get(&self, s: &S) -> V {
        (self.get)(s)
    }

    /// Push an updated view back into a source.
    pub fn put(&self, s: S, v: V) -> S {
        (self.put)(s, v)
    }

    /// Sequential composition: focus first through `self`, then through
    /// `inner`. The classic lens-composition `put` threads the intermediate
    /// view: `put(s, w) = self.put(s, inner.put(self.get(s), w))`.
    ///
    /// Composition preserves well-behavedness and very-well-behavedness
    /// (checked in the combinator test suites).
    pub fn then<W: 'static>(&self, inner: Lens<V, W>) -> Lens<S, W> {
        let outer = self.clone();
        let outer2 = self.clone();
        let inner2 = inner.clone();
        Lens::new(
            move |s: &S| inner.get(&outer.get(s)),
            move |s: S, w: W| {
                let v = outer2.get(&s);
                let v2 = inner2.put(v, w);
                outer2.put(s, v2)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lens from a (name, age) pair onto the age.
    fn age_lens() -> Lens<(String, u32), u32> {
        Lens::new(
            |s: &(String, u32)| s.1,
            |mut s, v| {
                s.1 = v;
                s
            },
        )
    }

    #[test]
    fn get_extracts_the_view() {
        let l = age_lens();
        assert_eq!(l.get(&("ada".into(), 36)), 36);
    }

    #[test]
    fn put_updates_only_the_view() {
        let l = age_lens();
        let s = l.put(("ada".into(), 36), 37);
        assert_eq!(s, ("ada".to_string(), 37));
    }

    #[test]
    fn clones_share_behaviour() {
        let l = age_lens();
        let c = l.clone();
        let s = ("b".to_string(), 1);
        assert_eq!(l.get(&s), c.get(&s));
    }

    #[test]
    fn composition_threads_the_middle_view() {
        // (name, (age, score)) -> (age, score) -> score
        let pair: Lens<(String, (u32, u32)), (u32, u32)> = Lens::new(
            |s: &(String, (u32, u32))| s.1,
            |mut s, v| {
                s.1 = v;
                s
            },
        );
        let second: Lens<(u32, u32), u32> = Lens::new(
            |s: &(u32, u32)| s.1,
            |mut s, v| {
                s.1 = v;
                s
            },
        );
        let both = pair.then(second);
        let s = ("c".to_string(), (10, 20));
        assert_eq!(both.get(&s), 20);
        assert_eq!(both.put(s, 99), ("c".to_string(), (10, 99)));
    }
}
