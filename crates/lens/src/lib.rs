//! Asymmetric lenses (Foster et al.) and their embedding as entangled
//! state monads (Lemma 4 of the paper).
//!
//! An asymmetric lens `l : S ⇄ V` is a pair of functions
//! `get : S -> V` and `put : S -> V -> S` maintaining a view `V` of a
//! source `S`. The paper shows (§2, §4):
//!
//! * any lens induces a state monad structure *on the view type* inside
//!   `M_S` — `getl = \s -> (l.get s, s)`, `setl v = \s -> ((), l.put s v)`;
//! * the identity lens induces the ordinary state monad structure on `S`;
//! * the two structures share the same underlying state — they are
//!   **entangled** — and together they make `M_S` a set-bx between `S` and
//!   `V` (Lemma 4): well-behaved lenses give lawful set-bx, very
//!   well-behaved lenses give overwriteable ones.
//!
//! This crate provides the lens type itself ([`Lens`]), the classical law
//! checkers ([`laws`]), a combinator library ([`combinators`]), Focal-style
//! edge-labelled tree lenses ([`tree`]), and the Lemma 4 construction
//! ([`AsymBx`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod combinators;
pub mod delta;
pub mod laws;
pub mod lens;
pub mod to_bx;
pub mod tree;

pub use delta::{DeltaLens, DeltaOutcome};
pub use lens::Lens;
pub use to_bx::AsymBx;
pub use tree::Tree;
