//! Delta propagation through lenses: the incremental complement of
//! `get`.
//!
//! A lens's `get` recomputes the whole view from the whole source; a
//! [`DeltaLens`] additionally knows how to map a *change* to the source
//! into the corresponding change to the view (`get_delta`), so a
//! materialized view can be maintained from committed deltas in
//! O(change) instead of re-running `get` in O(source). The incremental
//! contract is an equation against the forward direction:
//!
//! ```text
//! get_delta(ds) = View(dv)   ⟹   apply(dv, get(s)) == get(apply(ds, s))
//! ```
//!
//! for every source `s` the delta `ds` is valid against. Stages that
//! cannot translate a particular delta (or any delta at all) return
//! [`DeltaOutcome::Rebuild`] — the conservative escape hatch telling the
//! maintainer to re-run `get` once — so a `DeltaLens` is never *wrong*,
//! merely sometimes non-incremental.
//!
//! The delta type `D` is generic and shared along a composition chain:
//! relational table lenses use `esm_store::Delta` end to end, with each
//! pipeline stage translating the delta into its own view's coordinates.

use std::sync::Arc;

use crate::lens::Lens;

/// How a lens maps one source-side delta to the view side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOutcome<D> {
    /// The source delta translates exactly to this view delta.
    View(D),
    /// This delta cannot be translated incrementally; re-run `get`.
    Rebuild,
}

/// A shared delta propagator: the `get_delta` component of a
/// [`DeltaLens`].
type Propagator<D> = Arc<dyn Fn(&D) -> DeltaOutcome<D> + Send + Sync>;

/// A lens bundled with a delta propagator: `get`/`put` as ever, plus
/// `get_delta` mapping source deltas to view deltas (with
/// [`DeltaOutcome::Rebuild`] as the conservative escape hatch).
///
/// Like [`Lens`], the components live behind `Arc` and must be
/// `Send + Sync`, so a compiled view pipeline is shared across every
/// client thread of an engine.
pub struct DeltaLens<S, V, D> {
    lens: Lens<S, V>,
    get_delta: Propagator<D>,
}

impl<S, V, D> Clone for DeltaLens<S, V, D> {
    fn clone(&self) -> Self {
        DeltaLens {
            lens: self.lens.clone(),
            get_delta: Arc::clone(&self.get_delta),
        }
    }
}

impl<S, V, D> std::fmt::Debug for DeltaLens<S, V, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DeltaLens(<get/put/get_delta>)")
    }
}

impl<S: 'static, V: 'static, D: 'static> DeltaLens<S, V, D> {
    /// Bundle a lens with its delta propagator.
    pub fn new(
        lens: Lens<S, V>,
        get_delta: impl Fn(&D) -> DeltaOutcome<D> + Send + Sync + 'static,
    ) -> Self {
        DeltaLens {
            lens,
            get_delta: Arc::new(get_delta),
        }
    }

    /// The escape hatch in lens form: a `DeltaLens` that answers
    /// [`DeltaOutcome::Rebuild`] to every delta. Correct for any lens;
    /// incremental for none.
    pub fn rebuild_only(lens: Lens<S, V>) -> Self {
        DeltaLens::new(lens, |_| DeltaOutcome::Rebuild)
    }

    /// The underlying lens.
    pub fn lens(&self) -> &Lens<S, V> {
        &self.lens
    }

    /// Extract the view from a source (forward direction).
    pub fn get(&self, s: &S) -> V {
        self.lens.get(s)
    }

    /// Push an updated view back into a source (backward direction).
    pub fn put(&self, s: S, v: V) -> S {
        self.lens.put(s, v)
    }

    /// Map a source-side delta to the view side.
    pub fn get_delta(&self, d: &D) -> DeltaOutcome<D> {
        (self.get_delta)(d)
    }

    /// Sequential composition, mirroring [`Lens::then`]: deltas propagate
    /// through `self` first, then through `inner`; a [`DeltaOutcome::
    /// Rebuild`] anywhere in the chain short-circuits to `Rebuild`.
    pub fn then<W: 'static>(&self, inner: DeltaLens<V, W, D>) -> DeltaLens<S, W, D> {
        let lens = self.lens.then(inner.lens.clone());
        let outer = Arc::clone(&self.get_delta);
        let inner_prop = Arc::clone(&inner.get_delta);
        DeltaLens {
            lens,
            get_delta: Arc::new(move |d: &D| match outer(d) {
                DeltaOutcome::View(mid) => inner_prop(&mid),
                DeltaOutcome::Rebuild => DeltaOutcome::Rebuild,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy source: a vector of ints; toy delta: values to append.
    fn append_lens() -> Lens<Vec<i64>, Vec<i64>> {
        Lens::new(|s: &Vec<i64>| s.clone(), |_s, v| v)
    }

    /// A stage that doubles every element, with an exact propagator.
    fn doubling() -> DeltaLens<Vec<i64>, Vec<i64>, Vec<i64>> {
        DeltaLens::new(
            Lens::new(
                |s: &Vec<i64>| s.iter().map(|x| x * 2).collect(),
                |_s, v: Vec<i64>| v.iter().map(|x| x / 2).collect(),
            ),
            |d: &Vec<i64>| DeltaOutcome::View(d.iter().map(|x| x * 2).collect()),
        )
    }

    #[test]
    fn get_delta_translates_and_composes() {
        let one = doubling();
        assert_eq!(one.get(&vec![1, 2]), vec![2, 4]);
        assert_eq!(one.get_delta(&vec![3]), DeltaOutcome::View(vec![6]));
        let two = one.then(doubling());
        assert_eq!(two.get(&vec![1]), vec![4]);
        assert_eq!(two.get_delta(&vec![3]), DeltaOutcome::View(vec![12]));
    }

    #[test]
    fn rebuild_short_circuits_composition() {
        let chain = doubling()
            .then(DeltaLens::rebuild_only(append_lens()))
            .then(doubling());
        assert_eq!(chain.get_delta(&vec![1]), DeltaOutcome::Rebuild);
        // The forward/backward directions still work.
        assert_eq!(chain.get(&vec![1]), vec![4]);
    }

    #[test]
    fn clones_share_behaviour() {
        let l = doubling();
        let c = l.clone();
        assert_eq!(l.get_delta(&vec![5]), c.get_delta(&vec![5]));
    }
}
