//! Edge-labelled trees and Focal-style tree lens combinators.
//!
//! The paper's intro names XML files and abstract syntax trees among the
//! "models" bx synchronise. This module provides the classic Focal data
//! model — a tree is a finite map from edge names to subtrees; a *value*
//! `v` is encoded as the single-edge tree `{v -> {}}` — and the core
//! combinators (`child`, `plunge`, `hoist`, `fork`, `map_children`,
//! `rename_edge`), each with documented law status and domain.

use std::collections::BTreeMap;

use crate::lens::Lens;

/// An edge-labelled tree: a finite map from names to subtrees. The empty
/// tree (a *leaf*) doubles as "no data"; a value `v` is `{v -> {}}`.
///
/// An edge to an empty tree is meaningful (it is how values terminate), so
/// edges are never pruned: `{age -> {}}` and `{}` are different trees.
/// Lenses that need to *remove* an edge use [`Tree::without_child`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Tree {
    children: BTreeMap<String, Tree>,
}

impl Tree {
    /// The empty tree (a leaf).
    pub fn leaf() -> Tree {
        Tree::default()
    }

    /// A tree from (name, subtree) pairs.
    pub fn node(children: impl IntoIterator<Item = (String, Tree)>) -> Tree {
        Tree {
            children: children.into_iter().collect(),
        }
    }

    /// Encode a string value as the single-edge tree `{v -> {}}`.
    pub fn value(v: impl Into<String>) -> Tree {
        Tree::node([(v.into(), Tree::leaf())])
    }

    /// Is this the empty tree?
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// The subtree under `name`; a missing edge reads as a leaf.
    pub fn child(&self, name: &str) -> Tree {
        self.children.get(name).cloned().unwrap_or_default()
    }

    /// Is the edge `name` present (even if it leads to a leaf)?
    pub fn has_child(&self, name: &str) -> bool {
        self.children.contains_key(name)
    }

    /// Insert or replace the subtree under `name`.
    pub fn with_child(mut self, name: impl Into<String>, t: Tree) -> Tree {
        self.children.insert(name.into(), t);
        self
    }

    /// Remove the edge `name` entirely.
    pub fn without_child(mut self, name: &str) -> Tree {
        self.children.remove(name);
        self
    }

    /// The edge names present, in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.children.keys().map(String::as_str).collect()
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Equivalent to [`Tree::is_leaf`].
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Iterate over `(name, subtree)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tree)> {
        self.children.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// If this tree encodes a value (`{v -> {}}`), decode it.
    pub fn as_value(&self) -> Option<&str> {
        if self.children.len() == 1 {
            let (k, v) = self.children.iter().next().expect("len checked");
            if v.is_leaf() {
                return Some(k);
            }
        }
        None
    }

    /// Split children by a name predicate: (matching, non-matching).
    pub fn partition(&self, pred: impl Fn(&str) -> bool) -> (Tree, Tree) {
        let mut yes = BTreeMap::new();
        let mut no = BTreeMap::new();
        for (k, v) in &self.children {
            if pred(k) {
                yes.insert(k.clone(), v.clone());
            } else {
                no.insert(k.clone(), v.clone());
            }
        }
        (Tree { children: yes }, Tree { children: no })
    }

    /// Union of two trees; on a name clash the right operand wins.
    pub fn merge(mut self, other: Tree) -> Tree {
        for (k, v) in other.children {
            self.children.insert(k, v);
        }
        Tree {
            children: self.children,
        }
    }
}

impl std::fmt::Display for Tree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_leaf() {
            return f.write_str("{}");
        }
        f.write_str("{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            if v.is_leaf() {
                write!(f, "{k}")?;
            } else {
                write!(f, "{k} -> {v}")?;
            }
        }
        f.write_str("}")
    }
}

/// Focus on the subtree under `name`, keeping all sibling edges hidden in
/// the source.
///
/// Domain: very well-behaved on sources where the edge is *present*
/// (possibly empty). On a source missing the edge, (GetPut) fails — the
/// write-back materialises the edge — which is the usual Focal typing
/// obligation.
pub fn child(name: impl Into<String>) -> Lens<Tree, Tree> {
    let name = name.into();
    let name2 = name.clone();
    Lens::new(
        move |s: &Tree| s.child(&name),
        move |s: Tree, v: Tree| s.with_child(name2.clone(), v),
    )
}

/// `plunge n`: nest the whole source under a new edge `n` in the view.
///
/// Domain: very well-behaved for views of the shape `{n -> t}`; `put`
/// discards any other view edges (Focal's typing obligation).
pub fn plunge(name: impl Into<String>) -> Lens<Tree, Tree> {
    let name = name.into();
    let name2 = name.clone();
    Lens::new(
        move |s: &Tree| Tree::leaf().with_child(name.clone(), s.clone()),
        move |_s: Tree, v: Tree| v.child(&name2),
    )
}

/// `hoist n`: the inverse of [`plunge`] — expose the single subtree under
/// `n` as the whole view.
///
/// Domain: very well-behaved on sources of the shape `{n -> t}`.
pub fn hoist(name: impl Into<String>) -> Lens<Tree, Tree> {
    let name = name.into();
    let name2 = name.clone();
    Lens::new(
        move |s: &Tree| s.child(&name),
        move |_s: Tree, v: Tree| Tree::leaf().with_child(name2.clone(), v),
    )
}

/// `fork p`: split the tree into the edges satisfying `p` (the view) and
/// the rest (hidden residue restored by `put`).
///
/// Domain: very well-behaved provided written-back views only contain
/// edges satisfying `p`.
pub fn fork(pred: impl Fn(&str) -> bool + Send + Sync + 'static) -> Lens<Tree, Tree> {
    let pred = std::sync::Arc::new(pred);
    let pred2 = std::sync::Arc::clone(&pred);
    Lens::new(
        move |s: &Tree| s.partition(|n| pred(n)).0,
        move |s: Tree, v: Tree| {
            let (_, keep) = s.partition(|n| pred2(n));
            keep.merge(v)
        },
    )
}

/// Apply a lens to every child of the root: edges are preserved, subtrees
/// are viewed through `inner`.
///
/// Edges added in the view are created by `inner.put(leaf, …)`; edges
/// removed are dropped. Well-behaved when `inner` is (create-consistency is
/// implied by `inner`'s (PutGet)).
pub fn map_children(inner: Lens<Tree, Tree>) -> Lens<Tree, Tree> {
    let ig = inner.clone();
    Lens::new(
        move |s: &Tree| Tree::node(s.iter().map(|(k, v)| (k.to_string(), ig.get(v)))),
        move |s: Tree, v: Tree| {
            Tree::node(
                v.iter()
                    .map(|(k, vc)| {
                        let sc = s.child(k);
                        (k.to_string(), inner.put(sc, vc.clone()))
                    })
                    .collect::<Vec<_>>(),
            )
        },
    )
}

/// Rename one edge of the root: `old` in the source appears as `new` in
/// the view.
///
/// Domain: very well-behaved on sources containing `old` and not `new`
/// (the rename must be a bijection on edge names).
pub fn rename_edge(old: impl Into<String>, new: impl Into<String>) -> Lens<Tree, Tree> {
    let old = old.into();
    let new = new.into();
    let (o2, n2) = (old.clone(), new.clone());
    Lens::new(
        move |s: &Tree| {
            let c = s.child(&old);
            s.clone().without_child(&old).with_child(new.clone(), c)
        },
        move |_s: Tree, v: Tree| {
            let c = v.child(&n2);
            v.without_child(&n2).with_child(o2.clone(), c)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::check_very_well_behaved;

    fn sample() -> Tree {
        Tree::node([
            ("name".to_string(), Tree::value("ada")),
            ("age".to_string(), Tree::value("36")),
            (
                "address".to_string(),
                Tree::node([
                    ("city".to_string(), Tree::value("london")),
                    ("zip".to_string(), Tree::value("n1")),
                ]),
            ),
        ])
    }

    #[test]
    fn empty_edges_are_preserved() {
        let t = Tree::node([("x".to_string(), Tree::leaf())]);
        assert!(!t.is_leaf());
        assert!(t.has_child("x"));
        assert_eq!(t.as_value(), Some("x"));
    }

    #[test]
    fn value_encoding_roundtrips() {
        let t = Tree::value("hello");
        assert_eq!(t.as_value(), Some("hello"));
        assert_eq!(sample().as_value(), None);
    }

    #[test]
    fn without_child_removes_edges() {
        let t = sample().without_child("age");
        assert!(!t.has_child("age"));
        assert!(t.child("age").is_leaf());
    }

    #[test]
    fn display_is_compact() {
        let t = Tree::node([("k".to_string(), Tree::value("v"))]);
        assert_eq!(t.to_string(), "{k -> {v}}");
        assert_eq!(Tree::leaf().to_string(), "{}");
        assert_eq!(Tree::value("x").to_string(), "{x}");
    }

    #[test]
    fn child_lens_focuses_and_preserves_siblings() {
        let l = child("age");
        let t = sample();
        assert_eq!(l.get(&t).as_value(), Some("36"));
        let t2 = l.put(t, Tree::value("37"));
        assert_eq!(t2.child("age").as_value(), Some("37"));
        assert_eq!(t2.child("name").as_value(), Some("ada"));
    }

    #[test]
    fn child_lens_is_vwb_on_edge_bearing_sources() {
        let l = child("age");
        let sources = [sample(), Tree::leaf().with_child("age", Tree::leaf())];
        let views = [Tree::value("1"), Tree::leaf()];
        assert!(check_very_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn child_lens_get_put_fails_off_domain() {
        // The documented domain obligation: a source missing the edge
        // gains it on write-back.
        let l = child("age");
        let violations = crate::laws::check_get_put(&l, &[Tree::leaf()]);
        assert!(!violations.is_empty());
    }

    #[test]
    fn plunge_hoist_are_mutually_inverse() {
        let down = plunge("wrap");
        let up = hoist("wrap");
        let t = sample();
        assert_eq!(up.get(&down.get(&t)), t);
        let both = down.then(up);
        assert_eq!(both.get(&t), t);
        assert_eq!(both.put(Tree::leaf(), t.clone()), t);
    }

    #[test]
    fn hoist_is_vwb_on_single_edge_sources() {
        let l = hoist("wrap");
        let sources = [
            Tree::leaf().with_child("wrap", sample()),
            Tree::leaf().with_child("wrap", Tree::leaf()),
        ];
        let views = [sample(), Tree::value("x"), Tree::leaf()];
        assert!(check_very_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn fork_splits_and_restores() {
        let l = fork(|n| n.starts_with('a'));
        let t = sample();
        let view = l.get(&t);
        assert_eq!(view.names(), vec!["address", "age"]);
        // Edit the view, put back: non-matching edges survive.
        let view2 = view.with_child("age", Tree::value("40"));
        let t2 = l.put(t, view2);
        assert_eq!(t2.child("age").as_value(), Some("40"));
        assert_eq!(t2.child("name").as_value(), Some("ada"));
    }

    #[test]
    fn fork_is_vwb_on_domain_respecting_views() {
        let l = fork(|n| n.starts_with('a'));
        let sources = [sample(), Tree::leaf()];
        let views = [
            Tree::node([("age".to_string(), Tree::value("9"))]),
            Tree::leaf(),
        ];
        assert!(check_very_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn map_children_applies_inner_lens_pointwise() {
        // View each child through `child("city")`: exposes each child's
        // city edge only.
        let l = map_children(child("city"));
        let t = Tree::node([(
            "home".to_string(),
            Tree::node([
                ("city".to_string(), Tree::value("london")),
                ("zip".to_string(), Tree::value("n1")),
            ]),
        )]);
        let v = l.get(&t);
        assert_eq!(v.child("home").as_value(), Some("london"));
        let v2 = Tree::node([("home".to_string(), Tree::value("paris"))]);
        let t2 = l.put(t, v2);
        assert_eq!(t2.child("home").child("city").as_value(), Some("paris"));
        assert_eq!(t2.child("home").child("zip").as_value(), Some("n1"));
    }

    #[test]
    fn map_children_drops_removed_edges_and_creates_new_ones() {
        let l = map_children(child("city"));
        let t = Tree::node([
            (
                "a".to_string(),
                Tree::node([("city".to_string(), Tree::value("x"))]),
            ),
            (
                "b".to_string(),
                Tree::node([("city".to_string(), Tree::value("y"))]),
            ),
        ]);
        // Remove "b", add "c".
        let v = Tree::node([
            ("a".to_string(), Tree::value("x")),
            ("c".to_string(), Tree::value("z")),
        ]);
        let t2 = l.put(t, v);
        assert!(!t2.has_child("b"));
        assert_eq!(t2.child("c").child("city").as_value(), Some("z"));
    }

    #[test]
    fn rename_edge_renames_and_restores() {
        let l = rename_edge("age", "years");
        let t = sample();
        let v = l.get(&t);
        assert_eq!(v.child("years").as_value(), Some("36"));
        assert!(!v.has_child("age"));
        let v2 = v.with_child("years", Tree::value("37"));
        let t2 = l.put(t, v2);
        assert_eq!(t2.child("age").as_value(), Some("37"));
    }

    #[test]
    fn rename_edge_is_vwb_without_collisions() {
        let l = rename_edge("age", "years");
        let sources = [sample()];
        let views = [{
            let t = sample();
            let c = t.child("age");
            t.without_child("age").with_child("years", c)
        }];
        assert!(check_very_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn composed_tree_pipeline() {
        // address.city as a two-step lens pipeline.
        let l = child("address").then(child("city"));
        let t = sample();
        assert_eq!(l.get(&t).as_value(), Some("london"));
        let t2 = l.put(t, Tree::value("oxford"));
        assert_eq!(t2.child("address").child("city").as_value(), Some("oxford"));
        assert_eq!(t2.child("address").child("zip").as_value(), Some("n1"));
    }
}
