//! Executable forms of the classical lens laws (§4 of the paper):
//! (GetPut), (PutGet) for *well-behaved*, plus (PutPut) for *very
//! well-behaved* lenses.

use crate::lens::Lens;

/// A lens-law violation with printable evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LensLawViolation {
    /// The law that failed: `"(GetPut)"`, `"(PutGet)"` or `"(PutPut)"`.
    pub law: &'static str,
    /// Human-readable description of the counterexample.
    pub detail: String,
}

impl std::fmt::Display for LensLawViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lens law {} violated: {}", self.law, self.detail)
    }
}

impl std::error::Error for LensLawViolation {}

/// (GetPut): `put(s, get(s)) == s` for each sampled source.
pub fn check_get_put<S, V>(l: &Lens<S, V>, sources: &[S]) -> Vec<LensLawViolation>
where
    S: Clone + PartialEq + std::fmt::Debug + 'static,
    V: 'static,
{
    let mut out = Vec::new();
    for s in sources {
        let v = l.get(s);
        let s2 = l.put(s.clone(), v);
        if s2 != *s {
            out.push(LensLawViolation {
                law: "(GetPut)",
                detail: format!("put(s, get(s)) = {s2:?} but s = {s:?}"),
            });
        }
    }
    out
}

/// (PutGet): `get(put(s, v)) == v` for each sampled source and view.
pub fn check_put_get<S, V>(l: &Lens<S, V>, sources: &[S], views: &[V]) -> Vec<LensLawViolation>
where
    S: Clone + std::fmt::Debug + 'static,
    V: Clone + PartialEq + std::fmt::Debug + 'static,
{
    let mut out = Vec::new();
    for s in sources {
        for v in views {
            let s2 = l.put(s.clone(), v.clone());
            let v2 = l.get(&s2);
            if v2 != *v {
                out.push(LensLawViolation {
                    law: "(PutGet)",
                    detail: format!("get(put({s:?}, {v:?})) = {v2:?}, expected {v:?}"),
                });
            }
        }
    }
    out
}

/// (PutPut): `put(put(s, v), v') == put(s, v')` for each sampled source and
/// pair of views.
pub fn check_put_put<S, V>(l: &Lens<S, V>, sources: &[S], views: &[V]) -> Vec<LensLawViolation>
where
    S: Clone + PartialEq + std::fmt::Debug + 'static,
    V: Clone + std::fmt::Debug + 'static,
{
    let mut out = Vec::new();
    for s in sources {
        for v in views {
            for v2 in views {
                let twice = l.put(l.put(s.clone(), v.clone()), v2.clone());
                let once = l.put(s.clone(), v2.clone());
                if twice != once {
                    out.push(LensLawViolation {
                        law: "(PutPut)",
                        detail: format!(
                            "put(put({s:?}, {v:?}), {v2:?}) = {twice:?} but put(s, {v2:?}) = {once:?}"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Check well-behavedness: (GetPut) + (PutGet).
pub fn check_well_behaved<S, V>(l: &Lens<S, V>, sources: &[S], views: &[V]) -> Vec<LensLawViolation>
where
    S: Clone + PartialEq + std::fmt::Debug + 'static,
    V: Clone + PartialEq + std::fmt::Debug + 'static,
{
    let mut out = check_get_put(l, sources);
    out.extend(check_put_get(l, sources, views));
    out
}

/// Check very-well-behavedness: (GetPut) + (PutGet) + (PutPut).
pub fn check_very_well_behaved<S, V>(
    l: &Lens<S, V>,
    sources: &[S],
    views: &[V],
) -> Vec<LensLawViolation>
where
    S: Clone + PartialEq + std::fmt::Debug + 'static,
    V: Clone + PartialEq + std::fmt::Debug + 'static,
{
    let mut out = check_well_behaved(l, sources, views);
    out.extend(check_put_put(l, sources, views));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field_lens() -> Lens<(i32, i32), i32> {
        Lens::new(
            |s: &(i32, i32)| s.0,
            |mut s, v| {
                s.0 = v;
                s
            },
        )
    }

    #[test]
    fn field_lens_is_very_well_behaved() {
        let l = field_lens();
        let sources = [(0, 0), (1, 2), (-3, 4)];
        let views = [0, 7, -1];
        assert!(check_very_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn constant_put_violates_put_get() {
        // put ignores the view: (PutGet) must fail.
        let l: Lens<i32, i32> = Lens::new(|s| *s, |s, _| s);
        let v = check_put_get(&l, &[1], &[2]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].law, "(PutGet)");
    }

    #[test]
    fn forgetful_get_violates_get_put() {
        // get collapses information that put then reconstructs wrongly.
        let l: Lens<(i32, i32), i32> = Lens::new(|s: &(i32, i32)| s.0, |_, v| (v, 0));
        let violations = check_get_put(&l, &[(1, 5)]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].law, "(GetPut)");
    }

    #[test]
    fn last_write_tracking_violates_put_put() {
        // A put that appends to a log: (GetPut)/(PutGet) hold but
        // (PutPut) fails — the classic well-behaved-not-very example.
        let l: Lens<(i32, Vec<i32>), i32> = Lens::new(
            |s: &(i32, Vec<i32>)| s.0,
            |mut s, v| {
                if s.0 != v {
                    s.1.push(v);
                    s.0 = v;
                }
                s
            },
        );
        let sources = [(0, vec![])];
        let views = [1, 2];
        assert!(check_well_behaved(&l, &sources, &views).is_empty());
        let pp = check_put_put(&l, &sources, &views);
        assert!(!pp.is_empty());
    }

    #[test]
    fn violations_display_the_law_name() {
        let l: Lens<i32, i32> = Lens::new(|s| *s, |s, _| s);
        let v = check_put_get(&l, &[1], &[2]);
        assert!(v[0].to_string().contains("(PutGet)"));
    }
}
