//! Lemma 4: every well-behaved asymmetric lens is an entangled state monad.
//!
//! Given `l : S ⇄ V`, the paper constructs a set-bx between `S` and `V`
//! over the state monad `M_S`:
//!
//! ```text
//! getA   = \s -> (s, s)            -- the identity-lens structure on S
//! getB   = \s -> (l.get s, s)      -- the l-derived structure on V
//! setA a = \s -> ((), a)
//! setB b = \s -> ((), l.put s b)
//! ```
//!
//! The two state-monad structures access *the same* hidden state — they are
//! entangled: `setA` changes what `getB` sees and vice versa. Lemma 4: if
//! `l` is well-behaved this is a set-bx; if very well-behaved, an
//! overwriteable one. Both implications (and their converses' failure) are
//! exercised by the law-check test suites.

use esm_core::state::SbxOps;

use crate::lens::Lens;

/// The Lemma 4 construction: a set-bx between the source `S` (side A) and
/// the view `V` (side B), over hidden state `S`.
#[derive(Debug, Clone)]
pub struct AsymBx<S, V> {
    lens: Lens<S, V>,
}

impl<S: 'static, V: 'static> AsymBx<S, V> {
    /// Wrap a lens as a set-bx (Lemma 4).
    pub fn new(lens: Lens<S, V>) -> Self {
        AsymBx { lens }
    }

    /// The underlying lens.
    pub fn lens(&self) -> &Lens<S, V> {
        &self.lens
    }
}

impl<S: Clone + 'static, V: 'static> SbxOps<S, S, V> for AsymBx<S, V> {
    fn view_a(&self, s: &S) -> S {
        s.clone()
    }

    fn view_b(&self, s: &S) -> V {
        self.lens.get(s)
    }

    fn update_a(&self, _s: S, a: S) -> S {
        a
    }

    fn update_b(&self, s: S, b: V) -> S {
        self.lens.put(s, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::fst;
    use esm_core::state::{BxSession, SbxOps};

    type Src = (i32, String);

    fn bx() -> AsymBx<Src, i32> {
        AsymBx::new(fst::<i32, String>())
    }

    #[test]
    fn side_a_is_the_whole_source() {
        let t = bx();
        let s: Src = (1, "x".into());
        assert_eq!(t.view_a(&s), s);
        assert_eq!(t.update_a(s, (9, "y".into())), (9, "y".to_string()));
    }

    #[test]
    fn side_b_is_the_lens_view() {
        let t = bx();
        let s: Src = (1, "x".into());
        assert_eq!(t.view_b(&s), 1);
        // update_b goes through l.put, preserving the hidden String.
        assert_eq!(t.update_b(s, 5), (5, "x".to_string()));
    }

    #[test]
    fn sides_are_entangled() {
        // Setting A changes what B sees; setting B changes what A sees.
        let t = bx();
        let s = t.update_a((0, "h".into()), (7, "h".into()));
        assert_eq!(t.view_b(&s), 7);
        let s = t.update_b(s, 42);
        assert_eq!(t.view_a(&s).0, 42);
    }

    #[test]
    fn session_over_lens_bx() {
        let mut sess = BxSession::new((3, "k".to_string()), bx());
        assert_eq!(sess.b(), 3);
        sess.set_b(10);
        assert_eq!(sess.a(), (10, "k".to_string()));
    }
}
