//! T1 — encoding cost: direct mutation vs static ops vs dyn ops vs the
//! GAT state monad, one `setB`+`getA` round each.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use esm_bench::{inventory_dyn, InventoryOps, Item};
use esm_core::monadic::SetBx;
use esm_core::state::{Monadic, SbxOps};
use esm_monad::{MonadFamily, StateOf};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_encoding");

    g.bench_function("direct", |b| {
        let mut s: Item = (4, 25);
        b.iter(|| {
            s = (black_box(300) / s.1, s.1);
            black_box(s.0);
        })
    });

    g.bench_function("sbxops_static", |b| {
        let t = InventoryOps;
        let mut s: Item = (4, 25);
        b.iter(|| {
            s = t.update_b(s, black_box(300));
            black_box(t.view_a(&s));
        })
    });

    g.bench_function("statebx_dyn", |b| {
        let t = inventory_dyn();
        let mut s: Item = (4, 25);
        b.iter(|| {
            s = t.update_b(s, black_box(300));
            black_box(t.view_a(&s));
        })
    });

    g.bench_function("gat_state_monad", |b| {
        let t = Monadic(InventoryOps);
        let mut s: Item = (4, 25);
        b.iter(|| {
            let prog = StateOf::<Item>::seq(t.set_b(black_box(300)), t.get_a());
            let (a, s2) = prog.run(s);
            s = s2;
            black_box(a);
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    targets = bench
}
criterion_main!(benches);
