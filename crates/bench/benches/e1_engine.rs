//! E1 — the engine subsystem: indexed select vs full scan, view write
//! throughput, and multi-threaded concurrent view workloads.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use esm_bench::{
    engine_with_shard_views, people_table, run_concurrent_engine_workload, selective_age_pred,
};
use esm_store::row;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_engine");

    // Indexed seek vs full scan on a selective predicate (~1% of rows).
    for &n in &[1_000usize, 10_000] {
        let plain = people_table(n);
        let mut indexed = plain.clone();
        indexed.create_index("age").expect("column exists");
        let pred = selective_age_pred();
        assert_eq!(plain.select(&pred).unwrap(), indexed.select(&pred).unwrap());
        g.bench_with_input(BenchmarkId::new("select_scan", n), &n, |b, _| {
            b.iter(|| black_box(plain.select(&pred).expect("ok")))
        });
        g.bench_with_input(BenchmarkId::new("select_indexed", n), &n, |b, _| {
            b.iter(|| black_box(indexed.select(&pred).expect("ok")))
        });
    }

    // Single-client transactional view writes (optimistic path, no
    // contention): cost of get + edit + put + diff + WAL append.
    let engine = engine_with_shard_views(5_000, 4);
    let view = engine.view("band_0").expect("registered");
    let mut next_id = 10_000_000i64;
    g.bench_function("view_edit_uncontended", |b| {
        b.iter(|| {
            next_id += 1;
            view.edit(|v| {
                v.upsert(row![next_id, "bench", 5])?;
                Ok(())
            })
            .expect("commits")
        })
    });

    // Multi-threaded engine workload: 4 writer threads × 25 edits each
    // through distinct entangled views (different key ranges, shared
    // base table).
    g.bench_function("concurrent_4x25_edits", |b| {
        b.iter(|| {
            let engine = engine_with_shard_views(1_000, 4);
            black_box(run_concurrent_engine_workload(&engine, 4, 25))
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
