//! T2 — operational cost of the §3.3 translations: a raw set-bx vs the
//! same bx wrapped in `pp2set(set2pp(·))`, plus the translated `put`.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use esm_bench::{InventoryOps, Item};
use esm_core::state::{PbxOps, PutToSet, SbxOps, SetToPut};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2_translation");

    g.bench_function("raw_update_a", |b| {
        let t = InventoryOps;
        let mut s: Item = (4, 25);
        b.iter(|| {
            s = t.update_a(s, black_box(7));
            black_box(s);
        })
    });

    g.bench_function("roundtrip_update_a", |b| {
        let t = PutToSet(SetToPut(InventoryOps));
        let mut s: Item = (4, 25);
        b.iter(|| {
            s = t.update_a(s, black_box(7));
            black_box(s);
        })
    });

    g.bench_function("translated_put_a", |b| {
        let t = SetToPut(InventoryOps);
        let mut s: Item = (4, 25);
        b.iter(|| {
            let (s2, total) = t.put_a(s, black_box(7));
            s = s2;
            black_box(total);
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    targets = bench
}
criterion_main!(benches);
