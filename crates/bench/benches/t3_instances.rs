//! T3 — the three lemma constructions (asymmetric lens, algebraic bx,
//! symmetric lens) driving the same synchronisation task.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use esm_algebraic::builders::from_lens;
use esm_algebraic::AlgBxOps;
use esm_core::state::{PbxOps, SbxOps};
use esm_lens::combinators::fst;
use esm_lens::AsymBx;
use esm_symmetric::combinators::from_asym;
use esm_symmetric::SymBxOps;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t3_instances");

    g.bench_function("lemma4_asym_lens", |b| {
        let t = AsymBx::new(fst::<i64, String>());
        let mut s: (i64, String) = (0, "hidden".to_string());
        b.iter(|| {
            s = t.update_b(s.clone(), black_box(9));
            black_box(t.view_a(&s));
        })
    });

    g.bench_function("lemma5_algebraic", |b| {
        let t = AlgBxOps::new(from_lens(fst::<i64, String>()));
        let mut s: ((i64, String), i64) = ((0, "hidden".to_string()), 0);
        b.iter(|| {
            s = t.update_b(s.clone(), black_box(9));
            black_box(t.view_a(&s));
        })
    });

    g.bench_function("lemma6_symmetric", |b| {
        let t = SymBxOps::new(from_asym(fst::<i64, String>(), (0, "hidden".to_string())));
        let mut s = t.initial_from_a((0, "hidden".to_string()));
        b.iter(|| {
            let (s2, a) = t.put_b(s.clone(), black_box(9));
            s = s2;
            black_box(a);
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    targets = bench
}
criterion_main!(benches);
