//! T4 — effectful bx (§4): pure vs Announce (no-change / changing sets).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use esm_core::state::{IdBx, SbxOps};
use esm_core::{Announce, EffOps};
use esm_monad::Trace;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t4_effects");

    g.bench_function("pure_set", |b| {
        let t = IdBx::<i64>::new();
        let mut s: i64 = 0;
        b.iter(|| {
            s = t.update_a(s, black_box(5));
            black_box(s);
        })
    });

    g.bench_function("announce_nochange", |b| {
        let t = Announce::trivial_int();
        let mut s: i64 = 5;
        b.iter(|| {
            let mut tr = Trace::new();
            s = t.update_a(s, black_box(s), &mut tr);
            black_box(tr.len());
        })
    });

    g.bench_function("announce_change", |b| {
        let t = Announce::trivial_int();
        let mut s: i64 = 0;
        b.iter(|| {
            let mut tr = Trace::new();
            s = t.update_a(s, black_box(s + 1), &mut tr);
            black_box(tr.len());
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    targets = bench
}
criterion_main!(benches);
