//! F1 — composition depth: one `put` through a chain of n composed
//! lenses, against the fused single-lens baseline.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use esm_bench::{fused_chain, lens_chain};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f1_compose_depth");
    for depth in [1usize, 2, 4, 8, 16, 32, 64] {
        let chain = lens_chain(depth);
        g.bench_with_input(BenchmarkId::new("chained_put", depth), &depth, |b, _| {
            b.iter(|| black_box(chain.put(black_box(5), 99)))
        });
        let fused = fused_chain(depth);
        g.bench_with_input(BenchmarkId::new("fused_put", depth), &depth, |b, _| {
            b.iter(|| black_box(fused.put(black_box(5), 99)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
    targets = bench
}
criterion_main!(benches);
