//! F3 — law-check throughput: full ops-level set-bx suites per second.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use esm_bench::InventoryOps;
use esm_core::state::{IdBx, ProductOps};
use esm_lawcheck::gen::int_range;
use esm_lawcheck::setbx::check_set_ops;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f3_lawcheck");
    let n = 200;

    g.bench_function("identity_bx_suite", |b| {
        let gen = int_range(-1000..1000);
        b.iter(|| {
            black_box(check_set_ops(
                "id",
                &IdBx::<i64>::new(),
                &gen,
                &gen,
                &gen,
                n,
                1,
                true,
            ))
        })
    });

    g.bench_function("product_bx_suite", |b| {
        let gs = int_range(-1000..1000).zip(&int_range(1..100));
        let ga = int_range(-1000..1000);
        let gb = int_range(1..100);
        let t: ProductOps<i64, i64> = ProductOps::new();
        b.iter(|| black_box(check_set_ops("product", &t, &gs, &ga, &gb, n, 2, true)))
    });

    g.bench_function("inventory_bx_suite", |b| {
        let gqty = int_range(1..1000).map(|x| x as u32);
        let gs = gqty.clone().map(|q| (q, 10u32));
        let gtotal = int_range(1..10_000).map(|x| x as u32 * 10);
        b.iter(|| {
            black_box(check_set_ops(
                "inv",
                &InventoryOps,
                &gs,
                &gqty,
                &gtotal,
                n,
                3,
                true,
            ))
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
