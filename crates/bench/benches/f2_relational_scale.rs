//! F2 — relational lenses vs table size: select/project/join `get` and
//! `put` over generated tables.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use esm_relational::testgen::{gen_orders_products, gen_people};
use esm_relational::{join_dl_lens, project_lens, select_lens};
use esm_store::{Operand, Predicate, Value};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f2_relational_scale");
    for &n in &[100usize, 1_000, 10_000] {
        let people = gen_people(99, n);
        let sel = select_lens(Predicate::ge(Operand::col("age"), Operand::val(18)));
        let sel_view = sel.get(&people);
        g.bench_with_input(BenchmarkId::new("select_get", n), &n, |b, _| {
            b.iter(|| black_box(sel.get(&people)))
        });
        g.bench_with_input(BenchmarkId::new("select_put", n), &n, |b, _| {
            b.iter(|| black_box(sel.put(people.clone(), sel_view.clone())))
        });

        let proj = project_lens(&["id", "name"], &[("age", Value::Int(30))]);
        let proj_view = proj.get(&people);
        g.bench_with_input(BenchmarkId::new("project_get", n), &n, |b, _| {
            b.iter(|| black_box(proj.get(&people)))
        });
        g.bench_with_input(BenchmarkId::new("project_put", n), &n, |b, _| {
            b.iter(|| black_box(proj.put(people.clone(), proj_view.clone())))
        });

        let (orders, products) = gen_orders_products(7, n, (n / 10).max(1));
        let join = join_dl_lens();
        let src = (orders, products);
        let join_view = join.get(&src);
        g.bench_with_input(BenchmarkId::new("join_get", n), &n, |b, _| {
            b.iter(|| black_box(join.get(&src)))
        });
        g.bench_with_input(BenchmarkId::new("join_put", n), &n, |b, _| {
            b.iter(|| black_box(join.put(src.clone(), join_view.clone())))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
