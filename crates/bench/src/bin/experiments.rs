//! Regenerate every table and figure of EXPERIMENTS.md.
//!
//! Usage: `cargo run -p esm-bench --bin experiments --release`
//!
//! Prints one markdown table per experiment (T1–T4, F1–F3), measured with
//! the quick median harness in `esm_bench`. The Criterion benches under
//! `crates/bench/benches/` are the statistically careful versions of the
//! same workloads.

use esm_algebraic::builders::from_lens;
use esm_algebraic::AlgBxOps;
use esm_bench::{
    fused_chain, inventory_dyn, lens_chain, md_row, median_ns_per_call, InventoryOps, Item,
};
use esm_core::monadic::SetBx;
use esm_core::state::{IdBx, Monadic, PbxOps, ProductOps, PutToSet, SbxOps, SetToPut};
use esm_core::{Announce, EffOps};
use esm_lawcheck::gen::int_range;
use esm_lawcheck::setbx::check_set_ops;
use esm_lens::combinators::fst;
use esm_lens::AsymBx;
use esm_monad::{MonadFamily, StateOf, Trace};
use esm_relational::testgen::{gen_orders_products, gen_people};
use esm_relational::{join_dl_lens, project_lens, select_lens};
use esm_store::{Operand, Predicate, Value};
use esm_symmetric::combinators::from_asym;
use esm_symmetric::SymBxOps;

const REPS: usize = 15;

fn main() {
    println!("# Experiment suite — entangled state monads\n");
    println!("(medians over {REPS} batches; see benches/ for the Criterion versions)\n");
    t1_encoding();
    t2_translation();
    t3_instances();
    t4_effects();
    f1_compose_depth();
    f2_relational_scale();
    f3_lawcheck();
}

/// T1: the cost of the monadic encoding in Rust, per set+get round.
fn t1_encoding() {
    println!("## T1 — encoding cost (one `setB` + `getA` round on the inventory bx)\n");
    let batch = 100_000;

    let mut s: Item = (4, 25);
    let direct = median_ns_per_call(REPS, batch, || {
        // What a hand-written program would do: mutate the struct.
        s = (std::hint::black_box(300) / s.1, s.1);
        std::hint::black_box(s.0);
    });

    let stat = InventoryOps;
    let mut s2: Item = (4, 25);
    let static_ops = median_ns_per_call(REPS, batch, || {
        s2 = stat.update_b(s2, std::hint::black_box(300));
        std::hint::black_box(stat.view_a(&s2));
    });

    let dynb = inventory_dyn();
    let mut s3: Item = (4, 25);
    let dyn_ops = median_ns_per_call(REPS, batch, || {
        s3 = dynb.update_b(s3, std::hint::black_box(300));
        std::hint::black_box(dynb.view_a(&s3));
    });

    let m = Monadic(InventoryOps);
    let mut s4: Item = (4, 25);
    let monadic = median_ns_per_call(REPS, batch / 10, || {
        // Build and run the computation `setB 300 >> getA` in the GAT
        // state monad: allocates Rc closures per op, as the paper's
        // encoding does in Haskell (thunks).
        let prog = StateOf::<Item>::seq(m.set_b(std::hint::black_box(300)), m.get_a());
        let (a, s_next) = prog.run(s4);
        s4 = s_next;
        std::hint::black_box(a);
    });

    println!(
        "{}",
        md_row(&["variant".into(), "ns/round".into(), "vs direct".into()])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into()]));
    for (name, ns) in [
        ("direct struct mutation", direct),
        ("SbxOps (static dispatch)", static_ops),
        ("StateBx (dyn dispatch)", dyn_ops),
        ("GAT state monad (Monadic adapter)", monadic),
    ] {
        println!(
            "{}",
            md_row(&[
                name.into(),
                esm_bench::fmt_ns(ns),
                format!("{:.1}x", ns / direct.max(0.1))
            ])
        );
    }
    println!();
}

/// T2: operational cost of the Lemma 1–3 translations.
fn t2_translation() {
    println!("## T2 — translation overhead (set2pp / pp2set wrappers)\n");
    let batch = 100_000;
    let t = InventoryOps;
    let rt = PutToSet(SetToPut(InventoryOps));

    let mut s: Item = (4, 25);
    let direct = median_ns_per_call(REPS, batch, || {
        s = t.update_a(s, std::hint::black_box(7));
    });
    let mut s2: Item = (4, 25);
    let wrapped = median_ns_per_call(REPS, batch, || {
        s2 = rt.update_a(s2, std::hint::black_box(7));
    });
    // The translated put also computes the (possibly discarded) B view.
    let stp = SetToPut(InventoryOps);
    let mut s3: Item = (4, 25);
    let put = median_ns_per_call(REPS, batch, || {
        let (ns, b) = stp.put_a(s3, std::hint::black_box(7));
        s3 = ns;
        std::hint::black_box(b);
    });

    println!(
        "{}",
        md_row(&["operation".into(), "ns/op".into(), "vs direct".into()])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into()]));
    for (name, ns) in [
        ("update_a (raw set-bx)", direct),
        ("update_a via pp2set(set2pp(t))", wrapped),
        ("put_a via set2pp(t)", put),
    ] {
        println!(
            "{}",
            md_row(&[
                name.into(),
                esm_bench::fmt_ns(ns),
                format!("{:.2}x", ns / direct.max(0.1))
            ])
        );
    }
    println!();
}

/// T3: the three lemma constructions on the same synchronisation task.
fn t3_instances() {
    println!("## T3 — instance constructions on the same task (sync (i64, String) ↔ i64)\n");
    let batch = 20_000;

    // Lemma 4: asymmetric lens.
    let asym = AsymBx::new(fst::<i64, String>());
    let mut s_l4: (i64, String) = (0, "hidden".to_string());
    let l4 = median_ns_per_call(REPS, batch, || {
        s_l4 = asym.update_b(s_l4.clone(), std::hint::black_box(9));
        std::hint::black_box(asym.view_a(&s_l4));
    });

    // Lemma 5: algebraic bx from the same lens; state is the consistent pair.
    let alg = AlgBxOps::new(from_lens(fst::<i64, String>()));
    let mut s_l5: ((i64, String), i64) = ((0, "hidden".to_string()), 0);
    let l5 = median_ns_per_call(REPS, batch, || {
        s_l5 = alg.update_b(s_l5.clone(), std::hint::black_box(9));
        std::hint::black_box(alg.view_a(&s_l5));
    });

    // Lemma 6: symmetric lens from the same lens; state is the triple.
    let sym = SymBxOps::new(from_asym(fst::<i64, String>(), (0, "hidden".to_string())));
    let mut s_l6 = sym.initial_from_a((0, "hidden".to_string()));
    let l6 = median_ns_per_call(REPS, batch, || {
        let (s_next, a) =
            esm_core::state::PbxOps::put_b(&sym, s_l6.clone(), std::hint::black_box(9));
        s_l6 = s_next;
        std::hint::black_box(a);
    });

    println!(
        "{}",
        md_row(&[
            "construction".into(),
            "hidden state".into(),
            "ns/update".into()
        ])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into()]));
    println!(
        "{}",
        md_row(&[
            "Lemma 4 (asymmetric lens)".into(),
            "S".into(),
            esm_bench::fmt_ns(l4)
        ])
    );
    println!(
        "{}",
        md_row(&[
            "Lemma 5 (algebraic bx)".into(),
            "(A, B) ∈ R".into(),
            esm_bench::fmt_ns(l5)
        ])
    );
    println!(
        "{}",
        md_row(&[
            "Lemma 6 (symmetric lens)".into(),
            "(A, B, C) ∈ T".into(),
            esm_bench::fmt_ns(l6)
        ])
    );
    println!();
}

/// T4: effectful bx overhead and the Hippocratic fast path.
fn t4_effects() {
    println!("## T4 — effectful bx (§4): change vs no-change vs pure\n");
    let batch = 50_000;

    let pure = IdBx::<i64>::new();
    let mut s: i64 = 0;
    let pure_ns = median_ns_per_call(REPS, batch, || {
        s = pure.update_a(s, std::hint::black_box(5));
    });

    let eff = Announce::trivial_int();
    let mut s2: i64 = 0;
    let nochange = median_ns_per_call(REPS, batch, || {
        let mut tr = Trace::new();
        // Writing the current value: Hippocratic, never prints.
        s2 = eff.update_a(s2, std::hint::black_box(s2), &mut tr);
        std::hint::black_box(&tr);
    });

    let mut s3: i64 = 0;
    let change = median_ns_per_call(REPS, batch, || {
        let mut tr = Trace::new();
        s3 = eff.update_a(s3, std::hint::black_box(s3 + 1), &mut tr);
        std::hint::black_box(&tr);
    });

    println!(
        "{}",
        md_row(&["variant".into(), "ns/set".into(), "prints".into()])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into()]));
    println!(
        "{}",
        md_row(&["pure bx".into(), esm_bench::fmt_ns(pure_ns), "never".into()])
    );
    println!(
        "{}",
        md_row(&[
            "Announce, no-change set".into(),
            esm_bench::fmt_ns(nochange),
            "no".into()
        ])
    );
    println!(
        "{}",
        md_row(&[
            "Announce, changing set".into(),
            esm_bench::fmt_ns(change),
            "yes (1 event)".into()
        ])
    );
    println!();
}

/// F1: composition depth scaling (§5).
fn f1_compose_depth() {
    println!("## F1 — composition chain depth (one `put` through n composed lenses)\n");
    println!(
        "{}",
        md_row(&[
            "depth".into(),
            "chained ns/put".into(),
            "fused ns/put".into()
        ])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into()]));
    for depth in [1usize, 2, 4, 8, 16, 32, 64] {
        let chain = lens_chain(depth);
        let fused = fused_chain(depth);
        let chained_ns = median_ns_per_call(REPS, 20_000, || {
            std::hint::black_box(chain.put(std::hint::black_box(5), 99));
        });
        let fused_ns = median_ns_per_call(REPS, 20_000, || {
            std::hint::black_box(fused.put(std::hint::black_box(5), 99));
        });
        println!(
            "{}",
            md_row(&[
                depth.to_string(),
                esm_bench::fmt_ns(chained_ns),
                esm_bench::fmt_ns(fused_ns)
            ])
        );
    }
    println!();
}

/// F2: relational lens scaling over table size.
fn f2_relational_scale() {
    println!("## F2 — relational lenses vs table size (rows)\n");
    println!(
        "{}",
        md_row(&[
            "rows".into(),
            "select get".into(),
            "select put".into(),
            "project get".into(),
            "project put".into(),
            "join get".into(),
            "join put".into(),
        ])
    );
    println!(
        "{}",
        md_row(&(0..7).map(|_| "---".to_string()).collect::<Vec<_>>())
    );

    for &n in &[100usize, 1_000, 10_000] {
        let reps = if n >= 10_000 { 5 } else { REPS };
        let people = gen_people(99, n);
        let adults = Predicate::ge(Operand::col("age"), Operand::val(18));
        let sel = select_lens(adults);
        let sel_view = sel.get(&people);
        let sel_get = median_ns_per_call(reps, 3, || {
            std::hint::black_box(sel.get(&people));
        });
        let sel_put = median_ns_per_call(reps, 3, || {
            std::hint::black_box(sel.put(people.clone(), sel_view.clone()));
        });

        let proj = project_lens(&["id", "name"], &[("age", Value::Int(30))]);
        let proj_view = proj.get(&people);
        let proj_get = median_ns_per_call(reps, 3, || {
            std::hint::black_box(proj.get(&people));
        });
        let proj_put = median_ns_per_call(reps, 3, || {
            std::hint::black_box(proj.put(people.clone(), proj_view.clone()));
        });

        let (orders, products) = gen_orders_products(7, n, (n / 10).max(1));
        let join = join_dl_lens();
        let join_src = (orders, products);
        let join_view = join.get(&join_src);
        let join_get = median_ns_per_call(reps, 3, || {
            std::hint::black_box(join.get(&join_src));
        });
        let join_put = median_ns_per_call(reps, 3, || {
            std::hint::black_box(join.put(join_src.clone(), join_view.clone()));
        });

        println!(
            "{}",
            md_row(&[
                n.to_string(),
                esm_bench::fmt_ns(sel_get),
                esm_bench::fmt_ns(sel_put),
                esm_bench::fmt_ns(proj_get),
                esm_bench::fmt_ns(proj_put),
                esm_bench::fmt_ns(join_get),
                esm_bench::fmt_ns(join_put),
            ])
        );
    }
    println!();
}

/// F3: law-checking throughput (equations checked per second).
fn f3_lawcheck() {
    println!("## F3 — law-check throughput (ops-level set-bx suite, n = 1000 samples)\n");
    let g = int_range(-1000..1000);
    let gs_pair = int_range(-1000..1000).zip(&int_range(1..100));

    let id_ns = median_ns_per_call(5, 1, || {
        check_set_ops("id", &IdBx::<i64>::new(), &g, &g, &g, 1000, 1, true).assert_ok();
    });
    let product: ProductOps<i64, i64> = ProductOps::new();
    let prod_ns = median_ns_per_call(5, 1, || {
        check_set_ops(
            "product",
            &product,
            &gs_pair,
            &g,
            &int_range(1..100),
            1000,
            2,
            true,
        )
        .assert_ok();
    });
    let gqty = int_range(1..1000).map(|x| x as u32);
    let gsinv = gqty.clone().map(|q| (q, 10u32));
    let ginv = int_range(1..10_000).map(|x| x as u32 * 10);
    let inv_ns = median_ns_per_call(5, 1, || {
        check_set_ops(
            "inventory",
            &InventoryOps,
            &gsinv,
            &gqty,
            &ginv,
            1000,
            3,
            true,
        )
        .assert_ok();
    });

    // 6 equations per sample (GS/SG/SS on both sides).
    let eqs = 6_000.0;
    println!(
        "{}",
        md_row(&["instance".into(), "suite time".into(), "equations/s".into()])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into()]));
    for (name, ns) in [
        ("identity bx", id_ns),
        ("product bx", prod_ns),
        ("inventory bx", inv_ns),
    ] {
        println!(
            "{}",
            md_row(&[
                name.into(),
                esm_bench::fmt_ns(ns),
                format!("{:.1}M", eqs / ns * 1e9 / 1e6)
            ])
        );
    }
    println!();
}
