//! Sustained-load chaos harness: a mixed read/commit workload against
//! the socket server with a **sync-stall fault window** injected
//! mid-run, verified through the causal trace layer. Emits
//! `BENCH_load.json`.
//!
//! The run is three acts: a clean warm third, a faulted middle third
//! (every disk fsync sleeps an extra `ESM_LOAD_SYNC_DELAY_US`, default
//! 5 ms, via the live [`DurabilityConfig::sync_delay_handle`] knob),
//! and a clean final third. Every request is traced (100% head
//! sampling), so the stall must show up in the slow-trace ring as
//! commit trees whose time sits in `commit_fsync` /
//! `group_commit_wait` spans — and the harness *asserts* that the
//! traces blame durability, not `net_queue_wait`: an observability
//! stack that misattributes a disk stall to queueing is worse than
//! none.
//!
//! Tuning (environment): `ESM_LOAD_DURATION_MS` (default 900),
//! `ESM_LOAD_CLIENTS` (default 8), `ESM_LOAD_READ_RATIO` (default
//! 0.7), `ESM_LOAD_SYNC_DELAY_US` (default 5000).
//!
//! Usage: `cargo run --release -p esm-bench --bin bench_load [dir]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use esm_bench::results::BenchResults;
use esm_engine::{
    Durability, DurabilityConfig, Engine, EngineServer, FailPoint, Session, ShardRouter,
    ShardedEngineServer,
};
use esm_net::{NetServer, NetServerConfig, RemoteEngine};
use esm_obs::{Histogram, TelemetryConfig, TraceRecord};
use esm_relational::ViewDef;
use esm_store::{row, Database, Operand, Predicate, Row, Schema, Table, ValueType};

/// Distinct views so readers do not serialize on one window mutex.
const VIEWS: i64 = 4;
/// Traces totalling this long tail-capture into the slow ring — low
/// enough that every stalled commit is caught, high enough that the
/// clean thirds stay out of it.
const SLOW_THRESHOLD_NS: u64 = 2_000_000;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn seed_db() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("band", ValueType::Int),
            ("val", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows: Vec<Row> = (0..VIEWS * 32).map(|i| row![i, i % VIEWS, i * 3]).collect();
    let mut db = Database::new();
    db.create_table("kv", Table::from_rows(schema, rows).expect("valid rows"))
        .expect("fresh");
    db
}

/// Nanoseconds of `names` spans in the trace, summed across the tree.
fn span_ns(rec: &TraceRecord, names: &[&str]) -> u64 {
    rec.spans
        .iter()
        .filter(|s| names.contains(&s.name.as_str()))
        .map(|s| s.duration_ns)
        .sum()
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let duration = Duration::from_millis(env_u64("ESM_LOAD_DURATION_MS", 900));
    let clients = env_u64("ESM_LOAD_CLIENTS", 8).max(1) as usize;
    let read_ratio = env_f64("ESM_LOAD_READ_RATIO", 0.7).clamp(0.0, 1.0);
    let delay_ns = env_u64("ESM_LOAD_SYNC_DELAY_US", 5_000) * 1_000;
    let mut results = BenchResults::new();

    // A durable engine with the chaos knob installed and every request
    // traced; the slow threshold sits well under the injected delay.
    let wal_dir = std::env::temp_dir().join(format!("esm-bench-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let sync_delay = Arc::new(AtomicU64::new(0));
    // The ring must hold the WHOLE fault window: with the default 32
    // slots the stalled commits get evicted by the backlog-drain
    // commits that follow the window (slow too, but queue-bound), and
    // the attribution check would read only the aftermath.
    let traced = TelemetryConfig::default()
        .slow_threshold_ns(SLOW_THRESHOLD_NS)
        .trace_capacity(512)
        .trace_sample_every(1);
    // `group_commit(1)` = durable-before-ack with the cross-session
    // group-commit gate: every committer either fsyncs (leader) or
    // parks on the gate (follower), so a sync stall is *visible* as
    // `commit_fsync` / `group_commit_wait` spans. (The lazy
    // `group_commit > 1` modes ack before syncing — a stall there shows
    // up as lock contention, which is exactly the misattribution this
    // harness exists to rule out on the durable path.)
    let durability = DurabilityConfig::new(&wal_dir)
        .group_commit(1)
        .telemetry_config(traced.clone())
        .sync_delay_handle(Arc::clone(&sync_delay));
    let engine = EngineServer::with_durability(seed_db(), 16, Durability::Durable(durability))
        .expect("durable engine");
    for b in 0..VIEWS {
        engine
            .define_view(
                format!("w{b}"),
                "kv",
                &ViewDef::base().select(Predicate::eq(Operand::col("band"), Operand::val(b))),
            )
            .expect("view compiles");
    }
    let server = NetServer::bind(
        engine.as_engine(),
        "127.0.0.1:0",
        NetServerConfig::default().telemetry_config(traced),
    )
    .expect("loopback bind");
    let addr = server.local_addr();

    let reads = Histogram::new();
    let commits = Histogram::new();
    let in_window = Arc::new(AtomicU64::new(0));
    let window = duration / 3;
    println!(
        "sustained load: {clients} clients, {:.0}% reads, {}ms total, \
         {}µs fsync stall in the middle {}ms",
        read_ratio * 100.0,
        duration.as_millis(),
        delay_ns / 1_000,
        window.as_millis()
    );

    let start = Instant::now();
    std::thread::scope(|scope| {
        // The fault controller: clean third, stalled third, clean third.
        let controller_delay = Arc::clone(&sync_delay);
        let controller_flag = Arc::clone(&in_window);
        scope.spawn(move || {
            std::thread::sleep(window);
            controller_flag.store(1, Ordering::SeqCst);
            controller_delay.store(delay_ns, Ordering::SeqCst);
            std::thread::sleep(window);
            controller_delay.store(0, Ordering::SeqCst);
            controller_flag.store(0, Ordering::SeqCst);
        });
        for client in 0..clients {
            let reads = &reads;
            let commits = &commits;
            scope.spawn(move || {
                let remote = RemoteEngine::connect(addr).expect("loopback connect");
                remote.telemetry_registry().set_trace_sample_every(1);
                let session = Session::new(remote.as_engine());
                let view = format!("w{}", client as i64 % VIEWS);
                let mut i: usize = 0;
                while start.elapsed() < duration {
                    let op_start = Instant::now();
                    // Deterministic read/commit interleave at the
                    // requested ratio, no RNG needed.
                    let reads_due = (i as f64 * read_ratio).floor() as usize;
                    let prior_reads = ((i.saturating_sub(1)) as f64 * read_ratio).floor() as usize;
                    if i > 0 && reads_due > prior_reads {
                        session.read(&view).expect("readable");
                        reads.record(
                            u64::try_from(op_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    } else {
                        let id = 1_000_000 + (client * 1_000_000 + i) as i64;
                        let band = client as i64 % VIEWS;
                        session
                            .transact(move |db: &mut Database| {
                                db.table_mut("kv")?.upsert(row![id, band, 1])?;
                                Ok(())
                            })
                            .expect("commit lands");
                        commits.record(
                            u64::try_from(op_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                    i += 1;
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let read_lat = reads.snapshot();
    let commit_lat = commits.snapshot();
    let total_ops = read_lat.count + commit_lat.count;
    let ops_per_s = total_ops as f64 / elapsed.as_secs_f64();
    for (kind, lat) in [("read", &read_lat), ("commit", &commit_lat)] {
        println!(
            "  {kind}: {} ops, p50 {} p95 {} p99 {}",
            lat.count,
            lat.p50(),
            lat.p95(),
            lat.p99()
        );
        results.record_tailed(
            format!("load/{kind}"),
            lat.p50() as f64,
            lat,
            format!("{kind} under sustained load with mid-run fsync stall"),
        );
    }
    results.record(
        "load/throughput",
        1e9 / ops_per_s.max(1e-9),
        format!("{ops_per_s:.0} mixed ops/s across {clients} clients"),
    );

    // The chaos verdict, read from the traces: fetch the merged TRACE
    // report over the wire and demand the stall is attributed to
    // durability spans, not queueing.
    let probe = RemoteEngine::connect(addr).expect("probe connects");
    let report = probe.traces().expect("TRACE over the wire");
    let slow_commits: Vec<&TraceRecord> = report
        .slow
        .iter()
        .filter(|r| r.root == "net:commit")
        .collect();
    println!(
        "  slow ring: {} traces, {} of them commits",
        report.slow.len(),
        slow_commits.len()
    );
    if std::env::var("ESM_LOAD_DUMP").is_ok() {
        for r in slow_commits.iter().take(80) {
            println!(
                "    commit {} total {}us queue {}us fsync {}us gcw {}us wal {}us validate {}us snap {}us handler {}us",
                r.id,
                r.duration_ns / 1000,
                span_ns(r, &["net_queue_wait"]) / 1000,
                span_ns(r, &["commit_fsync"]) / 1000,
                span_ns(r, &["group_commit_wait"]) / 1000,
                span_ns(r, &["commit_wal_append"]) / 1000,
                span_ns(r, &["commit_validate"]) / 1000,
                span_ns(r, &["commit_snapshot"]) / 1000,
                span_ns(r, &["net_handler"]) / 1000,
            );
        }
    }
    assert!(
        !slow_commits.is_empty(),
        "the {delay_ns}ns fsync stall produced no slow commit traces — tail capture is broken"
    );
    let durability_ns: u64 = slow_commits
        .iter()
        .map(|r| span_ns(r, &["commit_fsync", "group_commit_wait"]))
        .sum();
    let queue_ns: u64 = slow_commits
        .iter()
        .map(|r| span_ns(r, &["net_queue_wait"]))
        .sum();
    assert!(
        durability_ns > queue_ns,
        "slow traces blame queueing ({queue_ns}ns) over durability ({durability_ns}ns) — \
         the stall was misattributed"
    );
    let deepest_stall = slow_commits
        .iter()
        .map(|r| span_ns(r, &["commit_fsync", "group_commit_wait"]))
        .max()
        .unwrap_or(0);
    assert!(
        deepest_stall >= delay_ns / 2,
        "no slow commit trace holds even half the injected {delay_ns}ns delay \
         in its fsync/group-commit spans (max {deepest_stall}ns)"
    );
    println!(
        "  stall attribution: {durability_ns}ns in fsync/group-commit spans vs \
         {queue_ns}ns queue wait across {} slow commits (deepest {deepest_stall}ns)",
        slow_commits.len()
    );
    results.record(
        "load/stall_attribution_ratio",
        (durability_ns as f64 / queue_ns.max(1) as f64).min(1e6),
        format!(
            "fsync-family ns / queue-wait ns in slow commit traces = \
             {:.1}x (gate > 1x)",
            durability_ns as f64 / queue_ns.max(1) as f64
        ),
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);

    crash_under_load(&mut results, clients);

    let path = results
        .write_json(dir, "load")
        .expect("write BENCH_load.json");
    println!("wrote {}", path.display());
}

/// Act four: a coordinator crash in the middle of a full-stack commit
/// workload. Socket clients hammer a durable sharded engine; mid-run a
/// [`FailPoint::AfterPrepare`] wedges a cross-shard transaction between
/// its prepare and resolution fsyncs, and the whole process-side engine
/// is then abandoned without any orderly shutdown (`mem::forget`, so no
/// destructor gets to tidy the WAL). Recovery from the directory must
/// produce every commit a client saw acknowledged — settled means
/// settled — and must presume-abort the wedged in-doubt transaction.
fn crash_under_load(results: &mut BenchResults, clients: usize) {
    let crash_dir =
        std::env::temp_dir().join(format!("esm-bench-load-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&crash_dir);
    const KEY_RANGE: i64 = 1_000_000;
    let engine = ShardedEngineServer::with_durability(
        seed_db(),
        ShardRouter::uniform_int(4, 0, KEY_RANGE).expect("router"),
        // Durable-before-ack: a client that saw its commit return is
        // entitled to find it after the crash.
        DurabilityConfig::new(&crash_dir)
            .group_commit(1)
            .checkpoint_every(0)
            .maintenance_interval_ms(0),
    )
    .expect("durable sharded engine");
    let server = NetServer::bind(
        engine.as_engine(),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("loopback bind");
    let addr = server.local_addr();

    println!(
        "crash-under-load: {clients} clients committing, coordinator crash mid-run \
         (FailPoint::AfterPrepare, then abandon without shutdown)"
    );
    let acked: std::sync::Mutex<Vec<i64>> = std::sync::Mutex::new(Vec::new());
    let crashed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let acked = &acked;
        let crashed = &crashed;
        for client in 0..clients {
            scope.spawn(move || {
                let remote = RemoteEngine::connect(addr).expect("loopback connect");
                let mut i = 0i64;
                while crashed.load(Ordering::SeqCst) == 0 {
                    let id = 1_000 + (client as i64) * 10_000 + i;
                    let committed = remote.transact(4, &move |db: &mut Database| {
                        db.table_mut("kv")?.upsert(row![id, id % VIEWS, 1])?;
                        Ok(())
                    });
                    match committed {
                        Ok(_) => acked.lock().expect("acked list").push(id),
                        // The crash severed the connection mid-request;
                        // that commit was never acknowledged.
                        Err(_) => break,
                    }
                    i += 1;
                }
            });
        }
        // Let the workload settle in, then crash the coordinator.
        std::thread::sleep(Duration::from_millis(300));
        let wedged = engine.transact_keys_failpoint(
            &[row![0i64], row![KEY_RANGE - 1]],
            1,
            FailPoint::AfterPrepare,
            |db| {
                let t = db.table_mut("kv")?;
                t.upsert(row![0i64, 0i64, -777i64])?;
                t.upsert(row![KEY_RANGE - 1, 0i64, -777i64])?;
                Ok(())
            },
        );
        assert!(wedged.is_err(), "the failpoint must wedge the transaction");
        crashed.store(1, Ordering::SeqCst);
    });
    // Kill the front end (clients are already stopping) and abandon the
    // engine with prejudice: no Drop, no final sync, exactly what a
    // crashed process leaves behind.
    server.shutdown();
    std::mem::forget(engine);

    let acked = acked.into_inner().expect("acked list");
    let (recovered, report) = ShardedEngineServer::recover(&crash_dir).expect("recovers");
    let table = recovered.table("kv").expect("table recovered");
    let missing: Vec<i64> = acked
        .iter()
        .copied()
        .filter(|id| table.get_by_key(&row![*id]).is_none())
        .collect();
    assert!(
        missing.is_empty(),
        "recovery lost {} of {} acknowledged commits (first missing id: {:?})",
        missing.len(),
        acked.len(),
        missing.first()
    );
    // The wedged transaction died between prepare and resolution:
    // presumed abort, on every shard.
    for key in [0i64, KEY_RANGE - 1] {
        if let Some(r) = table.get_by_key(&row![key]) {
            assert_ne!(
                r[2].as_int(),
                Some(-777),
                "the in-doubt transaction leaked a write through recovery"
            );
        }
    }
    assert!(
        report.aborted_in_doubt > 0,
        "recovery should have found (and aborted) the wedged in-doubt transaction"
    );
    println!(
        "  {} acked commits, all recovered; {} in-doubt aborted, {} finished",
        acked.len(),
        report.aborted_in_doubt,
        report.committed_in_doubt
    );
    results.record(
        "load/crash_acked_commits_recovered",
        acked.len() as f64,
        format!(
            "{} acknowledged commits all present after coordinator crash + recovery",
            acked.len()
        ),
    );
    let _ = std::fs::remove_dir_all(&crash_dir);
}
