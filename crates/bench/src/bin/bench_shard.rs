//! Sharding perf trajectory: 1-shard vs 4-shard commit throughput on
//! disjoint keys, a cross-shard transaction ratio sweep, and replica
//! read scaling (snapshot reads on a write-loaded primary vs the same
//! reads offloaded to two WAL-fed replicas). Emits `BENCH_shard.json`
//! so successive PRs can watch partitioning stay a win.
//!
//! Why 4 shards beat 1 even on one core: a commit's cost is dominated
//! by work proportional to the *shard piece* it touches (snapshot
//! clone, diff, apply under the shard lock). Partitioning cuts every
//! piece to 1/4, and on multi-core hardware the four shard locks also
//! commit in parallel. The acceptance gate asserts ≥ 2x.
//!
//! Why replicas win even on one core: a cross-shard commit holds its
//! participants' write locks across the prepare/resolve fsyncs, so a
//! primary-side snapshot read stalls for whole fsyncs while the CPU
//! sits idle; a replica serves the same read from its own engine with
//! no writer to wait on. The acceptance gate asserts ≥ 1.5x aggregate.
//!
//! Usage: `cargo run --release -p esm-bench --bin bench_shard [dir]`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use esm_bench::fmt_ns;
use esm_bench::results::BenchResults;
use esm_engine::{
    DurabilityConfig, Engine, ReplicaConfig, ReplicaEngine, ShardRouter, ShardedEngineServer,
};
use esm_store::{row, Database, Row, Schema, Table, ValueType};

const ROWS: i64 = 8_000;
const THREADS: usize = 4;
const COMMITS_PER_THREAD: usize = 60;
const SWEEP_COMMITS: usize = 200;
const REPS: usize = 5;
const READERS: usize = 2;
const READ_WINDOW: Duration = Duration::from_millis(600);
const READ_REPS: usize = 3;

fn seed_db() -> Database {
    let schema = Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"])
        .expect("valid schema");
    let rows: Vec<Row> = (0..ROWS).map(|i| row![i, format!("v{i}")]).collect();
    let mut db = Database::new();
    db.create_table("kv", Table::from_rows(schema, rows).expect("valid rows"))
        .expect("fresh");
    db
}

fn engine(shards: usize) -> ShardedEngineServer {
    let router = if shards == 1 {
        ShardRouter::single()
    } else {
        ShardRouter::uniform_int(shards, 0, ROWS).expect("router")
    };
    ShardedEngineServer::with_router(seed_db(), router).expect("sharded engine")
}

/// `THREADS` workers, each committing `COMMITS_PER_THREAD` keyed
/// single-row upserts inside its own key quarter (disjoint keys: every
/// commit takes the fast path). Returns median ns per commit over
/// `REPS` runs, each on a fresh engine.
fn disjoint_commit_ns(shards: usize) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|rep| {
            let engine = engine(shards);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let engine = engine.clone();
                    scope.spawn(move || {
                        let quarter = ROWS / THREADS as i64;
                        for i in 0..COMMITS_PER_THREAD as i64 {
                            let key = t as i64 * quarter + (i * 131 + rep as i64) % quarter;
                            engine
                                .transact_keys(&[row![key]], 4, |db| {
                                    db.table_mut("kv")?.upsert(row![key, format!("w{t}_{i}")])?;
                                    Ok(())
                                })
                                .expect("disjoint keys commit");
                        }
                    });
                }
            });
            let elapsed = start.elapsed().as_nanos() as f64;
            let commits = engine.metrics().commits;
            assert_eq!(commits as usize, THREADS * COMMITS_PER_THREAD);
            assert_eq!(
                engine.metrics().shard.cross_shard_commits,
                0,
                "disjoint quarters stay on the fast path"
            );
            elapsed / commits as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// One thread, `SWEEP_COMMITS` transactions of which `pct`% are 2-key
/// cross-shard transfers (the rest single-key upserts), on a 4-shard
/// engine. Returns (median ns per commit, observed cross-shard share).
fn cross_ratio_ns(pct: usize) -> (f64, f64) {
    let mut share = 0.0;
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let engine = engine(4);
            let quarter = ROWS / 4;
            let start = Instant::now();
            for i in 0..SWEEP_COMMITS {
                let k = (i as i64 * 197) % quarter;
                if i % 100 < pct {
                    // Transfer between shard 0 and shard 2: always 2PC.
                    let (a, b) = (k, 2 * quarter + k);
                    engine
                        .transact_keys(&[row![a], row![b]], 4, |db| {
                            let t = db.table_mut("kv")?;
                            t.upsert(row![a, "from"])?;
                            t.upsert(row![b, "to"])?;
                            Ok(())
                        })
                        .expect("transfer commits");
                } else {
                    engine
                        .transact_keys(&[row![k]], 4, |db| {
                            db.table_mut("kv")?.upsert(row![k, "solo"])?;
                            Ok(())
                        })
                        .expect("upsert commits");
                }
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            let m = engine.metrics();
            assert_eq!(m.commits as usize, SWEEP_COMMITS);
            share = m.shard.cross_shard_commits as f64 / m.commits as f64;
            elapsed / SWEEP_COMMITS as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (samples[samples.len() / 2], share)
}

/// Aggregate snapshot-read throughput (reads/sec) of `READERS` reader
/// threads against `targets` (round-robin) while one writer hammers
/// the primary with cross-shard transfers whose 2PC locks cover the
/// read's shards.
fn read_throughput(
    primary: &ShardedEngineServer,
    targets: &[Arc<dyn Engine>],
    epoch: &AtomicU64,
) -> f64 {
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let quarter = ROWS / 4;
    let commits_before = primary.metrics().commits;
    let start = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                // `epoch` spans the whole scenario so every write lands
                // a fresh value: re-upserting a row's current value is
                // an empty diff the engine elides commit-free, which
                // would silently turn later windows into no-op loops.
                let n = epoch.fetch_add(1, Ordering::Relaxed) as i64;
                let (a, b) = ((n * 197) % quarter, 2 * quarter + (n * 197) % quarter);
                primary
                    .transact_keys(&[row![a], row![b]], 4, |db| {
                        let t = db.table_mut("kv")?;
                        t.upsert(row![a, format!("from{n}")])?;
                        t.upsert(row![b, format!("to{n}")])?;
                        Ok(())
                    })
                    .expect("writer commits");
            }
        });
        std::thread::scope(|inner| {
            for r in 0..READERS {
                let target = &targets[r % targets.len()];
                let reads = &reads;
                inner.spawn(move || {
                    let deadline = Instant::now() + READ_WINDOW;
                    while Instant::now() < deadline {
                        // A snapshot read visits the shards every time
                        // (a cached view window would dilute the
                        // comparison to mat-mutex hits): on the primary
                        // it queues behind the writer's 2PC lock holds,
                        // on a replica there is no writer to wait on.
                        let window = target.table("kv").expect("snapshot read");
                        assert!(!window.is_empty(), "table serves rows");
                        reads.fetch_add(1, Ordering::Relaxed);
                        // Request/response clients with think time, not
                        // closed spin loops: a spinning reader on a
                        // reader-preferring rwlock starves the writer
                        // outright, which benches the lock's fairness
                        // policy instead of the fleet.
                        std::thread::sleep(Duration::from_micros(100));
                    }
                });
            }
        });
        stop.store(true, Ordering::Relaxed);
    });
    let committed = primary.metrics().commits - commits_before;
    eprintln!(
        "  window: {} reads, {committed} commits",
        reads.load(Ordering::Relaxed)
    );
    assert!(
        committed >= 5,
        "write load must keep flowing under the readers (got {committed} commits)"
    );
    reads.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

/// The replica read-scaling scenario: the same snapshot-read workload,
/// first with every reader on the write-loaded primary, then with the
/// readers spread over two WAL-fed replicas. Returns (primary-only
/// reads/sec, with-replicas reads/sec), medians over `READ_REPS`.
fn replica_read_scaling() -> (f64, f64) {
    let base = std::env::temp_dir().join(format!("esm-bench-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let primary = ShardedEngineServer::with_durability(
        seed_db(),
        ShardRouter::uniform_int(4, 0, ROWS).expect("router"),
        // Production cadence: the maintenance thread checkpoints every
        // 256 records, bounding the uncheckpointed window so per-commit
        // cost stays flat across measurement windows.
        DurabilityConfig::new(base.join("primary")).group_commit(1),
    )
    .expect("durable primary");

    let replicas: Vec<ReplicaEngine> = (0..2)
        .map(|i| {
            let source = primary.repl_source().expect("durable primary ships");
            ReplicaEngine::bootstrap(
                source,
                // A coarse poll batches WAL shipping: each pass that
                // ships bytes fsyncs the mirror, and on one disk those
                // fsyncs share an ext4 journal with the primary's own
                // commit fsyncs — polling hot would bench the journal,
                // not the reads.
                ReplicaConfig::new(base.join(format!("replica-{i}"))).poll_interval_ms(1000),
            )
            .expect("replica bootstraps")
        })
        .collect();

    let primary_targets: Vec<Arc<dyn Engine>> = vec![primary.as_engine()];
    let replica_targets: Vec<Arc<dyn Engine>> = replicas.iter().map(|r| r.as_engine()).collect();

    // One discarded warmup window per case (page cache, allocator,
    // view materialization all settle), then interleave the measured
    // reps so drift hits both cases alike.
    let epoch = AtomicU64::new(0);
    read_throughput(&primary, &primary_targets, &epoch);
    read_throughput(&primary, &replica_targets, &epoch);
    let mut on_primary: Vec<f64> = Vec::with_capacity(READ_REPS);
    let mut on_replicas: Vec<f64> = Vec::with_capacity(READ_REPS);
    for _ in 0..READ_REPS {
        on_primary.push(read_throughput(&primary, &primary_targets, &epoch));
        on_replicas.push(read_throughput(&primary, &replica_targets, &epoch));
    }
    on_primary.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    on_replicas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    drop(replicas);
    let _ = std::fs::remove_dir_all(&base);
    (on_primary[READ_REPS / 2], on_replicas[READ_REPS / 2])
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut results = BenchResults::new();

    let single = disjoint_commit_ns(1);
    let four = disjoint_commit_ns(4);
    for (label, ns) in [("1shard", single), ("4shard", four)] {
        results.record(
            format!("shard/commit_disjoint/{label}"),
            ns,
            format!("{THREADS} threads x {COMMITS_PER_THREAD} keyed upserts, {ROWS} rows"),
        );
        println!("disjoint commits ({label:>6}): {}/commit", fmt_ns(ns));
    }
    let speedup = single / four;
    println!("speedup: {speedup:.2}x");

    for pct in [0usize, 25, 50, 100] {
        let (ns, share) = cross_ratio_ns(pct);
        results.record(
            format!("shard/cross_ratio/p{pct}"),
            ns,
            format!(
                "4 shards, {SWEEP_COMMITS} commits, {:.0}% cross-shard (2PC)",
                share * 100.0
            ),
        );
        println!(
            "cross-shard ratio {pct:>3}%: {}/commit ({:.0}% ran 2PC)",
            fmt_ns(ns),
            share * 100.0
        );
    }

    let (on_primary, on_replicas) = replica_read_scaling();
    for (label, rps) in [("primary_only", on_primary), ("with_replicas", on_replicas)] {
        results.record(
            format!("shard/replica_reads/{label}"),
            1e9 / rps,
            format!(
                "{READERS} readers x {}ms snapshot reads under cross-shard write load",
                READ_WINDOW.as_millis()
            ),
        );
        println!(
            "replica reads ({label:>13}): {rps:.0} reads/s ({}/read)",
            fmt_ns(1e9 / rps)
        );
    }
    let read_scaling = on_replicas / on_primary;
    println!("read scaling: {read_scaling:.2}x");

    // The acceptance gate: partitioning the commit pipeline must at
    // least double disjoint-key throughput.
    assert!(
        speedup >= 2.0,
        "4-shard disjoint-key commits must be >= 2x single-shard \
         (got {speedup:.2}x: {} vs {})",
        fmt_ns(single),
        fmt_ns(four)
    );
    // And offloading keyed reads to two replicas must lift aggregate
    // read throughput off the write-loaded primary.
    assert!(
        read_scaling >= 1.5,
        "primary+2-replica reads must be >= 1.5x primary-only \
         (got {read_scaling:.2}x: {on_replicas:.0} vs {on_primary:.0} reads/s)"
    );

    match results.write_json(&out_dir, "shard") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write BENCH_shard.json into {out_dir}: {e}");
            std::process::exit(1);
        }
    }
}
