//! Sharding perf trajectory: 1-shard vs 4-shard commit throughput on
//! disjoint keys, plus a cross-shard transaction ratio sweep. Emits
//! `BENCH_shard.json` so successive PRs can watch partitioning stay a
//! win.
//!
//! Why 4 shards beat 1 even on one core: a commit's cost is dominated
//! by work proportional to the *shard piece* it touches (snapshot
//! clone, diff, apply under the shard lock). Partitioning cuts every
//! piece to 1/4, and on multi-core hardware the four shard locks also
//! commit in parallel. The acceptance gate asserts ≥ 2x.
//!
//! Usage: `cargo run --release -p esm-bench --bin bench_shard [dir]`

use std::time::Instant;

use esm_bench::fmt_ns;
use esm_bench::results::BenchResults;
use esm_engine::{ShardRouter, ShardedEngineServer};
use esm_store::{row, Database, Row, Schema, Table, ValueType};

const ROWS: i64 = 8_000;
const THREADS: usize = 4;
const COMMITS_PER_THREAD: usize = 60;
const SWEEP_COMMITS: usize = 200;
const REPS: usize = 5;

fn seed_db() -> Database {
    let schema = Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"])
        .expect("valid schema");
    let rows: Vec<Row> = (0..ROWS).map(|i| row![i, format!("v{i}")]).collect();
    let mut db = Database::new();
    db.create_table("kv", Table::from_rows(schema, rows).expect("valid rows"))
        .expect("fresh");
    db
}

fn engine(shards: usize) -> ShardedEngineServer {
    let router = if shards == 1 {
        ShardRouter::single()
    } else {
        ShardRouter::uniform_int(shards, 0, ROWS).expect("router")
    };
    ShardedEngineServer::with_router(seed_db(), router).expect("sharded engine")
}

/// `THREADS` workers, each committing `COMMITS_PER_THREAD` keyed
/// single-row upserts inside its own key quarter (disjoint keys: every
/// commit takes the fast path). Returns median ns per commit over
/// `REPS` runs, each on a fresh engine.
fn disjoint_commit_ns(shards: usize) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|rep| {
            let engine = engine(shards);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let engine = engine.clone();
                    scope.spawn(move || {
                        let quarter = ROWS / THREADS as i64;
                        for i in 0..COMMITS_PER_THREAD as i64 {
                            let key = t as i64 * quarter + (i * 131 + rep as i64) % quarter;
                            engine
                                .transact_keys(&[row![key]], 4, |db| {
                                    db.table_mut("kv")?.upsert(row![key, format!("w{t}_{i}")])?;
                                    Ok(())
                                })
                                .expect("disjoint keys commit");
                        }
                    });
                }
            });
            let elapsed = start.elapsed().as_nanos() as f64;
            let commits = engine.metrics().commits;
            assert_eq!(commits as usize, THREADS * COMMITS_PER_THREAD);
            assert_eq!(
                engine.metrics().shard.cross_shard_commits,
                0,
                "disjoint quarters stay on the fast path"
            );
            elapsed / commits as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// One thread, `SWEEP_COMMITS` transactions of which `pct`% are 2-key
/// cross-shard transfers (the rest single-key upserts), on a 4-shard
/// engine. Returns (median ns per commit, observed cross-shard share).
fn cross_ratio_ns(pct: usize) -> (f64, f64) {
    let mut share = 0.0;
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let engine = engine(4);
            let quarter = ROWS / 4;
            let start = Instant::now();
            for i in 0..SWEEP_COMMITS {
                let k = (i as i64 * 197) % quarter;
                if i % 100 < pct {
                    // Transfer between shard 0 and shard 2: always 2PC.
                    let (a, b) = (k, 2 * quarter + k);
                    engine
                        .transact_keys(&[row![a], row![b]], 4, |db| {
                            let t = db.table_mut("kv")?;
                            t.upsert(row![a, "from"])?;
                            t.upsert(row![b, "to"])?;
                            Ok(())
                        })
                        .expect("transfer commits");
                } else {
                    engine
                        .transact_keys(&[row![k]], 4, |db| {
                            db.table_mut("kv")?.upsert(row![k, "solo"])?;
                            Ok(())
                        })
                        .expect("upsert commits");
                }
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            let m = engine.metrics();
            assert_eq!(m.commits as usize, SWEEP_COMMITS);
            share = m.shard.cross_shard_commits as f64 / m.commits as f64;
            elapsed / SWEEP_COMMITS as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (samples[samples.len() / 2], share)
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut results = BenchResults::new();

    let single = disjoint_commit_ns(1);
    let four = disjoint_commit_ns(4);
    for (label, ns) in [("1shard", single), ("4shard", four)] {
        results.record(
            format!("shard/commit_disjoint/{label}"),
            ns,
            format!("{THREADS} threads x {COMMITS_PER_THREAD} keyed upserts, {ROWS} rows"),
        );
        println!("disjoint commits ({label:>6}): {}/commit", fmt_ns(ns));
    }
    let speedup = single / four;
    println!("speedup: {speedup:.2}x");

    for pct in [0usize, 25, 50, 100] {
        let (ns, share) = cross_ratio_ns(pct);
        results.record(
            format!("shard/cross_ratio/p{pct}"),
            ns,
            format!(
                "4 shards, {SWEEP_COMMITS} commits, {:.0}% cross-shard (2PC)",
                share * 100.0
            ),
        );
        println!(
            "cross-shard ratio {pct:>3}%: {}/commit ({:.0}% ran 2PC)",
            fmt_ns(ns),
            share * 100.0
        );
    }

    // The acceptance gate: partitioning the commit pipeline must at
    // least double disjoint-key throughput.
    assert!(
        speedup >= 2.0,
        "4-shard disjoint-key commits must be >= 2x single-shard \
         (got {speedup:.2}x: {} vs {})",
        fmt_ns(single),
        fmt_ns(four)
    );

    match results.write_json(&out_dir, "shard") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write BENCH_shard.json into {out_dir}: {e}");
            std::process::exit(1);
        }
    }
}
