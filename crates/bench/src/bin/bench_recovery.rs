//! Recovery perf trajectory: replay-from-genesis vs checkpointed
//! recovery over the same committed history. Emits `BENCH_recovery.json`
//! so successive PRs can watch the replay shortcut stay a shortcut.
//!
//! Usage: `cargo run --release -p esm-bench --bin bench_recovery [dir]`

use esm_bench::results::BenchResults;
use esm_bench::{fmt_ns, median_ns_per_call};
use esm_engine::{Durability, DurabilityConfig, EngineServer, RecoveryReport};
use esm_relational::ViewDef;
use esm_store::{row, Database, Schema, Table, ValueType};

const COMMITS: usize = 400;

fn baseline() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("owner", ValueType::Str),
            ("balance", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let mut db = Database::new();
    db.create_table(
        "accounts",
        Table::from_rows(schema, vec![row![0, "system", 0]]).expect("valid rows"),
    )
    .expect("fresh");
    db
}

/// Commit `COMMITS` records durably under `cfg`, then return the live
/// snapshot for the recovery equality check.
fn record_history(cfg: DurabilityConfig) -> Database {
    let engine = EngineServer::with_durability(baseline(), 4, Durability::Durable(cfg))
        .expect("durable engine");
    engine
        .define_view("all", "accounts", &ViewDef::base())
        .expect("view compiles");
    for i in 0..COMMITS as i64 {
        engine
            .edit_view_optimistic("all", 1, |v| {
                v.upsert(row![1 + i, format!("owner{i}"), i % 97])?;
                if i % 5 == 4 {
                    v.delete_by_key(&row![1 + i - 4]);
                }
                Ok(())
            })
            .expect("commits");
    }
    engine.sync_wal().expect("syncs");
    engine.snapshot()
}

fn measure(cfg: &DurabilityConfig) -> (f64, RecoveryReport, Database) {
    let (engine, report) = EngineServer::recover_with(cfg.clone()).expect("recovers");
    let snapshot = engine.snapshot();
    drop(engine);
    let cfg = cfg.clone();
    let median = median_ns_per_call(7, 1, || {
        let (engine, _report) = EngineServer::recover_with(cfg.clone()).expect("recovers");
        std::hint::black_box(engine.snapshot());
    });
    (median, report, snapshot)
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let scratch = std::env::temp_dir().join(format!("esm-bench-recovery-{}", std::process::id()));
    let mut results = BenchResults::new();
    let mut replayed = Vec::new();

    for (label, checkpoint_every) in [("genesis", 0u64), ("checkpointed", 100u64)] {
        let dir = scratch.join(label);
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DurabilityConfig::new(&dir)
            .segment_bytes(16 * 1024)
            .group_commit(8)
            .checkpoint_every(checkpoint_every);
        let live = record_history(cfg.clone());
        let (median, report, recovered) = measure(&cfg);
        assert_eq!(recovered, live, "recovery reproduces the live state");
        assert_eq!(report.last_seq as usize, COMMITS);
        results.record(
            format!("engine/recovery_{label}/{COMMITS}"),
            median,
            format!(
                "replayed {} of {} records (checkpoint at {})",
                report.records_replayed, report.last_seq, report.checkpoint_seq
            ),
        );
        println!(
            "recovery ({label:>12}): {} — replayed {} of {} records",
            fmt_ns(median),
            report.records_replayed,
            report.last_seq
        );
        replayed.push(report.records_replayed);
    }

    assert!(
        replayed[1] < replayed[0],
        "checkpointed recovery must replay strictly fewer records \
         ({} vs {})",
        replayed[1],
        replayed[0]
    );

    // Legacy-text scenario: the same history re-encoded in the
    // pre-binary text framing — the decode path an upgraded
    // deployment's old segments still take. Keeps the text decoder
    // honest and shows what the binary codec buys at recovery time
    // (compare against `recovery_genesis`, which replays the same
    // record count from binary frames).
    {
        let dir = scratch.join("legacy_text");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DurabilityConfig::new(&dir)
            .segment_bytes(16 * 1024)
            .group_commit(8)
            .checkpoint_every(0);
        let live = record_history(cfg.clone());
        let scan = esm_engine::scan_segments(&dir).expect("scan");
        let (records, _stale) = esm_engine::plan_recovery(0, &scan).expect("plan");
        for entry in std::fs::read_dir(&dir).expect("read dir") {
            let entry = entry.expect("entry");
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".seg"))
            {
                std::fs::remove_file(entry.path()).expect("remove binary segment");
            }
        }
        let text: String = records.iter().map(esm_engine::encode_framed).collect();
        std::fs::write(dir.join(format!("wal-{:020}.seg", 1)), text).expect("write text log");
        let (median, report, recovered) = measure(&cfg);
        assert_eq!(recovered, live, "text recovery reproduces the live state");
        assert_eq!(report.last_seq as usize, COMMITS);
        results.record(
            format!("engine/recovery_legacy_text/{COMMITS}"),
            median,
            format!("replayed {} text-framed records", report.records_replayed),
        );
        println!(
            "recovery ( legacy_text): {} — replayed {} of {} records",
            fmt_ns(median),
            report.records_replayed,
            report.last_seq
        );
    }

    std::fs::remove_dir_all(&scratch).ok();
    match results.write_json(&out_dir, "recovery") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write BENCH_recovery.json into {out_dir}: {e}");
            std::process::exit(1);
        }
    }
}
