//! Materialized-view perf trajectory: incremental delta-maintained reads
//! vs whole-base lens re-runs (10k / 100k rows), and shard-pruned reads
//! vs whole-database assembly on 4 shards. Emits `BENCH_view.json` so
//! successive PRs can watch the read path stay incremental.
//!
//! Why incremental wins: a lens `get` over a view with a projection
//! stage scans the whole base (O(rows)) per read, and the sharded read
//! path used to additionally clone and assemble every shard's database;
//! a maintained window folds in only the deltas committed since the
//! last read (O(changes)) and prunes untouched shards outright. The
//! acceptance gate asserts incremental reads beat full recomputation by
//! ≥ 5x at 100k rows.
//!
//! Usage: `cargo run --release -p esm-bench --bin bench_view [dir]`

use std::time::Instant;

use esm_bench::fmt_ns;
use esm_bench::results::BenchResults;
use esm_engine::{EngineServer, ShardRouter, ShardedEngineServer};
use esm_obs::{Histogram, HistogramSnapshot};
use esm_relational::ViewDef;
use esm_store::{row, Database, Operand, Predicate, Row, Schema, Table, Value, ValueType};

const READS: usize = 16;
const REPS: usize = 3;
const GATE_ROWS: i64 = 100_000;
const GATE_MIN_SPEEDUP: f64 = 5.0;

fn seed_db(rows: i64) -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("grp", ValueType::Int),
            ("val", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows: Vec<Row> = (0..rows).map(|i| row![i, i % 100, i * 7]).collect();
    let mut db = Database::new();
    db.create_table("kv", Table::from_rows(schema, rows).expect("valid rows"))
        .expect("fresh");
    db
}

/// A view whose lens `get` must scan the whole base: the projection
/// stage runs before the (selective) filter, so recomputation is
/// O(rows) while the maintained window stays at ~1% of the base.
fn view_def() -> ViewDef {
    ViewDef::base()
        .project(&["id", "grp"], &[("val", Value::Int(0))])
        .select(Predicate::eq(Operand::col("grp"), Operand::val(7i64)))
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Median ns per read over a commit-then-read loop: `materialized =
/// true` reads through the maintained window (`view.get()`),
/// `materialized = false` re-runs the compiled lens over a fresh base
/// snapshot — the deleted read path, measured as the baseline.
fn unsharded_read_ns(rows: i64, materialized: bool) -> (f64, HistogramSnapshot) {
    let per_read = Histogram::new();
    let samples: Vec<f64> = (0..REPS)
        .map(|rep| {
            let engine = EngineServer::new(seed_db(rows));
            let def = view_def();
            let view = engine.define_view("hot", "kv", &def).expect("compiles");
            let lens = def
                .compile(&engine.table("kv").expect("exists"))
                .expect("compiles");
            view.get().expect("readable"); // warm the window
            let mut total = 0u128;
            for i in 0..READS as i64 {
                let key = (i * 131 + rep as i64) % rows;
                engine
                    .edit_view_optimistic("hot", 4, move |v| {
                        v.upsert(row![key, 7i64])?;
                        Ok(())
                    })
                    .expect("commits");
                let start = Instant::now();
                let window = if materialized {
                    view.get().expect("readable")
                } else {
                    lens.get(&engine.table("kv").expect("exists"))
                };
                let elapsed = start.elapsed().as_nanos();
                per_read.record(u64::try_from(elapsed).unwrap_or(u64::MAX));
                total += elapsed;
                assert!(
                    window.len() >= rows as usize / 100,
                    "window stayed populated"
                );
            }
            total as f64 / READS as f64
        })
        .collect();
    (median(samples), per_read.snapshot())
}

/// Median ns per read of a key-bounded view on a 4-shard engine:
/// `pruned = true` is the live path (one shard's maintained window),
/// `pruned = false` re-runs the lens over a whole-database assembly —
/// exactly what `read_view` used to do per read.
fn sharded_read_ns(rows: i64, pruned: bool) -> (f64, HistogramSnapshot) {
    let per_read = Histogram::new();
    let quarter = rows / 4;
    let samples: Vec<f64> = (0..REPS)
        .map(|rep| {
            let engine = ShardedEngineServer::with_router(
                seed_db(rows),
                ShardRouter::uniform_int(4, 0, rows).expect("router"),
            )
            .expect("sharded engine");
            let def =
                ViewDef::base().select(Predicate::lt(Operand::col("id"), Operand::val(quarter)));
            let view = engine.define_view("low", "kv", &def).expect("compiles");
            let lens = def
                .compile(&engine.table("kv").expect("exists"))
                .expect("compiles");
            view.get().expect("readable"); // warm the windows
            let mut total = 0u128;
            for i in 0..READS as i64 {
                let key = (i * 131 + rep as i64) % quarter;
                engine
                    .transact_keys(&[row![key]], 4, move |db| {
                        db.table_mut("kv")?.upsert(row![key, 7i64, -1])?;
                        Ok(())
                    })
                    .expect("commits");
                let start = Instant::now();
                let window = if pruned {
                    view.get().expect("readable")
                } else {
                    let snap = engine.snapshot();
                    lens.get(snap.table("kv").expect("exists"))
                };
                let elapsed = start.elapsed().as_nanos();
                per_read.record(u64::try_from(elapsed).unwrap_or(u64::MAX));
                total += elapsed;
                assert_eq!(window.len(), quarter as usize);
            }
            total as f64 / READS as f64
        })
        .collect();
    (median(samples), per_read.snapshot())
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut results = BenchResults::new();
    let mut gate_speedup = 0.0;

    for rows in [10_000i64, 100_000] {
        let (incremental, inc_hist) = unsharded_read_ns(rows, true);
        let (full, full_hist) = unsharded_read_ns(rows, false);
        let speedup = full / incremental;
        if rows == GATE_ROWS {
            gate_speedup = speedup;
        }
        for (label, ns, hist) in [
            ("incremental", incremental, &inc_hist),
            ("full_rerun", full, &full_hist),
        ] {
            results.record_tailed(
                format!("view/read/{label}/{rows}"),
                ns,
                hist,
                format!("{READS} commit+read cycles, ~1% window, {rows} rows"),
            );
        }
        println!(
            "unsharded {rows:>6} rows: incremental {}/read (p99 {}) vs full re-run {}/read ({speedup:.1}x)",
            fmt_ns(incremental),
            fmt_ns(inc_hist.p99() as f64),
            fmt_ns(full)
        );
    }

    let (pruned, pruned_hist) = sharded_read_ns(GATE_ROWS, true);
    let (assembled, assembled_hist) = sharded_read_ns(GATE_ROWS, false);
    results.record_tailed(
        format!("view/shard_read/pruned/{GATE_ROWS}"),
        pruned,
        &pruned_hist,
        "key-bounded view, 4 shards, 1 consulted".to_string(),
    );
    results.record_tailed(
        format!("view/shard_read/whole_assembly/{GATE_ROWS}"),
        assembled,
        &assembled_hist,
        "same view via whole-database assembly + lens get".to_string(),
    );
    println!(
        "sharded  {GATE_ROWS:>6} rows: pruned {}/read (p99 {}) vs whole-assembly {}/read ({:.1}x)",
        fmt_ns(pruned),
        fmt_ns(pruned_hist.p99() as f64),
        fmt_ns(assembled),
        assembled / pruned
    );

    // The acceptance gate: maintained windows must beat whole-base
    // recomputation by at least 5x at 100k rows.
    assert!(
        gate_speedup >= GATE_MIN_SPEEDUP,
        "incremental reads must be >= {GATE_MIN_SPEEDUP}x full recomputation at {GATE_ROWS} rows \
         (got {gate_speedup:.2}x)"
    );

    match results.write_json(&out_dir, "view") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write BENCH_view.json into {out_dir}: {e}");
            std::process::exit(1);
        }
    }
}
