//! Network front-end perf trajectory: view-read and commit (optimistic
//! view edit) throughput, in-process vs loopback socket, at 1 / 16 /
//! 256 concurrent clients. Emits `BENCH_net.json`.
//!
//! What multiplexing buys: a single socket client is latency-bound —
//! every operation pays a full request/response round trip before the
//! next can start. With many connections, the server's readiness loop
//! overlaps those round trips and its worker pool executes requests in
//! parallel against the engine's striped pipelines, so aggregate
//! throughput climbs well past the one-client line. The acceptance
//! gate asserts 16 socket clients deliver ≥ 1.2x the read throughput
//! of one socket client (they overlap RTTs even on a small machine);
//! the 256-client line records how far the loop scales.
//!
//! Usage: `cargo run --release -p esm-bench --bin bench_net [dir]`

use std::sync::Arc;
use std::time::Instant;

use esm_bench::results::BenchResults;
use esm_engine::{ArcEngine, Engine, EngineServer};
use esm_net::{NetServer, NetServerConfig, RemoteEngine};
use esm_obs::{Histogram, HistogramSnapshot};
use esm_relational::ViewDef;
use esm_store::{row, Database, Operand, Predicate, Row, Schema, Table, ValueType};

/// Distinct views so readers do not serialize on one window mutex.
const VIEWS: i64 = 8;
const GATE_MIN_SCALING: f64 = 1.2;
/// 256 clients must retain at least half the 16-client commit
/// throughput — the line that caught the 256-client collapse.
const GATE_MIN_COMMIT_RETENTION: f64 = 0.5;

fn seed_db() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("band", ValueType::Int),
            ("val", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows: Vec<Row> = (0..VIEWS * 32).map(|i| row![i, i % VIEWS, i * 3]).collect();
    let mut db = Database::new();
    db.create_table("kv", Table::from_rows(schema, rows).expect("valid rows"))
        .expect("fresh");
    db
}

fn engine_with_views() -> ArcEngine {
    let engine = EngineServer::new(seed_db());
    for b in 0..VIEWS {
        engine
            .define_view(
                format!("w{b}"),
                "kv",
                &ViewDef::base().select(Predicate::eq(Operand::col("band"), Operand::val(b))),
            )
            .expect("view compiles");
    }
    engine.as_engine()
}

/// Run `clients` worker threads, each holding its own engine handle
/// (an in-process clone or its own socket connection), and return
/// aggregate ops/second plus the per-op latency distribution (every
/// thread records into one lock-free histogram).
fn run_clients(
    handles: Vec<ArcEngine>,
    ops_per_client: usize,
    op: impl Fn(&dyn Engine, usize, usize) + Sync,
) -> (f64, HistogramSnapshot) {
    let op = &op;
    let latencies = Histogram::new();
    let latencies_ref = &latencies;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (client, handle) in handles.iter().enumerate() {
            scope.spawn(move || {
                for i in 0..ops_per_client {
                    let op_start = Instant::now();
                    op(&**handle, client, i);
                    latencies_ref
                        .record(u64::try_from(op_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
            });
        }
    });
    let total = handles.len() * ops_per_client;
    (
        total as f64 / start.elapsed().as_secs_f64(),
        latencies.snapshot(),
    )
}

fn read_op(engine: &dyn Engine, client: usize, _i: usize) {
    let view = format!("w{}", client as i64 % VIEWS);
    let t = engine.read_view(&view).expect("readable");
    assert!(!t.is_empty());
}

/// One delta-direct checked commit per op: each client writes its own
/// key range, so throughput measures the commit path (frame decode,
/// queue, pre-image validation, apply) rather than window-CAS retry
/// amplification — 256 optimistic editors fighting over 8 windows
/// measure conflict storms, not the server.
fn commit_op(engine: &dyn Engine, client: usize, i: usize) {
    let band = client as i64 % VIEWS;
    let id = 1_000_000 + (client * 10_000 + i) as i64;
    engine
        .transact(4, &move |db: &mut Database| {
            db.table_mut("kv")?.upsert(row![id, band, 1])?;
            Ok(())
        })
        .expect("commit lands");
}

fn inproc_handles(engine: &ArcEngine, n: usize) -> Vec<ArcEngine> {
    (0..n).map(|_| engine.as_engine()).collect()
}

fn socket_handles(addr: std::net::SocketAddr, n: usize) -> Vec<ArcEngine> {
    (0..n)
        .map(|_| Arc::new(RemoteEngine::connect(addr).expect("loopback connect")) as ArcEngine)
        .collect()
}

fn record(
    results: &mut BenchResults,
    id: String,
    ops_per_s: f64,
    latencies: &HistogramSnapshot,
    note: String,
) {
    let note = format!(
        "{note}, p50 {} p95 {} p99 {}",
        latencies.p50(),
        latencies.p95(),
        latencies.p99()
    );
    println!("  {note}");
    results.record_tailed(id, 1e9 / ops_per_s.max(1e-9), latencies, note);
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let mut results = BenchResults::new();

    // One shared in-process engine and one server fronting an identical
    // engine, so the two transports measure the same workload.
    let inproc = engine_with_views();
    let served = engine_with_views();
    let server =
        NetServer::bind(served, "127.0.0.1:0", NetServerConfig::default()).expect("loopback bind");
    let addr = server.local_addr();

    let mut socket_reads: Vec<(usize, f64)> = Vec::new();
    println!("view-read throughput (ops/s):");
    for &clients in &[1usize, 16, 256] {
        let ops = (4096 / clients).max(16);
        let (in_ops, in_lat) = run_clients(inproc_handles(&inproc, clients), ops, read_op);
        record(
            &mut results,
            format!("net/read/in_process/{clients}"),
            in_ops,
            &in_lat,
            format!("in-process read x{clients}: {in_ops:.0} ops/s"),
        );
        let (so_ops, so_lat) = run_clients(socket_handles(addr, clients), ops, read_op);
        record(
            &mut results,
            format!("net/read/socket/{clients}"),
            so_ops,
            &so_lat,
            format!("loopback-socket read x{clients}: {so_ops:.0} ops/s"),
        );
        socket_reads.push((clients, so_ops));
    }

    let mut socket_commits: Vec<(usize, f64)> = Vec::new();
    println!("commit (delta-direct transact) throughput (ops/s):");
    for &clients in &[1usize, 16, 256] {
        let ops = (1024 / clients).max(4);
        let (in_ops, in_lat) = run_clients(inproc_handles(&inproc, clients), ops, commit_op);
        record(
            &mut results,
            format!("net/commit/in_process/{clients}"),
            in_ops,
            &in_lat,
            format!("in-process commit x{clients}: {in_ops:.0} ops/s"),
        );
        let (so_ops, so_lat) = run_clients(socket_handles(addr, clients), ops, commit_op);
        record(
            &mut results,
            format!("net/commit/socket/{clients}"),
            so_ops,
            &so_lat,
            format!("loopback-socket commit x{clients}: {so_ops:.0} ops/s"),
        );
        socket_commits.push((clients, so_ops));

        // Delete the freshly inserted rows so every client count
        // commits against the same-sized table — otherwise each run's
        // inserts grow the snapshots and validation the next, larger
        // run pays for, biasing the retention ratio.
        let cleanup = |engine: &dyn Engine| {
            engine
                .transact(4, &|db: &mut Database| {
                    let table = db.table_mut("kv")?;
                    let keys: Vec<Row> = table
                        .rows()
                        .filter(|r| r[0].as_int().is_some_and(|id| id >= 1_000_000))
                        .map(|r| row![r[0].clone()])
                        .collect();
                    for key in keys {
                        table.delete_by_key(&key);
                    }
                    Ok(())
                })
                .expect("cleanup commits");
        };
        cleanup(&*inproc);
        cleanup(&*socket_handles(addr, 1)[0]);
    }

    let stats = server.stats();
    println!(
        "server lifetime: {} connections, {} requests",
        stats.accepted, stats.requests
    );
    server.shutdown();

    // The gate: multiplexed socket clients must beat one socket client
    // on aggregate read throughput (RTT overlap is the whole point of
    // the non-blocking front end).
    let one = socket_reads
        .iter()
        .find(|(c, _)| *c == 1)
        .expect("measured")
        .1;
    let sixteen = socket_reads
        .iter()
        .find(|(c, _)| *c == 16)
        .expect("measured")
        .1;
    let scaling = sixteen / one;
    results.record(
        "net/read/socket/scaling_16_over_1",
        scaling * 1000.0,
        format!("16-client / 1-client socket read throughput = {scaling:.2}x (gate >= {GATE_MIN_SCALING}x)"),
    );
    println!("16-client / 1-client socket read scaling: {scaling:.2}x");
    assert!(
        scaling >= GATE_MIN_SCALING,
        "multiplexing gate failed: 16 clients delivered only {scaling:.2}x one client's read throughput (need >= {GATE_MIN_SCALING}x)"
    );

    // The overload gate: commit throughput must not collapse when the
    // connection count far exceeds the worker pool. 256 clients used to
    // deliver ~1/7th of the 16-client line (poller sleep + text codec
    // tax per queued request); with the wake-on-ready poller and binary
    // codec it must hold within 2x.
    let commits_16 = socket_commits
        .iter()
        .find(|(c, _)| *c == 16)
        .expect("measured")
        .1;
    let commits_256 = socket_commits
        .iter()
        .find(|(c, _)| *c == 256)
        .expect("measured")
        .1;
    let retained = commits_256 / commits_16;
    results.record(
        "net/commit/socket/retention_256_over_16",
        retained * 1000.0,
        format!(
            "256-client / 16-client socket commit throughput = {retained:.2}x \
             (gate >= {GATE_MIN_COMMIT_RETENTION}x)"
        ),
    );
    println!("256-client / 16-client socket commit retention: {retained:.2}x");
    assert!(
        retained >= GATE_MIN_COMMIT_RETENTION,
        "overload gate failed: 256 clients delivered only {retained:.2}x the \
         16-client commit throughput (need >= {GATE_MIN_COMMIT_RETENTION}x)"
    );

    let path = results
        .write_json(dir, "net")
        .expect("write BENCH_net.json");
    println!("wrote {}", path.display());
}
