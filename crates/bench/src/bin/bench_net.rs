//! Network front-end perf trajectory: view-read and commit (optimistic
//! view edit) throughput, in-process vs loopback socket, at 1 / 16 /
//! 256 concurrent clients, plus the subscription push path against
//! 64-client polling. Emits `BENCH_net.json`.
//!
//! What multiplexing buys: a single socket client is latency-bound —
//! every operation pays a full request/response round trip before the
//! next can start. With many connections, the server's readiness loop
//! overlaps those round trips and its worker pool executes requests in
//! parallel against the engine's striped pipelines, so aggregate
//! throughput climbs past the one-client line. The acceptance gate
//! asserts 16 socket clients deliver ≥ 0.8x the read throughput of
//! one socket client — no collapse under multiplexing. The margin
//! used to be 1.2x, but that headroom was an artifact of the old
//! busy-poll loop: a single client paid the 200µs idle sleep per
//! round trip, so 16 clients amortizing the naps scaled 6x+. With
//! kernel readiness one client already runs near hardware speed, and
//! on a single-core runner 16 clients merely tie it (~1.1–1.3x);
//! the 256-client line records how far the loop scales.
//!
//! What the epoll loop buys: the old poller slept up to 200µs between
//! sweeps, so a single client's read paid the nap on top of the RTT —
//! p50 sat near 390µs. With kernel readiness the request's first byte
//! wakes the loop; the single-client read p50 gate holds it under
//! 100µs. And what push buys: 64 clients polling a view re-transfer
//! the whole window to learn of one changed row, while 64 subscribers
//! receive exactly the delta — the push path must deliver ≥ 2x the
//! aggregate update rate of polling.
//!
//! Usage: `cargo run --release -p esm-bench --bin bench_net [dir]`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use esm_bench::results::BenchResults;
use esm_engine::{ArcEngine, Engine, EngineServer};
use esm_net::{NetServer, NetServerConfig, RemoteEngine, SubscriptionClient};
use esm_obs::{Histogram, HistogramSnapshot};
use esm_relational::ViewDef;
use esm_store::{row, Database, Operand, Predicate, Row, Schema, Table, ValueType};

/// Distinct views so readers do not serialize on one window mutex.
const VIEWS: i64 = 8;
/// 16 clients must hold at least 0.8x one client's aggregate read
/// throughput — multiplexing must not collapse. See the module doc
/// for why this is not the pre-epoll 1.2: that margin measured
/// busy-poll nap amortization, and a single-core runner now lands
/// anywhere from ~1.0x to ~1.3x run to run.
const GATE_MIN_SCALING: f64 = 0.8;
/// 256 clients must retain at least half the 16-client commit
/// throughput — the line that caught the 256-client collapse.
const GATE_MIN_COMMIT_RETENTION: f64 = 0.5;
/// A single socket client's read p50 must stay under 100µs — the line
/// that caught the poller's idle-sleep tax (p50 ~390µs pre-epoll).
const GATE_MAX_READ_P50_NS: u64 = 100_000;
/// At 64 subscribers, push must deliver at least twice the aggregate
/// update rate of 64 clients polling the same view.
const GATE_MIN_PUSH_OVER_POLL: f64 = 2.0;
const FANOUT_CLIENTS: usize = 64;
const FANOUT_SECS: f64 = 2.0;

fn seed_db() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("band", ValueType::Int),
            ("val", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows: Vec<Row> = (0..VIEWS * 32).map(|i| row![i, i % VIEWS, i * 3]).collect();
    let mut db = Database::new();
    db.create_table("kv", Table::from_rows(schema, rows).expect("valid rows"))
        .expect("fresh");
    db
}

fn engine_with_views() -> ArcEngine {
    let engine = EngineServer::new(seed_db());
    for b in 0..VIEWS {
        engine
            .define_view(
                format!("w{b}"),
                "kv",
                &ViewDef::base().select(Predicate::eq(Operand::col("band"), Operand::val(b))),
            )
            .expect("view compiles");
    }
    engine.as_engine()
}

/// Run `clients` worker threads, each holding its own engine handle
/// (an in-process clone or its own socket connection), and return
/// aggregate ops/second plus the per-op latency distribution (every
/// thread records into one lock-free histogram).
fn run_clients(
    handles: Vec<ArcEngine>,
    ops_per_client: usize,
    op: impl Fn(&dyn Engine, usize, usize) + Sync,
) -> (f64, HistogramSnapshot) {
    let op = &op;
    let latencies = Histogram::new();
    let latencies_ref = &latencies;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (client, handle) in handles.iter().enumerate() {
            scope.spawn(move || {
                for i in 0..ops_per_client {
                    let op_start = Instant::now();
                    op(&**handle, client, i);
                    latencies_ref
                        .record(u64::try_from(op_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
            });
        }
    });
    let total = handles.len() * ops_per_client;
    (
        total as f64 / start.elapsed().as_secs_f64(),
        latencies.snapshot(),
    )
}

fn read_op(engine: &dyn Engine, client: usize, _i: usize) {
    let view = format!("w{}", client as i64 % VIEWS);
    let t = engine.read_view(&view).expect("readable");
    assert!(!t.is_empty());
}

/// One delta-direct checked commit per op: each client writes its own
/// key range, so throughput measures the commit path (frame decode,
/// queue, pre-image validation, apply) rather than window-CAS retry
/// amplification — 256 optimistic editors fighting over 8 windows
/// measure conflict storms, not the server.
fn commit_op(engine: &dyn Engine, client: usize, i: usize) {
    let band = client as i64 % VIEWS;
    let id = 1_000_000 + (client * 10_000 + i) as i64;
    engine
        .transact(4, &move |db: &mut Database| {
            db.table_mut("kv")?.upsert(row![id, band, 1])?;
            Ok(())
        })
        .expect("commit lands");
}

fn inproc_handles(engine: &ArcEngine, n: usize) -> Vec<ArcEngine> {
    (0..n).map(|_| engine.as_engine()).collect()
}

fn socket_handles(addr: std::net::SocketAddr, n: usize) -> Vec<ArcEngine> {
    (0..n)
        .map(|_| Arc::new(RemoteEngine::connect(addr).expect("loopback connect")) as ArcEngine)
        .collect()
}

fn record(
    results: &mut BenchResults,
    id: String,
    ops_per_s: f64,
    latencies: &HistogramSnapshot,
    note: String,
) {
    let note = format!(
        "{note}, p50 {} p95 {} p99 {}",
        latencies.p50(),
        latencies.p95(),
        latencies.p99()
    );
    println!("  {note}");
    results.record_tailed(id, 1e9 / ops_per_s.max(1e-9), latencies, note);
}

/// The update source both fan-out scenarios share: one writer
/// committing single-row upserts into band 0 (view `w0`) as fast as
/// the engine accepts them, until `stop`.
fn run_update_writer(addr: std::net::SocketAddr, stop: &AtomicBool) -> u64 {
    let writer = RemoteEngine::connect(addr).expect("writer connects");
    let mut commits = 0u64;
    let mut v = 0i64;
    while !stop.load(Ordering::Relaxed) {
        writer
            .transact(4, &move |db: &mut Database| {
                db.table_mut("kv")?.upsert(row![0i64, 0i64, v])?;
                Ok(())
            })
            .expect("update commits");
        commits += 1;
        v += 1;
    }
    commits
}

/// Read the marker row's value out of a `w0` window.
fn marker_val(t: &Table) -> Option<i64> {
    t.rows()
        .find(|r| r[0].as_int() == Some(0))
        .and_then(|r| r[2].as_int())
}

/// 64 clients polling `w0` in a tight loop, counting how many *new*
/// states each observes. Polling pays a full-window round trip per
/// probe, and most probes see nothing new.
fn poll_fanout_rate(addr: std::net::SocketAddr) -> (f64, u64) {
    let stop = AtomicBool::new(false);
    let observed = AtomicU64::new(0);
    let mut commits = 0u64;
    let start = Instant::now();
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| run_update_writer(addr, &stop));
        for _ in 0..FANOUT_CLIENTS {
            scope.spawn(|| {
                let remote = RemoteEngine::connect(addr).expect("poller connects");
                let mut last = None;
                while !stop.load(Ordering::Relaxed) {
                    let t = remote.read_view("w0").expect("readable");
                    let cur = marker_val(&t);
                    if cur != last && last.is_some() {
                        observed.fetch_add(1, Ordering::Relaxed);
                    }
                    last = cur;
                }
            });
        }
        std::thread::sleep(Duration::from_secs_f64(FANOUT_SECS));
        stop.store(true, Ordering::Relaxed);
        commits = writer.join().expect("writer thread");
    });
    (
        observed.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64(),
        commits,
    )
}

/// 64 subscribers on `w0`, counting delivered pushes. Each push is a
/// coalesced delta past that subscriber's cursor — no window
/// re-transfer, no empty probes.
fn push_fanout_rate(addr: std::net::SocketAddr) -> (f64, u64) {
    let mut subs: Vec<SubscriptionClient> = (0..FANOUT_CLIENTS)
        .map(|_| {
            let mut s = SubscriptionClient::connect(addr).expect("subscriber connects");
            s.subscribe("w0", None).expect("suback");
            s.next_push(Duration::from_secs(10))
                .expect("stream healthy")
                .expect("initial resync");
            s
        })
        .collect();
    let stop = AtomicBool::new(false);
    let observed = AtomicU64::new(0);
    let mut commits = 0u64;
    let start = Instant::now();
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| run_update_writer(addr, &stop));
        let stop = &stop;
        let observed = &observed;
        for mut sub in subs.drain(..) {
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match sub.next_push(Duration::from_millis(50)) {
                        Ok(Some(_)) => {
                            observed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(None) => {}
                        Err(_) => break,
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_secs_f64(FANOUT_SECS));
        stop.store(true, Ordering::Relaxed);
        commits = writer.join().expect("writer thread");
    });
    (
        observed.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64(),
        commits,
    )
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let mut results = BenchResults::new();

    // One shared in-process engine and one server fronting an identical
    // engine, so the two transports measure the same workload.
    let inproc = engine_with_views();
    let served = engine_with_views();
    let server =
        NetServer::bind(served, "127.0.0.1:0", NetServerConfig::default()).expect("loopback bind");
    let addr = server.local_addr();

    let mut socket_reads: Vec<(usize, f64)> = Vec::new();
    let mut single_read_p50_ns = u64::MAX;
    println!("view-read throughput (ops/s):");
    for &clients in &[1usize, 16, 256] {
        let ops = (4096 / clients).max(16);
        let (in_ops, in_lat) = run_clients(inproc_handles(&inproc, clients), ops, read_op);
        record(
            &mut results,
            format!("net/read/in_process/{clients}"),
            in_ops,
            &in_lat,
            format!("in-process read x{clients}: {in_ops:.0} ops/s"),
        );
        let (so_ops, so_lat) = run_clients(socket_handles(addr, clients), ops, read_op);
        record(
            &mut results,
            format!("net/read/socket/{clients}"),
            so_ops,
            &so_lat,
            format!("loopback-socket read x{clients}: {so_ops:.0} ops/s"),
        );
        socket_reads.push((clients, so_ops));
        if clients == 1 {
            single_read_p50_ns = so_lat.p50();
        }
    }

    let mut socket_commits: Vec<(usize, f64)> = Vec::new();
    println!("commit (delta-direct transact) throughput (ops/s):");
    for &clients in &[1usize, 16, 256] {
        let ops = (1024 / clients).max(4);
        let (in_ops, in_lat) = run_clients(inproc_handles(&inproc, clients), ops, commit_op);
        record(
            &mut results,
            format!("net/commit/in_process/{clients}"),
            in_ops,
            &in_lat,
            format!("in-process commit x{clients}: {in_ops:.0} ops/s"),
        );
        let (so_ops, so_lat) = run_clients(socket_handles(addr, clients), ops, commit_op);
        record(
            &mut results,
            format!("net/commit/socket/{clients}"),
            so_ops,
            &so_lat,
            format!("loopback-socket commit x{clients}: {so_ops:.0} ops/s"),
        );
        socket_commits.push((clients, so_ops));

        // Delete the freshly inserted rows so every client count
        // commits against the same-sized table — otherwise each run's
        // inserts grow the snapshots and validation the next, larger
        // run pays for, biasing the retention ratio.
        let cleanup = |engine: &dyn Engine| {
            engine
                .transact(4, &|db: &mut Database| {
                    let table = db.table_mut("kv")?;
                    let keys: Vec<Row> = table
                        .rows()
                        .filter(|r| r[0].as_int().is_some_and(|id| id >= 1_000_000))
                        .map(|r| row![r[0].clone()])
                        .collect();
                    for key in keys {
                        table.delete_by_key(&key);
                    }
                    Ok(())
                })
                .expect("cleanup commits");
        };
        cleanup(&*inproc);
        cleanup(&*socket_handles(addr, 1)[0]);
    }

    // Fan-out: the same update stream delivered to 64 clients by
    // polling, then by subscription push.
    println!("64-client fan-out (updates observed/s):");
    let (poll_rate, poll_commits) = poll_fanout_rate(addr);
    println!("  poll: {poll_rate:.0} updates/s observed ({poll_commits} commits)");
    let (push_rate, push_commits) = push_fanout_rate(addr);
    println!("  push: {push_rate:.0} updates/s delivered ({push_commits} commits)");

    let stats = server.stats();
    println!(
        "server lifetime: {} connections, {} requests, {} pushes",
        stats.accepted, stats.requests, stats.pushes
    );
    server.shutdown();

    // The latency gate: with the readiness loop parked in the kernel, a
    // lone client's read must not pay any poller nap on top of its RTT.
    results.record(
        "net/read/socket/p50_single_client",
        single_read_p50_ns as f64,
        format!(
            "single-client socket read p50 = {single_read_p50_ns}ns \
             (gate < {GATE_MAX_READ_P50_NS}ns)"
        ),
    );
    println!("single-client socket read p50: {single_read_p50_ns}ns");
    assert!(
        single_read_p50_ns < GATE_MAX_READ_P50_NS,
        "latency gate failed: single-client read p50 {single_read_p50_ns}ns \
         (need < {GATE_MAX_READ_P50_NS}ns)"
    );

    // The fan-out gate: push must beat polling by 2x on delivered
    // updates at 64 subscribers (it sends deltas on change instead of
    // answering full-window probes).
    let push_over_poll = push_rate / poll_rate.max(1e-9);
    results.record(
        "net/fanout/push_over_poll_64",
        push_over_poll * 1000.0,
        format!(
            "64-subscriber push / 64-client poll update rate = {push_over_poll:.2}x \
             (gate >= {GATE_MIN_PUSH_OVER_POLL}x)"
        ),
    );
    println!("64-subscriber push / poll update rate: {push_over_poll:.2}x");
    assert!(
        push_over_poll >= GATE_MIN_PUSH_OVER_POLL,
        "fan-out gate failed: push delivered only {push_over_poll:.2}x the polled \
         update rate at 64 subscribers (need >= {GATE_MIN_PUSH_OVER_POLL}x)"
    );

    // The gate: multiplexed socket clients must beat one socket client
    // on aggregate read throughput (RTT overlap is the whole point of
    // the non-blocking front end).
    let one = socket_reads
        .iter()
        .find(|(c, _)| *c == 1)
        .expect("measured")
        .1;
    let sixteen = socket_reads
        .iter()
        .find(|(c, _)| *c == 16)
        .expect("measured")
        .1;
    let scaling = sixteen / one;
    results.record(
        "net/read/socket/scaling_16_over_1",
        scaling * 1000.0,
        format!("16-client / 1-client socket read throughput = {scaling:.2}x (gate >= {GATE_MIN_SCALING}x)"),
    );
    println!("16-client / 1-client socket read scaling: {scaling:.2}x");
    assert!(
        scaling >= GATE_MIN_SCALING,
        "multiplexing gate failed: 16 clients delivered only {scaling:.2}x one client's read throughput (need >= {GATE_MIN_SCALING}x)"
    );

    // The overload gate: commit throughput must not collapse when the
    // connection count far exceeds the worker pool. 256 clients used to
    // deliver ~1/7th of the 16-client line (poller sleep + text codec
    // tax per queued request); with the wake-on-ready poller and binary
    // codec it must hold within 2x.
    let commits_16 = socket_commits
        .iter()
        .find(|(c, _)| *c == 16)
        .expect("measured")
        .1;
    let commits_256 = socket_commits
        .iter()
        .find(|(c, _)| *c == 256)
        .expect("measured")
        .1;
    let retained = commits_256 / commits_16;
    results.record(
        "net/commit/socket/retention_256_over_16",
        retained * 1000.0,
        format!(
            "256-client / 16-client socket commit throughput = {retained:.2}x \
             (gate >= {GATE_MIN_COMMIT_RETENTION}x)"
        ),
    );
    println!("256-client / 16-client socket commit retention: {retained:.2}x");
    assert!(
        retained >= GATE_MIN_COMMIT_RETENTION,
        "overload gate failed: 256 clients delivered only {retained:.2}x the \
         16-client commit throughput (need >= {GATE_MIN_COMMIT_RETENTION}x)"
    );

    let path = results
        .write_json(dir, "net")
        .expect("write BENCH_net.json");
    println!("wrote {}", path.display());
}
