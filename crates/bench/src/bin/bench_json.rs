//! Quick perf-trajectory snapshot: time the headline workloads with the
//! in-repo median harness and emit `BENCH_results.json` for the repo
//! root, so successive PRs can diff machine-readable numbers.
//!
//! Usage: `cargo run --release -p esm-bench --bin bench_json [dir]`

use esm_bench::results::BenchResults;
use esm_bench::{
    engine_with_shard_views, fmt_ns, median_ns_per_call, people_table,
    run_concurrent_engine_workload, selective_age_pred,
};
use esm_store::row;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut results = BenchResults::new();

    // Indexed seek vs full scan.
    for &n in &[1_000usize, 10_000] {
        let plain = people_table(n);
        let mut indexed = plain.clone();
        indexed.create_index("age").expect("column exists");
        let pred = selective_age_pred();
        assert_eq!(plain.select(&pred).unwrap(), indexed.select(&pred).unwrap());

        let scan = median_ns_per_call(9, 20, || {
            std::hint::black_box(plain.select(&pred).expect("ok"));
        });
        let seek = median_ns_per_call(9, 20, || {
            std::hint::black_box(indexed.select(&pred).expect("ok"));
        });
        results.record(
            format!("store/select_scan/{n}"),
            scan,
            format!("n={n}, ~1% match"),
        );
        results.record(
            format!("store/select_indexed/{n}"),
            seek,
            format!("n={n}, ~1% match"),
        );
        println!(
            "select n={n:>6}: scan {} vs indexed {} ({:.1}x)",
            fmt_ns(scan),
            fmt_ns(seek),
            scan / seek.max(1.0)
        );
    }

    // Uncontended transactional view edits.
    let engine = engine_with_shard_views(5_000, 4);
    let view = engine.view("band_0").expect("registered");
    let mut next_id = 10_000_000i64;
    let edit = median_ns_per_call(9, 20, || {
        next_id += 1;
        view.edit(|v| {
            v.upsert(row![next_id, "bench", 5])?;
            Ok(())
        })
        .expect("commits");
    });
    results.record(
        "engine/view_edit_uncontended",
        edit,
        "base n=5000, optimistic path",
    );
    println!("view edit (uncontended): {}", fmt_ns(edit));

    // Concurrent workload: 4 threads × 25 edits, fresh engine per rep.
    let concurrent = median_ns_per_call(5, 1, || {
        let engine = engine_with_shard_views(1_000, 4);
        std::hint::black_box(run_concurrent_engine_workload(&engine, 4, 25));
    });
    results.record(
        "engine/concurrent_4x25",
        concurrent,
        "per 100-commit batch, 4 threads",
    );
    println!("concurrent 4x25 batch: {}", fmt_ns(concurrent));

    match results.write_json(&dir, "results") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write BENCH_results.json into {dir}: {e}");
            std::process::exit(1);
        }
    }
}
