//! Shared workloads and a micro-timing harness for the experiment suite.
//!
//! Every table (T1–T4) and figure (F1–F3) of EXPERIMENTS.md has:
//! * a Criterion bench target in `benches/` (statistically careful), and
//! * a row/series printed by the `experiments` binary (quick medians,
//!   used to fill EXPERIMENTS.md reproducibly).
//!
//! Both consume the workload constructors in this library so they measure
//! the same code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod results;

use std::time::Instant;

use esm_core::state::{SbxOps, StateBx};
use esm_lens::Lens;
use esm_relational::ViewDef;
use esm_store::{Database, Operand, Predicate, Table, Value};

/// A (quantity, unit-price) inventory record: the running example state.
pub type Item = (u32, u32);

/// The inventory bx as a monomorphic ops-level implementation (static
/// dispatch): A = quantity, B = total price.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InventoryOps;

impl SbxOps<Item, u32, u32> for InventoryOps {
    fn view_a(&self, s: &Item) -> u32 {
        s.0
    }
    fn view_b(&self, s: &Item) -> u32 {
        s.0 * s.1
    }
    fn update_a(&self, s: Item, a: u32) -> Item {
        (a, s.1)
    }
    fn update_b(&self, s: Item, b: u32) -> Item {
        (b / s.1, s.1)
    }
}

/// The same inventory bx, type-erased (dynamic dispatch).
pub fn inventory_dyn() -> StateBx<Item, u32, u32> {
    StateBx::from_ops(InventoryOps)
}

/// A chain of `depth` invertible integer lenses (`x -> x + k` stages),
/// composed with [`Lens::then`]. `get`/`put` traverse every stage.
pub fn lens_chain(depth: usize) -> Lens<i64, i64> {
    let mut l = esm_lens::combinators::id::<i64>();
    for k in 0..depth {
        let k = k as i64 + 1;
        let stage: Lens<i64, i64> = Lens::new(move |s: &i64| s + k, move |_s, v| v - k);
        l = l.then(stage);
    }
    l
}

/// The transformation a `lens_chain(depth)` computes, fused into a single
/// lens (the baseline an optimising composition would produce).
pub fn fused_chain(depth: usize) -> Lens<i64, i64> {
    let total: i64 = (1..=depth as i64).sum();
    Lens::new(move |s: &i64| s + total, move |_s, v| v - total)
}

// ---------------------------------------------------------------------
// Engine workloads (E1): concurrent entangled views over one base table.
// ---------------------------------------------------------------------

/// A people table of `n` rows whose `age` column is selective: ids are
/// dense, ages cycle `0..100`.
pub fn people_table(n: usize) -> Table {
    esm_relational::testgen::gen_people(99, n)
}

/// The selective predicate the indexed-select benches probe: an equality
/// on `age` matching ~1% of rows.
pub fn selective_age_pred() -> Predicate {
    Predicate::eq(Operand::col("age"), Operand::val(41))
}

/// An engine over one `people` table of `n` rows, with one select view
/// per age band (`shards` bands over ages `0..100`) and a whole-table
/// view named `all`.
pub fn engine_with_shard_views(n: usize, shards: usize) -> esm_engine::EngineServer {
    let mut db = Database::new();
    db.create_table("people", people_table(n))
        .expect("fresh table");
    let engine = esm_engine::EngineServer::new(db);
    let band = 100 / shards.max(1) as i64;
    for s in 0..shards.max(1) {
        let lo = s as i64 * band;
        let hi = lo + band;
        engine
            .define_view(
                format!("band_{s}"),
                "people",
                &ViewDef::base().select(
                    Predicate::ge(Operand::col("age"), Operand::val(lo))
                        .and(Predicate::lt(Operand::col("age"), Operand::val(hi))),
                ),
            )
            .expect("view compiles");
    }
    engine
        .define_view("all", "people", &ViewDef::base())
        .expect("view compiles");
    engine
}

/// Run `writes` upserts of distinct keys through each of `threads`
/// workers, each via its own entangled view handle. Returns total commits.
pub fn run_concurrent_engine_workload(
    engine: &esm_engine::EngineServer,
    threads: usize,
    writes: usize,
) -> u64 {
    let before = engine.metrics().commits;
    let shards = engine
        .view_names()
        .into_iter()
        .filter(|v| v.starts_with("band_"))
        .count();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let view = engine
                .view(&format!("band_{}", t % shards.max(1)))
                .expect("registered");
            scope.spawn(move || {
                let band = 100 / shards.max(1) as i64;
                let lo = ((t % shards.max(1)) as i64) * band;
                for i in 0..writes {
                    let id = 1_000_000 + (t * writes + i) as i64;
                    view.edit(|v| {
                        v.upsert(vec![
                            Value::Int(id),
                            Value::str(format!("w{t}_{i}")),
                            Value::Int(lo),
                        ])?;
                        Ok(())
                    })
                    .expect("edit commits");
                }
            });
        }
    });
    engine.metrics().commits - before
}

/// Median wall-clock nanoseconds per call of `f`, over `reps` batches of
/// `batch` calls (quick harness for the `experiments` binary; the
/// Criterion benches are the careful version).
pub fn median_ns_per_call(reps: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps >= 1 && batch >= 1);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

/// Render one markdown table row.
pub fn md_row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Format nanoseconds human-readably.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_core::state::SbxOps;

    #[test]
    fn inventory_static_and_dyn_agree() {
        let s = (4u32, 25u32);
        let stat = InventoryOps;
        let dynb = inventory_dyn();
        assert_eq!(stat.view_b(&s), dynb.view_b(&s));
        assert_eq!(stat.update_b(s, 200), dynb.update_b(s, 200));
    }

    #[test]
    fn lens_chain_matches_fused_baseline() {
        for depth in [0, 1, 4, 16] {
            let chain = lens_chain(depth);
            let fused = fused_chain(depth);
            for s in [-3i64, 0, 10] {
                assert_eq!(chain.get(&s), fused.get(&s));
                assert_eq!(chain.put(s, 99), fused.put(s, 99));
            }
        }
    }

    #[test]
    fn median_timer_returns_positive_numbers() {
        let ns = median_ns_per_call(3, 10, || {
            std::hint::black_box(1 + 1);
        });
        assert!(ns >= 0.0);
    }

    #[test]
    fn engine_workload_commits_every_write() {
        let engine = engine_with_shard_views(200, 4);
        let commits = run_concurrent_engine_workload(&engine, 4, 5);
        assert_eq!(commits, 4 * 5);
        assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
        // The band views auto-indexed the age column.
        assert_eq!(
            engine.table("people").unwrap().indexed_columns(),
            vec!["age"]
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
        assert_eq!(md_row(&["a".into(), "b".into()]), "| a | b |");
    }
}
