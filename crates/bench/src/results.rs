//! The perf-trajectory emitter: collect named measurements, write
//! `BENCH_<name>.json`.
//!
//! Every bench entry point emits the same `{id, median_ns, note}` record
//! shape — the quick `bench_json` binary through this module, the
//! criterion targets through the vendored shim's own emitter (which
//! mirrors this schema) — so successive PRs can diff machine-readable
//! perf artifacts with one tool instead of eyeballing logs. Entries
//! recorded through a latency histogram additionally carry `p95_ns` /
//! `p99_ns` tail fields (a median alone hides exactly the collapse the
//! 256-client lines exist to watch). The JSON is hand-rolled: the
//! offline build has no serde.

use std::io::Write as _;
use std::path::PathBuf;

use esm_obs::HistogramSnapshot;

/// One named measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable benchmark id, e.g. `engine/indexed_select/10000`.
    pub id: String,
    /// Median wall-clock nanoseconds per operation.
    pub median_ns: f64,
    /// 95th-percentile nanoseconds, when per-op samples were collected.
    pub p95_ns: Option<f64>,
    /// 99th-percentile nanoseconds, when per-op samples were collected.
    pub p99_ns: Option<f64>,
    /// Free-form context (input size, thread count, ...).
    pub note: String,
}

/// An accumulating set of measurements destined for one JSON artifact.
#[derive(Debug, Default)]
pub struct BenchResults {
    entries: Vec<BenchEntry>,
}

impl BenchResults {
    /// An empty result set.
    pub fn new() -> BenchResults {
        BenchResults::default()
    }

    /// Record one measurement (median only — no tail data).
    pub fn record(&mut self, id: impl Into<String>, median_ns: f64, note: impl Into<String>) {
        self.entries.push(BenchEntry {
            id: id.into(),
            median_ns,
            p95_ns: None,
            p99_ns: None,
            note: note.into(),
        });
    }

    /// Record one measurement whose per-op latencies went through a
    /// histogram: `median_ns` as given (the bench's own oracle), tails
    /// from the histogram. An empty histogram degrades to [`record`].
    pub fn record_tailed(
        &mut self,
        id: impl Into<String>,
        median_ns: f64,
        latencies: &HistogramSnapshot,
        note: impl Into<String>,
    ) {
        let tail = |q: f64| {
            if latencies.is_empty() {
                None
            } else {
                Some(latencies.quantile(q) as f64)
            }
        };
        self.entries.push(BenchEntry {
            id: id.into(),
            median_ns,
            p95_ns: tail(0.95),
            p99_ns: tail(0.99),
            note: note.into(),
        });
    }

    /// The recorded entries, in insertion order.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Render the JSON document.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                let mut tails = String::new();
                if let Some(p95) = e.p95_ns {
                    tails.push_str(&format!(", \"p95_ns\": {p95:.1}"));
                }
                if let Some(p99) = e.p99_ns {
                    tails.push_str(&format!(", \"p99_ns\": {p99:.1}"));
                }
                format!(
                    "  {{\"id\": \"{}\", \"median_ns\": {:.1}{tails}, \"note\": \"{}\"}}",
                    escape(&e.id),
                    e.median_ns,
                    escape(&e.note)
                )
            })
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }

    /// Write `BENCH_<name>.json` into `dir` (or the `BENCH_JSON_DIR`
    /// environment override). Returns the path written.
    pub fn write_json(&self, dir: impl Into<PathBuf>, name: &str) -> std::io::Result<PathBuf> {
        let dir = std::env::var("BENCH_JSON_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| dir.into());
        let path = dir.join(format!("BENCH_{name}.json"));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let mut r = BenchResults::new();
        r.record("a/b", 12.25, "n=10");
        r.record("quo\"te", 1.0, "back\\slash");
        let json = r.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"id\": \"a/b\""));
        assert!(json.contains("\"median_ns\": 12.2"));
        assert!(json.contains("quo\\\"te"));
        assert!(json.contains("back\\\\slash"));
        assert!(!json.contains("p95_ns"), "no tails unless recorded");
        assert_eq!(r.entries().len(), 2);
    }

    #[test]
    fn tailed_entries_carry_percentiles() {
        let hist = esm_obs::Histogram::new();
        for v in 1..=100u64 {
            hist.record(v * 1000);
        }
        let mut r = BenchResults::new();
        r.record_tailed("tailed", 50_000.0, &hist.snapshot(), "100 samples");
        r.record_tailed("empty", 1.0, &esm_obs::Histogram::new().snapshot(), "");
        let json = r.to_json();
        assert!(json.contains("\"p95_ns\""));
        assert!(json.contains("\"p99_ns\""));
        let e = &r.entries()[0];
        // Histogram quantiles are upper bounds within 25%.
        let p95 = e.p95_ns.unwrap();
        assert!((95_000.0..=119_000.0).contains(&p95), "p95 = {p95}");
        assert!(e.p99_ns.unwrap() >= p95);
        assert_eq!(r.entries()[1].p95_ns, None);
    }

    #[test]
    fn write_json_lands_in_requested_dir() {
        let mut r = BenchResults::new();
        r.record("x", 1.0, "");
        let dir = std::env::temp_dir();
        let path = r.write_json(&dir, "emitter_test").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, r.to_json());
        std::fs::remove_file(path).ok();
    }
}
