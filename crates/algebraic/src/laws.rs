//! Executable forms of the algebraic-bx laws from §4 of the paper:
//! (Correct), (Hippocratic) and (Undoable), in both directions.

use crate::abx::AlgebraicBx;

/// An algebraic-bx law violation with printable evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbxLawViolation {
    /// The law that failed, tagged with the direction, e.g. `"(Correct)→"`.
    pub law: &'static str,
    /// Human-readable counterexample.
    pub detail: String,
}

impl std::fmt::Display for AbxLawViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "algebraic bx law {} violated: {}", self.law, self.detail)
    }
}

impl std::error::Error for AbxLawViolation {}

/// (Correct): `(a, →R(a, b)) ∈ R` and `(←R(a, b), b) ∈ R`, over the sample
/// grid.
pub fn check_correct<A, B>(
    bx: &AlgebraicBx<A, B>,
    samples_a: &[A],
    samples_b: &[B],
) -> Vec<AbxLawViolation>
where
    A: Clone + std::fmt::Debug + 'static,
    B: Clone + std::fmt::Debug + 'static,
{
    let mut out = Vec::new();
    for a in samples_a {
        for b in samples_b {
            let b2 = bx.restore_b(a, b);
            if !bx.consistent(a, &b2) {
                out.push(AbxLawViolation {
                    law: "(Correct)→",
                    detail: format!("→R({a:?}, {b:?}) = {b2:?} is not consistent with {a:?}"),
                });
            }
            let a2 = bx.restore_a(a, b);
            if !bx.consistent(&a2, b) {
                out.push(AbxLawViolation {
                    law: "(Correct)←",
                    detail: format!("←R({a:?}, {b:?}) = {a2:?} is not consistent with {b:?}"),
                });
            }
        }
    }
    out
}

/// (Hippocratic): on already-consistent pairs the restorers change nothing.
pub fn check_hippocratic<A, B>(
    bx: &AlgebraicBx<A, B>,
    samples_a: &[A],
    samples_b: &[B],
) -> Vec<AbxLawViolation>
where
    A: Clone + PartialEq + std::fmt::Debug + 'static,
    B: Clone + PartialEq + std::fmt::Debug + 'static,
{
    let mut out = Vec::new();
    for a in samples_a {
        for b in samples_b {
            if !bx.consistent(a, b) {
                continue;
            }
            let b2 = bx.restore_b(a, b);
            if b2 != *b {
                out.push(AbxLawViolation {
                    law: "(Hippocratic)→",
                    detail: format!("R({a:?}, {b:?}) holds but →R changed b to {b2:?}"),
                });
            }
            let a2 = bx.restore_a(a, b);
            if a2 != *a {
                out.push(AbxLawViolation {
                    law: "(Hippocratic)←",
                    detail: format!("R({a:?}, {b:?}) holds but ←R changed a to {a2:?}"),
                });
            }
        }
    }
    out
}

/// (Undoable): `R(a, b) ⇒ →R(a, →R(a', b)) = b` — detouring through any
/// `a'` and coming back restores the original — and symmetrically.
pub fn check_undoable<A, B>(
    bx: &AlgebraicBx<A, B>,
    samples_a: &[A],
    samples_b: &[B],
) -> Vec<AbxLawViolation>
where
    A: Clone + PartialEq + std::fmt::Debug + 'static,
    B: Clone + PartialEq + std::fmt::Debug + 'static,
{
    let mut out = Vec::new();
    for a in samples_a {
        for b in samples_b {
            if !bx.consistent(a, b) {
                continue;
            }
            for a2 in samples_a {
                let detour = bx.restore_b(a2, b);
                let back = bx.restore_b(a, &detour);
                if back != *b {
                    out.push(AbxLawViolation {
                        law: "(Undoable)→",
                        detail: format!("→R({a:?}, →R({a2:?}, {b:?})) = {back:?}, expected {b:?}"),
                    });
                }
            }
            for b2 in samples_b {
                let detour = bx.restore_a(a, b2);
                let back = bx.restore_a(&detour, b);
                if back != *a {
                    out.push(AbxLawViolation {
                        law: "(Undoable)←",
                        detail: format!("←R(←R({a:?}, {b2:?}), {b:?}) = {back:?}, expected {a:?}"),
                    });
                }
            }
        }
    }
    out
}

/// All mandatory laws: (Correct) + (Hippocratic).
pub fn check_algebraic_bx<A, B>(
    bx: &AlgebraicBx<A, B>,
    samples_a: &[A],
    samples_b: &[B],
) -> Vec<AbxLawViolation>
where
    A: Clone + PartialEq + std::fmt::Debug + 'static,
    B: Clone + PartialEq + std::fmt::Debug + 'static,
{
    let mut out = check_correct(bx, samples_a, samples_b);
    out.extend(check_hippocratic(bx, samples_a, samples_b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{broken_bx, equality_bx, from_lens, interval_bx, universal_bx};
    use esm_lens::combinators::fst;

    const AS: [i64; 5] = [-3, 0, 1, 5, 9];
    const BS: [i64; 5] = [-2, 0, 2, 5, 10];

    #[test]
    fn interval_bx_is_correct_and_hippocratic() {
        let bx = interval_bx(2);
        assert!(check_algebraic_bx(&bx, &AS, &BS).is_empty());
    }

    #[test]
    fn interval_bx_is_not_undoable() {
        // Clamping destroys information: the §4 distinction between plain
        // and undoable algebraic bx, witnessed.
        let bx = interval_bx(1);
        let v = check_undoable(&bx, &AS, &BS);
        assert!(!v.is_empty());
    }

    #[test]
    fn equality_bx_is_fully_lawful_and_undoable() {
        let bx = equality_bx::<i64>();
        assert!(check_algebraic_bx(&bx, &AS, &BS).is_empty());
        assert!(check_undoable(&bx, &AS, &BS).is_empty());
    }

    #[test]
    fn universal_bx_is_fully_lawful_and_undoable() {
        let bx = universal_bx::<i64, i64>();
        assert!(check_algebraic_bx(&bx, &AS, &BS).is_empty());
        assert!(check_undoable(&bx, &AS, &BS).is_empty());
    }

    #[test]
    fn lens_derived_bx_is_lawful() {
        let bx = from_lens(fst::<i64, i64>());
        let sources: Vec<(i64, i64)> = vec![(0, 1), (5, 5), (-2, 9)];
        let views: Vec<i64> = vec![0, 5, 7];
        assert!(check_algebraic_bx(&bx, &sources, &views).is_empty());
        // fst is very well-behaved, so the bx is undoable too.
        assert!(check_undoable(&bx, &sources, &views).is_empty());
    }

    #[test]
    fn broken_bx_fails_correct() {
        let bx = broken_bx();
        let v = check_correct(&bx, &[1], &[1]);
        assert!(v.iter().any(|x| x.law == "(Correct)→"), "{v:?}");
    }

    #[test]
    fn violations_display_direction() {
        let bx = broken_bx();
        let v = check_correct(&bx, &[1], &[1]);
        assert!(v[0].to_string().contains("(Correct)→"));
    }
}
