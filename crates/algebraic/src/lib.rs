//! Algebraic bidirectional transformations in the style of Stevens, and
//! their embedding as entangled state monads (Lemma 5 of the paper).
//!
//! An algebraic bx `(R, →R, ←R)` between `A` and `B` consists of a
//! consistency relation `R ⊆ A × B` and two *consistency restorers*:
//! `→R : A × B -> B` (repair `B` after `A` changed) and
//! `←R : A × B -> A`. The required laws (§4):
//!
//! ```text
//! (Correct)     (a, →R(a, b)) ∈ R
//! (Hippocratic) R(a, b)  ⇒  →R(a, b) = b
//! (Undoable)    R(a, b)  ⇒  →R(a, →R(a', b)) = b
//! ```
//!
//! (and symmetrically for `←R`). Lemma 5: viewing the state monad over `R`
//! (consistent pairs) through
//!
//! ```text
//! getA = \(a, b) -> (a, (a, b))          setA a' = \(a, b) -> ((), (a', →R(a', b)))
//! getB = \(a, b) -> (b, (a, b))          setB b' = \(a, b) -> ((), (←R(a, b'), b'))
//! ```
//!
//! gives a set-bx, overwriteable when the bx is undoable. Unlike a lens,
//! neither side need determine the other — `R` may be a genuine relation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod abx;
pub mod builders;
pub mod laws;
pub mod to_bx;

pub use abx::AlgebraicBx;
pub use to_bx::AlgBxOps;
