//! The [`AlgebraicBx`] type: a consistency relation with two restorers.

use std::rc::Rc;

/// An algebraic bx `(R, →R, ←R)` between `A` and `B` (Stevens, §4 of the
/// paper).
///
/// `consistent` decides membership of `R`; `restore_b` is `→R` (fix up `B`
/// after an `A` change) and `restore_a` is `←R`. Laws are checked by
/// [`crate::laws`], never assumed.
#[allow(clippy::type_complexity)] // the fields ARE the paper's (R, →R, ←R)
pub struct AlgebraicBx<A, B> {
    consistent: Rc<dyn Fn(&A, &B) -> bool>,
    restore_b: Rc<dyn Fn(&A, &B) -> B>,
    restore_a: Rc<dyn Fn(&A, &B) -> A>,
}

impl<A, B> Clone for AlgebraicBx<A, B> {
    fn clone(&self) -> Self {
        AlgebraicBx {
            consistent: Rc::clone(&self.consistent),
            restore_b: Rc::clone(&self.restore_b),
            restore_a: Rc::clone(&self.restore_a),
        }
    }
}

impl<A, B> std::fmt::Debug for AlgebraicBx<A, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AlgebraicBx(<R, →R, ←R>)")
    }
}

impl<A: 'static, B: 'static> AlgebraicBx<A, B> {
    /// Build an algebraic bx from its three components.
    pub fn new(
        consistent: impl Fn(&A, &B) -> bool + 'static,
        restore_b: impl Fn(&A, &B) -> B + 'static,
        restore_a: impl Fn(&A, &B) -> A + 'static,
    ) -> Self {
        AlgebraicBx {
            consistent: Rc::new(consistent),
            restore_b: Rc::new(restore_b),
            restore_a: Rc::new(restore_a),
        }
    }

    /// Is `(a, b) ∈ R`?
    pub fn consistent(&self, a: &A, b: &B) -> bool {
        (self.consistent)(a, b)
    }

    /// `→R(a, b)`: repair the `B` side after `A` changed to `a`.
    pub fn restore_b(&self, a: &A, b: &B) -> B {
        (self.restore_b)(a, b)
    }

    /// `←R(a, b)`: repair the `A` side after `B` changed to `b`.
    pub fn restore_a(&self, a: &A, b: &B) -> A {
        (self.restore_a)(a, b)
    }

    /// Repair an arbitrary pair into a consistent one, `A` authoritative.
    pub fn settle_from_a(&self, a: A, b: &B) -> (A, B) {
        let b2 = self.restore_b(&a, b);
        (a, b2)
    }

    /// Repair an arbitrary pair into a consistent one, `B` authoritative.
    pub fn settle_from_b(&self, a: &A, b: B) -> (A, B) {
        let a2 = self.restore_a(a, &b);
        (a2, b)
    }
}

#[cfg(test)]
mod tests {

    use crate::builders::interval_bx;

    #[test]
    fn consistency_is_the_given_relation() {
        // R(a, b) ⇔ b ∈ [a-1, a+1]: a genuine relation, not a function.
        let bx = interval_bx(1);
        assert!(bx.consistent(&5, &6));
        assert!(bx.consistent(&5, &4));
        assert!(!bx.consistent(&5, &7));
    }

    #[test]
    fn restorers_move_the_minimal_amount() {
        let bx = interval_bx(1);
        // b = 9 is too far from a = 5: clamp to the interval edge.
        assert_eq!(bx.restore_b(&5, &9), 6);
        assert_eq!(bx.restore_b(&5, &1), 4);
        // already consistent: untouched (Hippocratic).
        assert_eq!(bx.restore_b(&5, &5), 5);
    }

    #[test]
    fn settle_produces_consistent_pairs() {
        let bx = interval_bx(2);
        let (a, b) = bx.settle_from_a(10, &0);
        assert!(bx.consistent(&a, &b));
        assert_eq!((a, b), (10, 8));
        let (a, b) = bx.settle_from_b(&0, 10);
        assert!(bx.consistent(&a, &b));
        assert_eq!((a, b), (8, 10));
    }
}
