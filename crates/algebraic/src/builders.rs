//! Ready-made algebraic bx, including constructions from lenses and
//! genuinely relational examples no lens can express.

use esm_lens::Lens;

use crate::abx::AlgebraicBx;

/// The algebraic bx induced by a well-behaved lens `l : A ⇄ B`:
/// `R(a, b) ⇔ l.get(a) == b`, `→R(a, _) = l.get(a)`,
/// `←R(a, b) = l.put(a, b)`.
///
/// (Correct)/(Hippocratic) follow from well-behavedness; (Undoable) in the
/// `←` direction corresponds to (PutPut).
pub fn from_lens<A, B>(l: Lens<A, B>) -> AlgebraicBx<A, B>
where
    A: Clone + 'static,
    B: Clone + PartialEq + 'static,
{
    let lc = l.clone();
    let lr = l.clone();
    AlgebraicBx::new(
        move |a: &A, b: &B| l.get(a) == *b,
        move |a: &A, _b: &B| lc.get(a),
        move |a: &A, b: &B| lr.put(a.clone(), b.clone()),
    )
}

/// A genuinely relational bx on integers: `R(a, b) ⇔ |a - b| <= slack`.
///
/// The restorers clamp the stale side into the allowed interval around the
/// freshly-written side, moving it as little as possible (so (Hippocratic)
/// holds). This is *not* a lens in either direction: many `b`s are
/// consistent with each `a`. It is also **not undoable** for `slack > 0`
/// (clamping loses the original position), which the law tests exploit.
pub fn interval_bx(slack: i64) -> AlgebraicBx<i64, i64> {
    assert!(slack >= 0, "slack must be non-negative");
    let clamp = move |fresh: i64, stale: i64| -> i64 { stale.clamp(fresh - slack, fresh + slack) };
    AlgebraicBx::new(
        move |a: &i64, b: &i64| (a - b).abs() <= slack,
        move |a: &i64, b: &i64| clamp(*a, *b),
        move |a: &i64, b: &i64| clamp(*b, *a),
    )
}

/// The *equality* bx on a type: `R(a, b) ⇔ a == b`, restorers copy.
/// Correct, Hippocratic and undoable.
pub fn equality_bx<T: Clone + PartialEq + 'static>() -> AlgebraicBx<T, T> {
    AlgebraicBx::new(
        |a: &T, b: &T| a == b,
        |a: &T, _b: &T| a.clone(),
        |_a: &T, b: &T| b.clone(),
    )
}

/// The *universal* bx: every pair is consistent, restorers never touch
/// anything. This is the §3.4 unentangled product, seen algebraically:
/// "setA automatically restores consistency without the need to change B
/// and vice versa".
pub fn universal_bx<A: Clone + 'static, B: Clone + 'static>() -> AlgebraicBx<A, B> {
    AlgebraicBx::new(|_, _| true, |_, b: &B| b.clone(), |a: &A, _| a.clone())
}

/// A deliberately broken bx for negative tests: `→R` returns a constant
/// that is usually inconsistent, violating (Correct).
pub fn broken_bx() -> AlgebraicBx<i64, i64> {
    AlgebraicBx::new(|a: &i64, b: &i64| a == b, |_a, _b| 0, |_a, b: &i64| *b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_lens::combinators::fst;

    #[test]
    fn lens_bx_relation_is_the_graph_of_get() {
        let bx = from_lens(fst::<i64, String>());
        assert!(bx.consistent(&(3, "x".into()), &3));
        assert!(!bx.consistent(&(3, "x".into()), &4));
    }

    #[test]
    fn lens_bx_restores_via_get_and_put() {
        let bx = from_lens(fst::<i64, String>());
        let a = (3i64, "x".to_string());
        assert_eq!(bx.restore_b(&a, &99), 3);
        assert_eq!(bx.restore_a(&a, &7), (7, "x".to_string()));
    }

    #[test]
    fn equality_bx_copies() {
        let bx = equality_bx::<String>();
        assert_eq!(bx.restore_b(&"l".to_string(), &"r".to_string()), "l");
        assert_eq!(bx.restore_a(&"l".to_string(), &"r".to_string()), "r");
    }

    #[test]
    fn universal_bx_never_touches_the_other_side() {
        let bx = universal_bx::<i64, String>();
        assert!(bx.consistent(&1, &"anything".to_string()));
        assert_eq!(bx.restore_b(&9, &"keep".to_string()), "keep");
    }

    #[test]
    fn interval_bx_is_relational_not_functional() {
        let bx = interval_bx(2);
        // Two different Bs consistent with the same A.
        assert!(bx.consistent(&10, &9));
        assert!(bx.consistent(&10, &11));
    }
}
