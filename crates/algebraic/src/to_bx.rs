//! Lemma 5: every algebraic bx is an entangled state monad over the state
//! monad on its consistency relation `R` (the set of consistent pairs).

use esm_core::state::SbxOps;

use crate::abx::AlgebraicBx;

/// The Lemma 5 construction: a set-bx between `A` and `B` whose hidden
/// state is a *consistent pair* `(a, b) ∈ R`.
///
/// ```text
/// view_a (a, b)     = a
/// view_b (a, b)     = b
/// update_a (a,b) a' = (a', →R(a', b))     -- (Correct) keeps the invariant
/// update_b (a,b) b' = (←R(a, b'), b')
/// ```
///
/// Note how the consistency relation "disappears into the hidden state of
/// the monad" (paper, §5): consumers of the bx interface never see `R`,
/// only the two views.
#[derive(Debug, Clone)]
pub struct AlgBxOps<A, B> {
    bx: AlgebraicBx<A, B>,
}

impl<A: 'static, B: 'static> AlgBxOps<A, B> {
    /// Wrap an algebraic bx as a set-bx (Lemma 5).
    pub fn new(bx: AlgebraicBx<A, B>) -> Self {
        AlgBxOps { bx }
    }

    /// The underlying algebraic bx.
    pub fn algebraic(&self) -> &AlgebraicBx<A, B> {
        &self.bx
    }

    /// Check the state invariant: is the hidden pair consistent?
    pub fn invariant(&self, s: &(A, B)) -> bool {
        self.bx.consistent(&s.0, &s.1)
    }
}

impl<A: Clone + 'static, B: Clone + 'static> SbxOps<(A, B), A, B> for AlgBxOps<A, B> {
    fn view_a(&self, s: &(A, B)) -> A {
        s.0.clone()
    }

    fn view_b(&self, s: &(A, B)) -> B {
        s.1.clone()
    }

    fn update_a(&self, s: (A, B), a: A) -> (A, B) {
        let b = self.bx.restore_b(&a, &s.1);
        (a, b)
    }

    fn update_b(&self, s: (A, B), b: B) -> (A, B) {
        let a = self.bx.restore_a(&s.0, &b);
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::interval_bx;
    use esm_core::state::{BxSession, SbxOps};

    #[test]
    fn updates_restore_consistency() {
        let t = AlgBxOps::new(interval_bx(1));
        let s = (5i64, 5i64);
        assert!(t.invariant(&s));
        // Push A far away: B is dragged along into the interval.
        let s = t.update_a(s, 20);
        assert!(t.invariant(&s));
        assert_eq!(s, (20, 19)); // b clamped to a-1
        let s = t.update_b(s, 0);
        assert!(t.invariant(&s));
        assert_eq!(s, (1, 0));
    }

    #[test]
    fn hippocratic_updates_do_nothing() {
        let t = AlgBxOps::new(interval_bx(2));
        let s = (5i64, 6i64);
        assert_eq!(t.update_a(s, 5), s);
        assert_eq!(t.update_b(s, 6), s);
    }

    #[test]
    fn relation_slack_is_preserved_not_collapsed() {
        // Unlike a lens, the bx does not force b = f(a): a consistent but
        // unequal pair survives updates that keep it consistent.
        let t = AlgBxOps::new(interval_bx(2));
        let s = (5i64, 6i64);
        let s = t.update_a(s, 7); // 6 ∈ [5, 9]: b untouched
        assert_eq!(s, (7, 6));
    }

    #[test]
    fn session_over_algebraic_bx() {
        let mut sess = BxSession::new((0i64, 0i64), AlgBxOps::new(interval_bx(3)));
        sess.set_a(10);
        assert_eq!(sess.b(), 7);
        sess.set_b(-5);
        assert_eq!(sess.a(), -2);
    }
}
