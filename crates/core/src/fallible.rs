//! Fallible bx — exceptions reconciled with bidirectionality (§5).
//!
//! The remaining effect on the paper's §5 list: updates that may **fail**
//! (the view edit is rejected) instead of silently repairing. The carrier
//! monad is `StateT<S, Result<_, E>>`: the paper's recipe applied to the
//! exceptions monad. A failed `set` aborts the whole computation — by
//! construction the state is *unchanged* on failure (failure happens
//! before any new state is produced), giving transactional "all or
//! nothing" behaviour for free.
//!
//! Law status (checked in tests): (GG)/(GS)/(SG) hold observationally —
//! (GS) because writing back the current view is always accepted
//! (validity of the current state is an invariant), (SG) vacuous-or-true
//! on rejected writes because the whole computation fails.

use esm_monad::{ResultOf, StateT, StateTOf, Val};

use crate::monadic::SetBx;
use crate::state::SbxOps;

/// A set-bx whose updates may be rejected with an error of type `E`.
pub trait TryOps<S, A, B, E> {
    /// Observe the `A` view (total: the current state is always valid).
    fn view_a(&self, s: &S) -> A;
    /// Observe the `B` view.
    fn view_b(&self, s: &S) -> B;
    /// Replace the `A` view, or reject the write. Must accept the current
    /// view (`try_update_a(s, view_a(s)) == Ok(s)`) to preserve (GS).
    fn try_update_a(&self, s: S, a: A) -> Result<S, E>;
    /// Replace the `B` view, or reject the write.
    fn try_update_b(&self, s: S, b: B) -> Result<S, E>;
}

/// Adapter embedding a fallible bx into the monadic interface over
/// `StateT<S, Result<_, E>>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonadicTry<T>(pub T);

impl<S, A, B, E, T> SetBx<StateTOf<S, ResultOf<E>>, A, B> for MonadicTry<T>
where
    S: Val,
    A: Val,
    B: Val,
    E: Val,
    T: TryOps<S, A, B, E> + Clone + 'static,
{
    fn get_a(&self) -> StateT<S, ResultOf<E>, A> {
        let t = self.0.clone();
        StateT::new(move |s: S| {
            let a = t.view_a(&s);
            Ok((a, s))
        })
    }

    fn get_b(&self) -> StateT<S, ResultOf<E>, B> {
        let t = self.0.clone();
        StateT::new(move |s: S| {
            let b = t.view_b(&s);
            Ok((b, s))
        })
    }

    fn set_a(&self, a: A) -> StateT<S, ResultOf<E>, ()> {
        let t = self.0.clone();
        StateT::new(move |s: S| t.try_update_a(s, a.clone()).map(|s2| ((), s2)))
    }

    fn set_b(&self, b: B) -> StateT<S, ResultOf<E>, ()> {
        let t = self.0.clone();
        StateT::new(move |s: S| t.try_update_b(s, b.clone()).map(|s2| ((), s2)))
    }
}

/// Guard any ops-level bx with validation predicates: writes whose value
/// fails the predicate are rejected with a message, everything else is
/// delegated. The current views always pass by construction of lawful
/// inner bx ((SG) means current views were once accepted writes).
pub struct Guarded<T, A, B> {
    inner: T,
    accept_a: std::rc::Rc<dyn Fn(&A) -> bool>,
    accept_b: std::rc::Rc<dyn Fn(&B) -> bool>,
}

impl<T: Clone, A, B> Clone for Guarded<T, A, B> {
    fn clone(&self) -> Self {
        Guarded {
            inner: self.inner.clone(),
            accept_a: std::rc::Rc::clone(&self.accept_a),
            accept_b: std::rc::Rc::clone(&self.accept_b),
        }
    }
}

impl<T, A, B> std::fmt::Debug for Guarded<T, A, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Guarded(<bx, predicates>)")
    }
}

impl<T, A, B> Guarded<T, A, B> {
    /// Guard `inner` with per-side acceptance predicates.
    pub fn new(
        inner: T,
        accept_a: impl Fn(&A) -> bool + 'static,
        accept_b: impl Fn(&B) -> bool + 'static,
    ) -> Self {
        Guarded {
            inner,
            accept_a: std::rc::Rc::new(accept_a),
            accept_b: std::rc::Rc::new(accept_b),
        }
    }
}

impl<S, A, B, T> TryOps<S, A, B, String> for Guarded<T, A, B>
where
    T: SbxOps<S, A, B>,
    A: std::fmt::Debug,
    B: std::fmt::Debug,
{
    fn view_a(&self, s: &S) -> A {
        self.inner.view_a(s)
    }

    fn view_b(&self, s: &S) -> B {
        self.inner.view_b(s)
    }

    fn try_update_a(&self, s: S, a: A) -> Result<S, String> {
        if (self.accept_a)(&a) {
            Ok(self.inner.update_a(s, a))
        } else {
            Err(format!("write to A rejected: {a:?}"))
        }
    }

    fn try_update_b(&self, s: S, b: B) -> Result<S, String> {
        if (self.accept_b)(&b) {
            Ok(self.inner.update_b(s, b))
        } else {
            Err(format!("write to B rejected: {b:?}"))
        }
    }
}

/// A transactional session over a fallible bx: failed writes leave the
/// state untouched and report the error.
#[derive(Debug, Clone)]
pub struct TrySession<S, T> {
    state: S,
    bx: T,
}

impl<S: Clone, T> TrySession<S, T> {
    /// Start a session from an initial (valid) state.
    pub fn new(state: S, bx: T) -> Self {
        TrySession { state, bx }
    }

    /// The current state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Read the `A` view.
    pub fn a<A, B, E>(&self) -> A
    where
        T: TryOps<S, A, B, E>,
    {
        self.bx.view_a(&self.state)
    }

    /// Read the `B` view.
    pub fn b<A, B, E>(&self) -> B
    where
        T: TryOps<S, A, B, E>,
    {
        self.bx.view_b(&self.state)
    }

    /// Attempt to write the `A` view; on rejection the state is unchanged.
    pub fn try_set_a<A, B, E>(&mut self, a: A) -> Result<(), E>
    where
        T: TryOps<S, A, B, E>,
    {
        self.state = self.bx.try_update_a(self.state.clone(), a)?;
        Ok(())
    }

    /// Attempt to write the `B` view; on rejection the state is unchanged.
    pub fn try_set_b<A, B, E>(&mut self, b: B) -> Result<(), E>
    where
        T: TryOps<S, A, B, E>,
    {
        self.state = self.bx.try_update_b(self.state.clone(), b)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monadic::laws::{check_set_bx, LawOptions};
    use crate::state::IdBx;
    use esm_monad::MonadFamily;

    type M = StateTOf<i64, ResultOf<String>>;

    fn percent_bx() -> Guarded<IdBx<i64>, i64, i64> {
        // A percentage cell: writes outside 0..=100 are rejected.
        Guarded::new(
            IdBx::<i64>::new(),
            |a: &i64| (0..=100).contains(a),
            |b: &i64| (0..=100).contains(b),
        )
    }

    #[test]
    fn valid_writes_apply_and_invalid_writes_abort() {
        let t = MonadicTry(percent_bx());
        let ok = SetBx::<M, i64, i64>::set_a(&t, 50).run(10);
        assert_eq!(ok, Ok(((), 50)));
        let err = SetBx::<M, i64, i64>::set_a(&t, 200).run(10);
        assert_eq!(err, Err("write to A rejected: 200".to_string()));
    }

    #[test]
    fn failure_aborts_the_whole_computation_transactionally() {
        // set 50, then set 200, then get: the failure wipes out the whole
        // run — there is no observable intermediate state.
        let t = MonadicTry(percent_bx());
        let prog = M::seq(
            SetBx::<M, i64, i64>::set_a(&t, 50),
            M::seq(
                SetBx::<M, i64, i64>::set_a(&t, 200),
                SetBx::<M, i64, i64>::get_a(&t),
            ),
        );
        assert!(prog.run(10).is_err());
    }

    #[test]
    fn laws_hold_on_valid_states_and_writes() {
        let t = MonadicTry(percent_bx());
        let ctx = (vec![0i64, 42, 100], ());
        let samples = [0i64, 7, 100];
        let v =
            check_set_bx::<M, i64, i64, _>(&t, &samples, &samples, &ctx, LawOptions::OVERWRITEABLE);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn session_keeps_state_on_rejection() {
        let mut sess = TrySession::new(30i64, percent_bx());
        assert!(sess.try_set_a(80).is_ok());
        assert_eq!(sess.a(), 80);
        let err = sess.try_set_b(-5);
        assert!(err.is_err());
        assert_eq!(sess.a(), 80); // untouched
    }

    #[test]
    fn guard_over_entangled_bx() {
        use crate::state::StateBx;
        // quantity/total bx with a budget cap on the total.
        let base: StateBx<(u32, u32), u32, u32> = StateBx::new(
            |s: &(u32, u32)| s.0,
            |s| s.0 * s.1,
            |s, q| (q, s.1),
            |s, total| (total / s.1, s.1),
        );
        let guarded = Guarded::new(base, |_q: &u32| true, |total: &u32| *total <= 1000);
        let mut sess = TrySession::new((4u32, 100u32), guarded);
        assert!(sess.try_set_b(900).is_ok());
        assert_eq!(sess.a(), 9);
        assert!(sess.try_set_b(5000).is_err());
        assert_eq!(sess.a(), 9);
    }
}
