//! # Entangled state monads — the paper's core contribution
//!
//! *"A monad that exhibits the structure of a state monad in two ways is
//! essentially a bidirectional transformation."* (§3)
//!
//! This crate implements that idea at two levels of abstraction, plus the
//! paper's §3.4 entanglement analysis, §4 effectful example, and §5
//! future-work items (composition, history/witness complements):
//!
//! 1. **The monadic level** ([`monadic`]) is the paper, literally: a
//!    [`monadic::SetBx`] (resp. [`monadic::PutBx`]) is anything exposing the
//!    four operations `getA`, `getB`, `setA`, `setB` (resp. `putBA`,
//!    `putAB`) as computations in an arbitrary
//!    [`esm_monad::MonadFamily`]. The §3.3 translations are the wrapper
//!    types [`monadic::Set2Pp`] and [`monadic::Pp2Set`], and every law of
//!    §3.1–§3.2 has an executable observational form in
//!    [`monadic::laws`].
//!
//! 2. **The ops level** ([`state`]) specialises to state monads — which is
//!    where all of the paper's §4 instances live. A bx between `A` and `B`
//!    over hidden state `S` is four pure functions
//!    ([`state::SbxOps`]/[`state::PbxOps`]); adapters embed any ops-level
//!    bx back into the monadic interface, so the two views provably agree.
//!    Engineering lives here: combinators, composition, sessions, the
//!    dynamic [`state::StateBx`].
//!
//! 3. **Effects** ([`effectful`]): the §4 "stateful bx" whose `set`
//!    operations print exactly when the state changes, generalised (as the
//!    paper suggests) to a wrapper over *any* ops-level bx, with the
//!    carrier monad `StateT<S, IoSim>` = the paper's
//!    `M A = S -> IO (A, S)`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod choice;
pub mod effectful;
pub mod fallible;
pub mod monadic;
pub mod state;

pub use choice::{FuzzyInterval, MonadicNd, MonadicProb, NdOps, ProbOps, WeightedInterval};
pub use effectful::{Announce, EffOps, EffSession, MonadicEff};
pub use fallible::{Guarded, MonadicTry, TryOps, TrySession};
pub use monadic::{Pp2Set, PutBx, Set2Pp, SetBx};
pub use state::{
    compose, BxSession, Composed, Dual, IdBx, Iso, MapA, MapB, Monadic, MonadicPut, PairBx, PbxOps,
    ProductOps, PutToSet, SbxOps, SetToPut, StateBx, WithHistory,
};
