//! [`PbxOps`]: the ops-level presentation of a put-bx, and the ops-level
//! mirror of the §3.3 translations.

use esm_monad::{State, StateOf, Val};

use super::ops::SbxOps;
use crate::monadic::PutBx;

/// A put-bx between `A` and `B` over hidden state `S`, presented as pure
/// functions. `put_a(s, a)` corresponds to the paper's `putBA a`: write the
/// `A` side and return the refreshed `B` along with the new state.
///
/// The put-bx laws become first-order equations (checked by
/// `esm-lawcheck`):
///
/// ```text
/// (GP)  put_a(s, view_a(s)) == (s, view_b(s))
/// (PG1) view_a(put_a(s, a).0) == a
/// (PG2) put_a(s, a).1 == view_b(&put_a(s, a).0)
/// (PP)  put_a(put_a(s, a).0, a') == put_a(s, a')            [optional]
/// ```
pub trait PbxOps<S, A, B> {
    /// Observe the `A` view of the hidden state.
    fn view_a(&self, s: &S) -> A;
    /// Observe the `B` view of the hidden state.
    fn view_b(&self, s: &S) -> B;
    /// The paper's `putBA`: write the `A` view; return the new state and
    /// the refreshed `B` view.
    fn put_a(&self, s: S, a: A) -> (S, B);
    /// The paper's `putAB`: write the `B` view; return the new state and
    /// the refreshed `A` view.
    fn put_b(&self, s: S, b: B) -> (S, A);
}

impl<S, A, B, T: PbxOps<S, A, B> + ?Sized> PbxOps<S, A, B> for &T {
    fn view_a(&self, s: &S) -> A {
        (**self).view_a(s)
    }
    fn view_b(&self, s: &S) -> B {
        (**self).view_b(s)
    }
    fn put_a(&self, s: S, a: A) -> (S, B) {
        (**self).put_a(s, a)
    }
    fn put_b(&self, s: S, b: B) -> (S, A) {
        (**self).put_b(s, b)
    }
}

/// Ops-level `set2pp` (§3.3): view a set-bx as a put-bx by following each
/// update with a read of the other side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetToPut<T>(pub T);

impl<S, A, B, T: SbxOps<S, A, B>> PbxOps<S, A, B> for SetToPut<T> {
    fn view_a(&self, s: &S) -> A {
        self.0.view_a(s)
    }
    fn view_b(&self, s: &S) -> B {
        self.0.view_b(s)
    }
    fn put_a(&self, s: S, a: A) -> (S, B) {
        let s2 = self.0.update_a(s, a);
        let b = self.0.view_b(&s2);
        (s2, b)
    }
    fn put_b(&self, s: S, b: B) -> (S, A) {
        let s2 = self.0.update_b(s, b);
        let a = self.0.view_a(&s2);
        (s2, a)
    }
}

/// Ops-level `pp2set` (§3.3): view a put-bx as a set-bx by discarding the
/// returned opposite view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutToSet<U>(pub U);

impl<S, A, B, U: PbxOps<S, A, B>> SbxOps<S, A, B> for PutToSet<U> {
    fn view_a(&self, s: &S) -> A {
        self.0.view_a(s)
    }
    fn view_b(&self, s: &S) -> B {
        self.0.view_b(s)
    }
    fn update_a(&self, s: S, a: A) -> S {
        self.0.put_a(s, a).0
    }
    fn update_b(&self, s: S, b: B) -> S {
        self.0.put_b(s, b).0
    }
}

/// Adapter embedding an ops-level put-bx into the paper's monadic
/// [`PutBx`] interface over `StateOf<S>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonadicPut<T>(pub T);

impl<S, A, B, T> PutBx<StateOf<S>, A, B> for MonadicPut<T>
where
    S: Val,
    A: Val,
    B: Val,
    T: PbxOps<S, A, B> + Clone + 'static,
{
    fn get_a(&self) -> State<S, A> {
        let t = self.0.clone();
        State::new(move |s: S| {
            let a = t.view_a(&s);
            (a, s)
        })
    }

    fn get_b(&self) -> State<S, B> {
        let t = self.0.clone();
        State::new(move |s: S| {
            let b = t.view_b(&s);
            (b, s)
        })
    }

    fn put_ba(&self, a: A) -> State<S, B> {
        let t = self.0.clone();
        State::new(move |s: S| {
            let (s2, b) = t.put_a(s, a.clone());
            (b, s2)
        })
    }

    fn put_ab(&self, b: B) -> State<S, A> {
        let t = self.0.clone();
        State::new(move |s: S| {
            let (s2, a) = t.put_b(s, b.clone());
            (a, s2)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::combinators::IdBx;

    #[test]
    fn set_to_put_reports_the_other_side() {
        let t = SetToPut(IdBx::<i32>::new());
        // The identity bx has both views equal to the state, so putting an
        // A returns the same value as the refreshed B.
        assert_eq!(t.put_a(0, 5), (5, 5));
        assert_eq!(t.put_b(0, 7), (7, 7));
    }

    #[test]
    fn put_to_set_discards_the_report() {
        let t = PutToSet(SetToPut(IdBx::<i32>::new()));
        assert_eq!(t.update_a(0, 5), 5);
        assert_eq!(t.view_b(&5), 5);
    }

    #[test]
    fn ops_roundtrip_is_pointwise_identity() {
        // Lemma 3 at the ops level: PutToSet(SetToPut(t)) == t pointwise.
        let t = IdBx::<i32>::new();
        let rt = PutToSet(SetToPut(t));
        for s in [-2, 0, 9] {
            for a in [-1, 3] {
                assert_eq!(rt.update_a(s, a), t.update_a(s, a));
                assert_eq!(rt.update_b(s, a), t.update_b(s, a));
            }
            assert_eq!(rt.view_a(&s), t.view_a(&s));
            assert_eq!(rt.view_b(&s), t.view_b(&s));
        }
    }
}
