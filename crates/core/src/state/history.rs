//! Witness structures (§5): a bx that records its own edit history in the
//! hidden state.
//!
//! The paper's conclusions anticipate "bx with richer complements or
//! witness structures" absorbed into the monad's hidden state.
//! [`WithHistory`] is the simplest such structure: it extends any ops-level
//! bx's state with the list of *effective* edits (edits that changed the
//! state; no-op writes are not recorded, keeping (GS)).
//!
//! The payoff is a natural example separating the base laws from the
//! overwrite law: `WithHistory(t)` satisfies (GS) and (SG) whenever `t`
//! does, but **deliberately violates (SS)** — `setA a >> setA a'` leaves a
//! two-entry trail where `setA a'` leaves one. The negative test below (and
//! the law-checker integration tests) confirm the violation is caught.

use super::ops::SbxOps;

/// One recorded edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit<A, B> {
    /// The `A` side was overwritten with this value.
    SetA(A),
    /// The `B` side was overwritten with this value.
    SetB(B),
}

/// State extension pairing the underlying state with its edit history.
pub type HistoryState<S, A, B> = (S, Vec<Edit<A, B>>);

/// Wrap a bx so its hidden state also records every effective edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WithHistory<T>(pub T);

impl<T> WithHistory<T> {
    /// Initial wrapped state: the given base state and an empty history.
    pub fn initial<S, A, B>(s: S) -> HistoryState<S, A, B> {
        (s, Vec::new())
    }
}

impl<S, A, B, T> SbxOps<HistoryState<S, A, B>, A, B> for WithHistory<T>
where
    S: Clone + PartialEq,
    A: Clone,
    B: Clone,
    T: SbxOps<S, A, B>,
{
    fn view_a(&self, s: &HistoryState<S, A, B>) -> A {
        self.0.view_a(&s.0)
    }

    fn view_b(&self, s: &HistoryState<S, A, B>) -> B {
        self.0.view_b(&s.0)
    }

    fn update_a(&self, s: HistoryState<S, A, B>, a: A) -> HistoryState<S, A, B> {
        let (base, mut hist) = s;
        let next = self.0.update_a(base.clone(), a.clone());
        if next != base {
            hist.push(Edit::SetA(a));
        }
        (next, hist)
    }

    fn update_b(&self, s: HistoryState<S, A, B>, b: B) -> HistoryState<S, A, B> {
        let (base, mut hist) = s;
        let next = self.0.update_b(base.clone(), b.clone());
        if next != base {
            hist.push(Edit::SetB(b));
        }
        (next, hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::combinators::IdBx;

    type H = HistoryState<i64, i64, i64>;

    fn fresh(s: i64) -> H {
        WithHistory::<IdBx<i64>>::initial(s)
    }

    #[test]
    fn effective_edits_are_recorded_in_order() {
        let t = WithHistory(IdBx::<i64>::new());
        let s = fresh(0);
        let s = t.update_a(s, 5);
        let s = t.update_b(s, 9);
        assert_eq!(s.0, 9);
        assert_eq!(s.1, vec![Edit::SetA(5), Edit::SetB(9)]);
    }

    #[test]
    fn noop_edits_are_not_recorded_keeping_gs() {
        // (GS): writing back what you just read must not change the state —
        // including the history.
        let t = WithHistory(IdBx::<i64>::new());
        let s = fresh(42);
        let a = t.view_a(&s);
        let s2 = t.update_a(s.clone(), a);
        assert_eq!(s2, s);
    }

    #[test]
    fn sg_still_holds() {
        let t = WithHistory(IdBx::<i64>::new());
        let s = fresh(0);
        let s = t.update_a(s, 31);
        assert_eq!(t.view_a(&s), 31);
    }

    #[test]
    fn ss_deliberately_fails() {
        // Overwrite law: update_a(update_a(s, a), a') vs update_a(s, a').
        // The base states agree but the histories differ — (SS) violated,
        // by design.
        let t = WithHistory(IdBx::<i64>::new());
        let s = fresh(0);
        let twice = t.update_a(t.update_a(s.clone(), 1), 2);
        let once = t.update_a(s, 2);
        assert_eq!(twice.0, once.0);
        assert_ne!(twice.1, once.1);
        assert_eq!(twice.1, vec![Edit::SetA(1), Edit::SetA(2)]);
        assert_eq!(once.1, vec![Edit::SetA(2)]);
    }
}
