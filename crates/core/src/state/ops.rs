//! [`SbxOps`]: the ops-level presentation of a set-bx over a state monad.

use esm_monad::{State, StateOf, Val};

use crate::monadic::SetBx;

/// A set-bx between `A` and `B` whose carrier is the state monad on `S`,
/// presented as four *pure functions* on the hidden state.
///
/// Correspondence with the monadic operations of [`crate::monadic::SetBx`]
/// over `StateOf<S>`:
///
/// ```text
/// getA   = \s -> (view_a s, s)          (a query: state untouched)
/// setA a = \s -> ((), update_a s a)     (an update: state replaced)
/// ```
///
/// The set-bx laws become first-order equations, checked by
/// `esm-lawcheck`:
///
/// ```text
/// (GS) update_a(s, view_a(s)) == s                        -- "Hippocratic"
/// (SG) view_a(update_a(s, a)) == a                        -- "faithful"
/// (SS) update_a(update_a(s, a), a') == update_a(s, a')    -- "overwriteable"
/// ```
///
/// ((GG) holds by construction at this level: `view_a` is a pure function
/// of the state, so reading twice cannot disagree — the monadic checkers
/// verify this through the adapter.)
pub trait SbxOps<S, A, B> {
    /// Observe the `A` view of the hidden state.
    fn view_a(&self, s: &S) -> A;
    /// Observe the `B` view of the hidden state.
    fn view_b(&self, s: &S) -> B;
    /// Replace the `A` view, producing a consistent new state.
    fn update_a(&self, s: S, a: A) -> S;
    /// Replace the `B` view, producing a consistent new state.
    fn update_b(&self, s: S, b: B) -> S;
}

impl<S, A, B, T: SbxOps<S, A, B> + ?Sized> SbxOps<S, A, B> for &T {
    fn view_a(&self, s: &S) -> A {
        (**self).view_a(s)
    }
    fn view_b(&self, s: &S) -> B {
        (**self).view_b(s)
    }
    fn update_a(&self, s: S, a: A) -> S {
        (**self).update_a(s, a)
    }
    fn update_b(&self, s: S, b: B) -> S {
        (**self).update_b(s, b)
    }
}

impl<S, A, B, T: SbxOps<S, A, B> + ?Sized> SbxOps<S, A, B> for std::rc::Rc<T> {
    fn view_a(&self, s: &S) -> A {
        (**self).view_a(s)
    }
    fn view_b(&self, s: &S) -> B {
        (**self).view_b(s)
    }
    fn update_a(&self, s: S, a: A) -> S {
        (**self).update_a(s, a)
    }
    fn update_b(&self, s: S, b: B) -> S {
        (**self).update_b(s, b)
    }
}

/// Adapter embedding an ops-level bx into the paper's monadic interface:
/// `Monadic(t)` is a [`SetBx`] over the state-monad family `StateOf<S>`.
///
/// The wrapped value is cloned into each returned computation, so `T`
/// should be cheap to clone (zero-sized or `Rc`-backed — every bx in this
/// workspace is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Monadic<T>(pub T);

impl<S, A, B, T> SetBx<StateOf<S>, A, B> for Monadic<T>
where
    S: Val,
    A: Val,
    B: Val,
    T: SbxOps<S, A, B> + Clone + 'static,
{
    fn get_a(&self) -> State<S, A> {
        let t = self.0.clone();
        State::new(move |s: S| {
            let a = t.view_a(&s);
            (a, s)
        })
    }

    fn get_b(&self) -> State<S, B> {
        let t = self.0.clone();
        State::new(move |s: S| {
            let b = t.view_b(&s);
            (b, s)
        })
    }

    fn set_a(&self, a: A) -> State<S, ()> {
        let t = self.0.clone();
        State::new(move |s: S| ((), t.update_a(s, a.clone())))
    }

    fn set_b(&self, b: B) -> State<S, ()> {
        let t = self.0.clone();
        State::new(move |s: S| ((), t.update_b(s, b.clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::combinators::IdBx;

    #[test]
    fn monadic_adapter_matches_ops_pointwise() {
        let t: IdBx<i32> = IdBx::new();
        let m = Monadic(t);
        let (a, s) = SetBx::<StateOf<i32>, i32, i32>::get_a(&m).run(7);
        assert_eq!((a, s), (t.view_a(&7), 7));
        let ((), s2) = SetBx::<StateOf<i32>, i32, i32>::set_b(&m, 9).run(7);
        assert_eq!(s2, t.update_b(7, 9));
    }

    #[test]
    fn rc_and_ref_forwarding() {
        let t: IdBx<i32> = IdBx::new();
        let rc = std::rc::Rc::new(t);
        assert_eq!(rc.view_a(&3), 3);
        assert_eq!(t.update_a(1, 2), 2);
    }
}
