//! [`StateBx`]: a type-erased, cheaply-cloneable ops-level bx.
//!
//! Where [`crate::state::SbxOps`] implementors are zero-cost but
//! monomorphic, `StateBx` boxes the four operations behind `Rc<dyn Fn…>` so
//! that heterogeneous bx can live in one collection, be built at runtime,
//! and be captured by monadic computations without generic plumbing.
//! Experiment T1 (see EXPERIMENTS.md) measures the dispatch cost.

use std::rc::Rc;

use super::ops::SbxOps;

/// A dynamically-dispatched set-bx over hidden state `S`.
pub struct StateBx<S, A, B> {
    view_a: Rc<dyn Fn(&S) -> A>,
    view_b: Rc<dyn Fn(&S) -> B>,
    update_a: Rc<dyn Fn(S, A) -> S>,
    update_b: Rc<dyn Fn(S, B) -> S>,
}

impl<S, A, B> Clone for StateBx<S, A, B> {
    fn clone(&self) -> Self {
        StateBx {
            view_a: Rc::clone(&self.view_a),
            view_b: Rc::clone(&self.view_b),
            update_a: Rc::clone(&self.update_a),
            update_b: Rc::clone(&self.update_b),
        }
    }
}

impl<S, A, B> std::fmt::Debug for StateBx<S, A, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StateBx(<operations>)")
    }
}

impl<S: 'static, A: 'static, B: 'static> StateBx<S, A, B> {
    /// Build a bx from its four operations.
    pub fn new(
        view_a: impl Fn(&S) -> A + 'static,
        view_b: impl Fn(&S) -> B + 'static,
        update_a: impl Fn(S, A) -> S + 'static,
        update_b: impl Fn(S, B) -> S + 'static,
    ) -> Self {
        StateBx {
            view_a: Rc::new(view_a),
            view_b: Rc::new(view_b),
            update_a: Rc::new(update_a),
            update_b: Rc::new(update_b),
        }
    }

    /// Type-erase any ops-level bx.
    pub fn from_ops<T: SbxOps<S, A, B> + 'static>(t: T) -> Self {
        let t = Rc::new(t);
        let t1 = Rc::clone(&t);
        let t2 = Rc::clone(&t);
        let t3 = Rc::clone(&t);
        let t4 = t;
        StateBx {
            view_a: Rc::new(move |s| t1.view_a(s)),
            view_b: Rc::new(move |s| t2.view_b(s)),
            update_a: Rc::new(move |s, a| t3.update_a(s, a)),
            update_b: Rc::new(move |s, b| t4.update_b(s, b)),
        }
    }
}

impl<S, A, B> SbxOps<S, A, B> for StateBx<S, A, B> {
    fn view_a(&self, s: &S) -> A {
        (self.view_a)(s)
    }
    fn view_b(&self, s: &S) -> B {
        (self.view_b)(s)
    }
    fn update_a(&self, s: S, a: A) -> S {
        (self.update_a)(s, a)
    }
    fn update_b(&self, s: S, b: B) -> S {
        (self.update_b)(s, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::combinators::IdBx;

    #[test]
    fn closures_drive_the_operations() {
        // A bx between a (quantity, unit-price) pair and its two views:
        // quantity (A) and total price (B). Updating the total rescales the
        // quantity, keeping the unit price.
        let bx: StateBx<(u32, u32), u32, u32> = StateBx::new(
            |s: &(u32, u32)| s.0,
            |s| s.0 * s.1,
            |s, q| (q, s.1),
            |s, total| (total / s.1, s.1),
        );
        let s = (3, 10);
        assert_eq!(bx.view_b(&s), 30);
        let s = bx.update_b(s, 50);
        assert_eq!(s, (5, 10));
        assert_eq!(bx.view_a(&s), 5);
    }

    #[test]
    fn from_ops_preserves_behaviour() {
        let erased = StateBx::from_ops(IdBx::<i64>::new());
        assert_eq!(erased.view_a(&4), 4);
        assert_eq!(erased.update_b(4, 6), 6);
    }

    #[test]
    fn clones_share_operations() {
        let bx = StateBx::from_ops(IdBx::<i64>::new());
        let c = bx.clone();
        assert_eq!(bx.update_a(0, 1), c.update_a(0, 1));
    }

    #[test]
    fn heterogeneous_collection() {
        // Different underlying implementations, one element type.
        let items: Vec<StateBx<i64, i64, i64>> = vec![
            StateBx::from_ops(IdBx::new()),
            StateBx::new(|s: &i64| *s, |s| -*s, |_, a| a, |_, b| -b),
        ];
        assert_eq!(items[0].view_b(&3), 3);
        assert_eq!(items[1].view_b(&3), -3);
        assert_eq!(items[1].update_b(0, -9), 9);
    }
}
