//! The ops level: entangled state monads specialised to state-monad
//! carriers, where a bx is four pure functions over a hidden state `S`.
//!
//! All of the paper's §4 instances are state-based, so this layer is where
//! the engineering happens — combinators, composition, sessions — while
//! [`Monadic`]/[`MonadicPut`] embed everything back into the literal
//! monadic interface of [`crate::monadic`] for law checking.

pub mod combinators;
pub mod compose;
pub mod entangle;
pub mod history;
pub mod ops;
pub mod putops;
pub mod session;
pub mod statebx;
pub mod undo;

pub use combinators::{Dual, IdBx, Iso, MapA, MapB, PairBx};
pub use compose::{compose, Composed};
pub use entangle::{find_entanglement_witness, updates_commute, ProductOps};
pub use history::{Edit, WithHistory};
pub use ops::{Monadic, SbxOps};
pub use putops::{MonadicPut, PbxOps, PutToSet, SetToPut};
pub use session::BxSession;
pub use statebx::StateBx;
pub use undo::UndoSession;
