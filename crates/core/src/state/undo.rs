//! Undoable sessions: the practical payoff of §5's witness structures.
//!
//! Where [`crate::state::WithHistory`] stores edits *inside* the hidden
//! state (and deliberately breaks (SS)), [`UndoSession`] keeps the
//! snapshot stack *outside* the bx — so the underlying bx's laws are
//! untouched, and undo/redo become ordinary state restoration. This is
//! the engineering counterpart of the paper's observation that richer
//! complements can live "in the hidden state of the monad": here they
//! live beside it, in the session.

use super::ops::SbxOps;

/// A bx session with unbounded undo/redo over the hidden state.
#[derive(Debug, Clone)]
pub struct UndoSession<S, T> {
    state: S,
    bx: T,
    undo_stack: Vec<S>,
    redo_stack: Vec<S>,
}

impl<S: Clone + PartialEq, T> UndoSession<S, T> {
    /// Start a session from an initial hidden state.
    pub fn new(state: S, bx: T) -> Self {
        UndoSession {
            state,
            bx,
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
        }
    }

    /// The current hidden state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// The underlying bx.
    pub fn bx(&self) -> &T {
        &self.bx
    }

    /// Number of undoable steps.
    pub fn undo_depth(&self) -> usize {
        self.undo_stack.len()
    }

    /// Number of redoable steps.
    pub fn redo_depth(&self) -> usize {
        self.redo_stack.len()
    }

    /// Read the `A` view.
    pub fn a<A, B>(&self) -> A
    where
        T: SbxOps<S, A, B>,
    {
        self.bx.view_a(&self.state)
    }

    /// Read the `B` view.
    pub fn b<A, B>(&self) -> B
    where
        T: SbxOps<S, A, B>,
    {
        self.bx.view_b(&self.state)
    }

    fn commit(&mut self, next: S) {
        if next != self.state {
            self.undo_stack
                .push(std::mem::replace(&mut self.state, next));
            self.redo_stack.clear();
        }
    }

    /// Write the `A` view. No-op writes (Hippocratic) record no undo step.
    pub fn set_a<A, B>(&mut self, a: A)
    where
        T: SbxOps<S, A, B>,
    {
        let next = self.bx.update_a(self.state.clone(), a);
        self.commit(next);
    }

    /// Write the `B` view. No-op writes record no undo step.
    pub fn set_b<A, B>(&mut self, b: B)
    where
        T: SbxOps<S, A, B>,
    {
        let next = self.bx.update_b(self.state.clone(), b);
        self.commit(next);
    }

    /// Revert the most recent effective write. Returns whether anything
    /// was undone.
    pub fn undo(&mut self) -> bool {
        match self.undo_stack.pop() {
            Some(prev) => {
                self.redo_stack
                    .push(std::mem::replace(&mut self.state, prev));
                true
            }
            None => false,
        }
    }

    /// Re-apply the most recently undone write. Returns whether anything
    /// was redone.
    pub fn redo(&mut self) -> bool {
        match self.redo_stack.pop() {
            Some(next) => {
                self.undo_stack
                    .push(std::mem::replace(&mut self.state, next));
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::combinators::IdBx;

    fn session() -> UndoSession<i64, IdBx<i64>> {
        UndoSession::new(0, IdBx::new())
    }

    #[test]
    fn undo_reverts_writes_on_either_side() {
        let mut s = session();
        s.set_a(1);
        s.set_b(2);
        assert_eq!(s.a(), 2);
        assert!(s.undo());
        assert_eq!(s.a(), 1);
        assert!(s.undo());
        assert_eq!(s.a(), 0);
        assert!(!s.undo());
    }

    #[test]
    fn redo_reapplies_undone_writes() {
        let mut s = session();
        s.set_a(5);
        s.undo();
        assert!(s.redo());
        assert_eq!(s.a(), 5);
        assert!(!s.redo());
    }

    #[test]
    fn new_writes_clear_the_redo_stack() {
        let mut s = session();
        s.set_a(1);
        s.set_a(2);
        s.undo();
        s.set_a(9); // diverge: redo history is now invalid
        assert_eq!(s.redo_depth(), 0);
        assert!(!s.redo());
        assert_eq!(s.a(), 9);
    }

    #[test]
    fn hippocratic_writes_record_no_undo_step() {
        let mut s = session();
        s.set_a(7);
        let depth = s.undo_depth();
        s.set_a(7); // writing the current value: (GS) no-op
        assert_eq!(s.undo_depth(), depth);
    }

    #[test]
    fn undo_works_over_entangled_bx() {
        use crate::state::StateBx;
        let bx: StateBx<(u32, u32), u32, u32> = StateBx::new(
            |s: &(u32, u32)| s.0,
            |s| s.0 * s.1,
            |s, q| (q, s.1),
            |s, total| (total / s.1, s.1),
        );
        let mut s = UndoSession::new((4, 10), bx);
        s.set_b(100);
        assert_eq!(s.a(), 10);
        s.undo();
        assert_eq!(s.a(), 4);
        s.redo();
        assert_eq!(s.b(), 100);
    }
}
