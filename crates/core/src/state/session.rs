//! [`BxSession`]: an owned, imperative façade over an ops-level bx.
//!
//! The monadic presentation threads state through computations; a session
//! *owns* the hidden state and exposes the four operations as ordinary
//! method calls, recording a human-readable log of effective operations.
//! This is the API examples and applications use.

use std::fmt::Debug;

use super::ops::SbxOps;

/// An interactive session over a bx: owns the hidden state `S`, applies
/// operations in place, and keeps a log.
#[derive(Debug, Clone)]
pub struct BxSession<S, T> {
    state: S,
    bx: T,
    log: Vec<String>,
}

impl<S, T> BxSession<S, T> {
    /// Start a session from an initial hidden state.
    pub fn new(state: S, bx: T) -> Self {
        BxSession {
            state,
            bx,
            log: Vec::new(),
        }
    }

    /// The current hidden state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Consume the session, returning the final hidden state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// The log of operations applied so far (most recent last).
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// The underlying bx.
    pub fn bx(&self) -> &T {
        &self.bx
    }
}

impl<S: Clone, T> BxSession<S, T> {
    /// Read the `A` view.
    pub fn a<A, B>(&self) -> A
    where
        T: SbxOps<S, A, B>,
    {
        self.bx.view_a(&self.state)
    }

    /// Read the `B` view.
    pub fn b<A, B>(&self) -> B
    where
        T: SbxOps<S, A, B>,
    {
        self.bx.view_b(&self.state)
    }

    /// Write the `A` view (the paper's `setA`), updating the hidden state.
    pub fn set_a<A: Debug, B>(&mut self, a: A)
    where
        T: SbxOps<S, A, B>,
    {
        self.log.push(format!("setA {a:?}"));
        self.state = self.bx.update_a(self.state.clone(), a);
    }

    /// Write the `B` view (the paper's `setB`), updating the hidden state.
    pub fn set_b<A, B: Debug>(&mut self, b: B)
    where
        T: SbxOps<S, A, B>,
    {
        self.log.push(format!("setB {b:?}"));
        self.state = self.bx.update_b(self.state.clone(), b);
    }

    /// The paper's `putBA`: write the `A` view and return the refreshed `B`.
    pub fn put_a<A: Debug, B>(&mut self, a: A) -> B
    where
        T: SbxOps<S, A, B>,
    {
        self.set_a(a);
        self.b()
    }

    /// The paper's `putAB`: write the `B` view and return the refreshed `A`.
    pub fn put_b<A, B: Debug>(&mut self, b: B) -> A
    where
        T: SbxOps<S, A, B>,
    {
        self.set_b(b);
        self.a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::combinators::IdBx;
    use crate::state::statebx::StateBx;

    #[test]
    fn session_applies_operations_in_place() {
        let mut sess = BxSession::new(0i64, IdBx::<i64>::new());
        assert_eq!(sess.a(), 0);
        sess.set_a(5);
        assert_eq!(sess.b(), 5);
        assert_eq!(*sess.state(), 5);
    }

    #[test]
    fn session_logs_operations() {
        let mut sess = BxSession::new(0i64, IdBx::<i64>::new());
        sess.set_a(1);
        sess.set_b(2);
        assert_eq!(sess.log(), ["setA 1", "setB 2"]);
    }

    #[test]
    fn put_returns_refreshed_other_side() {
        // quantity/total-price bx: B = A * unit price (10).
        let bx: StateBx<(u32, u32), u32, u32> = StateBx::new(
            |s: &(u32, u32)| s.0,
            |s| s.0 * s.1,
            |s, q| (q, s.1),
            |s, total| (total / s.1, s.1),
        );
        let mut sess = BxSession::new((2, 10), bx);
        assert_eq!(sess.put_a(7), 70);
        assert_eq!(sess.put_b(30), 3);
    }

    #[test]
    fn into_state_returns_final_state() {
        let mut sess = BxSession::new(1i64, IdBx::<i64>::new());
        sess.set_b(10);
        assert_eq!(sess.into_state(), 10);
    }
}
