//! Structural combinators on ops-level bx: identity, dualising, view
//! re-coding along isomorphisms, and pairing.
//!
//! Each combinator preserves the set-bx laws, a fact the `esm-lawcheck`
//! test suites verify per combinator (not just asserted).

use std::marker::PhantomData;
use std::rc::Rc;

use super::ops::SbxOps;

/// The identity bx on `S` (§2's identity-lens example): both views *are*
/// the state, and updating either view replaces it.
///
/// This is the bx the paper derives from the identity lens — the ordinary
/// state monad structure `(M_S, get, set)` seen twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdBx<S>(PhantomData<S>);

impl<S> IdBx<S> {
    /// The identity bx.
    pub fn new() -> Self {
        IdBx(PhantomData)
    }
}

impl<S> Default for IdBx<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Clone> SbxOps<S, S, S> for IdBx<S> {
    fn view_a(&self, s: &S) -> S {
        s.clone()
    }
    fn view_b(&self, s: &S) -> S {
        s.clone()
    }
    fn update_a(&self, _s: S, a: S) -> S {
        a
    }
    fn update_b(&self, _s: S, b: S) -> S {
        b
    }
}

/// Swap the two sides of a bx: `Dual(t)` is a bx between `B` and `A`.
///
/// Symmetry is a selling point of the paper's formulation (unlike
/// asymmetric lenses, neither side is privileged), and `Dual` is its
/// witness: it is an involution that maps lawful bx to lawful bx.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dual<T>(pub T);

impl<S, A, B, T: SbxOps<S, A, B>> SbxOps<S, B, A> for Dual<T> {
    fn view_a(&self, s: &S) -> B {
        self.0.view_b(s)
    }
    fn view_b(&self, s: &S) -> A {
        self.0.view_a(s)
    }
    fn update_a(&self, s: S, b: B) -> S {
        self.0.update_b(s, b)
    }
    fn update_b(&self, s: S, a: A) -> S {
        self.0.update_a(s, a)
    }
}

/// A bijection between `X` and `Y`, used to re-code bx views.
///
/// The combinators relying on an `Iso` preserve the bx laws **iff** the iso
/// really is a bijection; [`Iso::check_on`] provides a spot-check.
pub struct Iso<X, Y> {
    fwd: Rc<dyn Fn(X) -> Y>,
    bwd: Rc<dyn Fn(Y) -> X>,
}

impl<X, Y> Clone for Iso<X, Y> {
    fn clone(&self) -> Self {
        Iso {
            fwd: Rc::clone(&self.fwd),
            bwd: Rc::clone(&self.bwd),
        }
    }
}

impl<X, Y> std::fmt::Debug for Iso<X, Y> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Iso(<functions>)")
    }
}

impl<X: 'static, Y: 'static> Iso<X, Y> {
    /// An isomorphism from a pair of mutually-inverse functions.
    pub fn new(fwd: impl Fn(X) -> Y + 'static, bwd: impl Fn(Y) -> X + 'static) -> Self {
        Iso {
            fwd: Rc::new(fwd),
            bwd: Rc::new(bwd),
        }
    }

    /// Apply the forward direction.
    pub fn fwd(&self, x: X) -> Y {
        (self.fwd)(x)
    }

    /// Apply the backward direction.
    pub fn bwd(&self, y: Y) -> X {
        (self.bwd)(y)
    }

    /// The inverse isomorphism.
    pub fn flip(&self) -> Iso<Y, X> {
        Iso {
            fwd: Rc::clone(&self.bwd),
            bwd: Rc::clone(&self.fwd),
        }
    }

    /// Spot-check bijectivity on samples: `bwd(fwd(x)) == x` for each `x`,
    /// and `fwd(bwd(y)) == y` for each `y`.
    pub fn check_on(&self, xs: &[X], ys: &[Y]) -> bool
    where
        X: Clone + PartialEq,
        Y: Clone + PartialEq,
    {
        xs.iter().all(|x| self.bwd(self.fwd(x.clone())) == *x)
            && ys.iter().all(|y| self.fwd(self.bwd(y.clone())) == *y)
    }
}

/// Re-code the `A` side of a bx along an isomorphism `A ≅ A2`.
#[derive(Debug, Clone)]
pub struct MapA<T, A, A2> {
    inner: T,
    iso: Iso<A, A2>,
}

impl<T, A: 'static, A2: 'static> MapA<T, A, A2> {
    /// View the `A` side of `inner` through `iso`.
    pub fn new(inner: T, iso: Iso<A, A2>) -> Self {
        MapA { inner, iso }
    }
}

impl<S, A, B, A2, T: SbxOps<S, A, B>> SbxOps<S, A2, B> for MapA<T, A, A2>
where
    A: 'static,
    A2: 'static,
{
    fn view_a(&self, s: &S) -> A2 {
        self.iso.fwd(self.inner.view_a(s))
    }
    fn view_b(&self, s: &S) -> B {
        self.inner.view_b(s)
    }
    fn update_a(&self, s: S, a2: A2) -> S {
        self.inner.update_a(s, self.iso.bwd(a2))
    }
    fn update_b(&self, s: S, b: B) -> S {
        self.inner.update_b(s, b)
    }
}

/// Re-code the `B` side of a bx along an isomorphism `B ≅ B2`.
#[derive(Debug, Clone)]
pub struct MapB<T, B, B2> {
    inner: T,
    iso: Iso<B, B2>,
}

impl<T, B: 'static, B2: 'static> MapB<T, B, B2> {
    /// View the `B` side of `inner` through `iso`.
    pub fn new(inner: T, iso: Iso<B, B2>) -> Self {
        MapB { inner, iso }
    }
}

impl<S, A, B, B2, T: SbxOps<S, A, B>> SbxOps<S, A, B2> for MapB<T, B, B2>
where
    B: 'static,
    B2: 'static,
{
    fn view_a(&self, s: &S) -> A {
        self.inner.view_a(s)
    }
    fn view_b(&self, s: &S) -> B2 {
        self.iso.fwd(self.inner.view_b(s))
    }
    fn update_a(&self, s: S, a: A) -> S {
        self.inner.update_a(s, a)
    }
    fn update_b(&self, s: S, b2: B2) -> S {
        self.inner.update_b(s, self.iso.bwd(b2))
    }
}

/// Run two bx side by side: a bx between `(A1, A2)` and `(B1, B2)` over
/// paired state `(S1, S2)`. Updates touch both components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairBx<T1, T2>(pub T1, pub T2);

impl<S1, S2, A1, A2, B1, B2, T1, T2> SbxOps<(S1, S2), (A1, A2), (B1, B2)> for PairBx<T1, T2>
where
    T1: SbxOps<S1, A1, B1>,
    T2: SbxOps<S2, A2, B2>,
{
    fn view_a(&self, s: &(S1, S2)) -> (A1, A2) {
        (self.0.view_a(&s.0), self.1.view_a(&s.1))
    }
    fn view_b(&self, s: &(S1, S2)) -> (B1, B2) {
        (self.0.view_b(&s.0), self.1.view_b(&s.1))
    }
    fn update_a(&self, s: (S1, S2), a: (A1, A2)) -> (S1, S2) {
        (self.0.update_a(s.0, a.0), self.1.update_a(s.1, a.1))
    }
    fn update_b(&self, s: (S1, S2), b: (B1, B2)) -> (S1, S2) {
        (self.0.update_b(s.0, b.0), self.1.update_b(s.1, b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bx_views_and_replaces() {
        let t = IdBx::<String>::new();
        assert_eq!(t.view_a(&"s".to_string()), "s");
        assert_eq!(t.update_b("s".to_string(), "t".to_string()), "t");
    }

    #[test]
    fn dual_swaps_sides() {
        // A bx whose B side is the negation of its A side.
        let t: StateLike = StateLike;
        let d = Dual(t);
        assert_eq!(t.view_b(&5), -5);
        assert_eq!(d.view_a(&5), -5);
        assert_eq!(d.update_b(0, 3), t.update_a(0, 3));
    }

    /// i64 state; A view = state, B view = negated state.
    #[derive(Clone, Copy)]
    struct StateLike;
    impl SbxOps<i64, i64, i64> for StateLike {
        fn view_a(&self, s: &i64) -> i64 {
            *s
        }
        fn view_b(&self, s: &i64) -> i64 {
            -*s
        }
        fn update_a(&self, _s: i64, a: i64) -> i64 {
            a
        }
        fn update_b(&self, _s: i64, b: i64) -> i64 {
            -b
        }
    }

    #[test]
    fn dual_is_an_involution() {
        let t = StateLike;
        let dd = Dual(Dual(t));
        for s in [-4i64, 0, 9] {
            assert_eq!(dd.view_a(&s), t.view_a(&s));
            assert_eq!(dd.view_b(&s), t.view_b(&s));
            assert_eq!(dd.update_a(s, 1), t.update_a(s, 1));
            assert_eq!(dd.update_b(s, 1), t.update_b(s, 1));
        }
    }

    #[test]
    fn iso_checks_bijectivity() {
        let good = Iso::new(|x: i64| x + 1, |y: i64| y - 1);
        assert!(good.check_on(&[0, 5, -5], &[1, 2]));
        let bad = Iso::new(|x: i64| x / 2, |y: i64| y * 2);
        assert!(!bad.check_on(&[3], &[]));
    }

    #[test]
    fn iso_flip_inverts() {
        let iso = Iso::new(|x: i64| x.to_string(), |y: String| y.parse().unwrap());
        assert_eq!(iso.flip().fwd("42".to_string()), 42);
        assert_eq!(iso.flip().bwd(42), "42");
    }

    #[test]
    fn map_a_recodes_the_a_view() {
        let iso = Iso::new(|x: i64| x.to_string(), |y: String| y.parse().unwrap());
        let t = MapA::new(StateLike, iso);
        assert_eq!(t.view_a(&7), "7");
        assert_eq!(t.update_a(0, "12".to_string()), 12);
        // B side untouched.
        assert_eq!(t.view_b(&7), -7);
    }

    #[test]
    fn map_b_recodes_the_b_view() {
        let iso = Iso::new(|x: i64| x * 10, |y: i64| y / 10);
        let t = MapB::new(StateLike, iso);
        assert_eq!(t.view_b(&7), -70);
        assert_eq!(t.update_b(0, -30), 3);
    }

    #[test]
    fn pair_updates_componentwise() {
        let p = PairBx(IdBx::<i64>::new(), StateLike);
        let s = (1i64, 2i64);
        assert_eq!(p.view_a(&s), (1, 2));
        assert_eq!(p.view_b(&s), (1, -2));
        assert_eq!(p.update_b(s, (9, -5)), (9, 5));
    }
}
