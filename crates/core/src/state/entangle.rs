//! Entanglement analysis (§3.4): when do `setA` and `setB` commute?
//!
//! The product bx ([`ProductOps`], the ops-level mirror of
//! [`crate::monadic::ProductBx`]) satisfies the commutativity law
//! `setA a >> setB b = setB b >> setA a` because its components are stored
//! independently. The paper's point is that a general set-bx need *not*
//! satisfy it — "setting one component also changes the other to restore
//! consistency" — and the degree of failure is observable. This module
//! provides the commutation check and a witness search.

use std::marker::PhantomData;

use super::ops::SbxOps;

/// The unentangled product bx over state `(A, B)` (§3.4): each view is one
//  component and updates touch only their own component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductOps<A, B>(PhantomData<(A, B)>);

impl<A, B> ProductOps<A, B> {
    /// The product bx between `A` and `B`.
    pub fn new() -> Self {
        ProductOps(PhantomData)
    }
}

impl<A, B> Default for ProductOps<A, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Clone, B: Clone> SbxOps<(A, B), A, B> for ProductOps<A, B> {
    fn view_a(&self, s: &(A, B)) -> A {
        s.0.clone()
    }
    fn view_b(&self, s: &(A, B)) -> B {
        s.1.clone()
    }
    fn update_a(&self, s: (A, B), a: A) -> (A, B) {
        (a, s.1)
    }
    fn update_b(&self, s: (A, B), b: B) -> (A, B) {
        (s.0, b)
    }
}

/// Do `update_a` and `update_b` commute from state `s0` for the given
/// values? (§3.4's commutativity equation, at one point.)
pub fn updates_commute<S, A, B, T>(t: &T, s0: S, a: A, b: B) -> bool
where
    S: Clone + PartialEq,
    A: Clone,
    B: Clone,
    T: SbxOps<S, A, B>,
{
    let ab = t.update_b(t.update_a(s0.clone(), a.clone()), b.clone());
    let ba = t.update_a(t.update_b(s0, b), a);
    ab == ba
}

/// Search the sample grid for a state and pair of values on which the two
/// updates fail to commute — a concrete *witness of entanglement*.
///
/// Returns `None` when every sampled combination commutes (evidence, not
/// proof, of unentanglement).
pub fn find_entanglement_witness<S, A, B, T>(
    t: &T,
    states: &[S],
    values_a: &[A],
    values_b: &[B],
) -> Option<(S, A, B)>
where
    S: Clone + PartialEq,
    A: Clone,
    B: Clone,
    T: SbxOps<S, A, B>,
{
    for s in states {
        for a in values_a {
            for b in values_b {
                if !updates_commute(t, s.clone(), a.clone(), b.clone()) {
                    return Some((s.clone(), a.clone(), b.clone()));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::combinators::IdBx;

    #[test]
    fn product_ops_is_a_lawful_view_pair() {
        let t: ProductOps<i32, &'static str> = ProductOps::new();
        let s = (1, "x");
        assert_eq!(t.view_a(&s), 1);
        assert_eq!(t.update_b(s, "y"), (1, "y"));
    }

    #[test]
    fn product_updates_commute_everywhere_sampled() {
        let t: ProductOps<i32, i32> = ProductOps::new();
        let states: Vec<(i32, i32)> = vec![(0, 0), (1, 2), (-5, 5)];
        assert_eq!(
            find_entanglement_witness(&t, &states, &[7, 8], &[9, 10]),
            None
        );
    }

    #[test]
    fn identity_bx_is_maximally_entangled() {
        // Both views share the whole state, so distinct writes to the two
        // sides cannot commute.
        let t = IdBx::<i32>::new();
        let w = find_entanglement_witness(&t, &[0], &[1], &[2]);
        assert_eq!(w, Some((0, 1, 2)));
        // ... but equal writes commute trivially.
        assert!(updates_commute(&t, 0, 3, 3));
    }
}
